//! Compact serialization for Roaring bitmaps.
//!
//! Layout (little-endian):
//! ```text
//! u32 n_chunks
//! per chunk:
//!   u16 key
//!   u8  kind            (0 = array, 1 = bitmap, 2 = run)
//!   u32 n               (array: #values, bitmap: cardinality, run: #runs)
//!   payload             (array: n × u16, bitmap: 1024 × u64, run: n × (u16,u16))
//! ```

use crate::container::Container;
use crate::{RoaringBitmap, RoaringError};

const KIND_ARRAY: u8 = 0;
const KIND_BITMAP: u8 = 1;
const KIND_RUN: u8 = 2;

pub(crate) fn serialized_size(bm: &RoaringBitmap) -> usize {
    4 + bm
        .chunks()
        .iter()
        .map(|(_, c)| {
            7 + match c {
                Container::Array(a) => 2 * a.len(),
                Container::Bitmap(_) => 8 * 1024,
                Container::Run(r) => 4 * r.len(),
            }
        })
        .sum::<usize>()
}

pub(crate) fn serialize(bm: &RoaringBitmap) -> Vec<u8> {
    let mut out = Vec::with_capacity(serialized_size(bm));
    // lint: allow(cast) at most 65536 chunks exist (one per u16 key)
    out.extend_from_slice(&(bm.chunks().len() as u32).to_le_bytes());
    for (key, c) in bm.chunks() {
        out.extend_from_slice(&key.to_le_bytes());
        match c {
            Container::Array(a) => {
                out.push(KIND_ARRAY);
                // lint: allow(cast) array containers hold at most 4096 values
                out.extend_from_slice(&(a.len() as u32).to_le_bytes());
                for &v in a {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Container::Bitmap(b) => {
                out.push(KIND_BITMAP);
                // lint: allow(cast) a container's cardinality is at most 65536
                out.extend_from_slice(&(c.cardinality() as u32).to_le_bytes());
                for &w in b.iter() {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            Container::Run(runs) => {
                out.push(KIND_RUN);
                // lint: allow(cast) run containers hold at most 32768 runs
                out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
                for &(s, l) in runs {
                    out.extend_from_slice(&s.to_le_bytes());
                    out.extend_from_slice(&l.to_le_bytes());
                }
            }
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RoaringError> {
        // Checked add: a hostile length close to usize::MAX must not wrap
        // around and alias an in-bounds range.
        let end = self.pos.checked_add(n).ok_or(RoaringError::UnexpectedEnd)?;
        if end > self.buf.len() {
            return Err(RoaringError::UnexpectedEnd);
        }
        // lint: allow(indexing) end was bounds-checked against buf.len() above
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RoaringError> {
        // lint: allow(indexing) take(1) returns exactly 1 byte
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RoaringError> {
        let b = self.take(2)?;
        // lint: allow(indexing) take(2) returns exactly 2 bytes
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, RoaringError> {
        let b = self.take(4)?;
        // lint: allow(indexing) take(4) returns exactly 4 bytes
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

pub(crate) fn deserialize(bytes: &[u8]) -> Result<RoaringBitmap, RoaringError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let n_chunks = r.u32()? as usize;
    let mut chunks = Vec::with_capacity(n_chunks.min(1 << 16));
    let mut prev_key: Option<u16> = None;
    for _ in 0..n_chunks {
        let key = r.u16()?;
        if let Some(pk) = prev_key {
            if key <= pk {
                return Err(RoaringError::Corrupt("chunk keys not strictly increasing"));
            }
        }
        prev_key = Some(key);
        let kind = r.u8()?;
        let n = r.u32()? as usize;
        let container = match kind {
            KIND_ARRAY => {
                let raw = r.take(2 * n)?;
                let mut vals = Vec::with_capacity(n);
                for c in raw.chunks_exact(2) {
                    // lint: allow(indexing) chunks_exact(2) yields exactly 2 bytes
                    vals.push(u16::from_le_bytes([c[0], c[1]]));
                }
                // lint: allow(indexing) windows(2) yields exactly 2 elements
                if vals.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(RoaringError::Corrupt("array container not sorted"));
                }
                Container::Array(vals)
            }
            KIND_BITMAP => {
                let raw = r.take(8 * 1024)?;
                let mut words = Box::new([0u64; 1024]);
                for (i, c) in raw.chunks_exact(8).enumerate() {
                    // lint: allow(indexing) 8192 bytes yield exactly 1024 chunks
                    words[i] = u64::from_le_bytes(c.try_into().unwrap_or_default());
                }
                Container::Bitmap(words)
            }
            KIND_RUN => {
                let raw = r.take(4 * n)?;
                let mut runs = Vec::with_capacity(n);
                for c in raw.chunks_exact(4) {
                    runs.push((
                        // lint: allow(indexing) chunks_exact(4) yields exactly 4 bytes
                        u16::from_le_bytes([c[0], c[1]]),
                        // lint: allow(indexing) chunks_exact(4) yields exactly 4 bytes
                        u16::from_le_bytes([c[2], c[3]]),
                    ));
                }
                Container::Run(runs)
            }
            _ => return Err(RoaringError::Corrupt("unknown container kind")),
        };
        if container.cardinality() == 0 {
            return Err(RoaringError::Corrupt("empty container"));
        }
        chunks.push((key, container));
    }
    Ok(RoaringBitmap::from_chunks(chunks))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bm: &RoaringBitmap) {
        let bytes = bm.serialize();
        assert_eq!(bytes.len(), serialized_size(bm));
        let back = RoaringBitmap::deserialize(&bytes).unwrap();
        assert_eq!(&back, bm);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&RoaringBitmap::new());
    }

    #[test]
    fn roundtrip_array_bitmap_run() {
        // Sparse chunk (array), dense chunk (bitmap), run-optimized chunk.
        let mut bm = RoaringBitmap::from_sorted_iter(
            [5u32, 9, 1000].into_iter().chain(65_536..80_000).chain((200_000..200_100).step_by(2)),
        );
        bm.run_optimize();
        roundtrip(&bm);
    }

    #[test]
    fn deserialize_truncated_is_error() {
        let bm = RoaringBitmap::from_sorted_iter(0..100);
        let bytes = bm.serialize();
        assert_eq!(
            RoaringBitmap::deserialize(&bytes[..bytes.len() - 1]),
            Err(RoaringError::UnexpectedEnd)
        );
        assert_eq!(RoaringBitmap::deserialize(&[]), Err(RoaringError::UnexpectedEnd));
    }

    #[test]
    fn deserialize_bad_kind_is_error() {
        let bm = RoaringBitmap::from_sorted_iter([1u32]);
        let mut bytes = bm.serialize();
        bytes[6] = 99; // container kind
        assert!(matches!(
            RoaringBitmap::deserialize(&bytes),
            Err(RoaringError::Corrupt(_))
        ));
    }
}
