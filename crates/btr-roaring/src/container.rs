//! The three Roaring container kinds and their operations.

/// Maximum cardinality of an array container; beyond this a bitmap is denser.
/// 4096 × 2 bytes = 8 KiB, the break-even point against a 8 KiB bitset.
pub(crate) const ARRAY_MAX: usize = 4096;

pub(crate) const BITMAP_WORDS: usize = 1024;

/// One 2^16-value chunk of a Roaring bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Container {
    /// Sorted, deduplicated low 16-bit values.
    Array(Vec<u16>),
    /// 65536-bit bitset (1024 × u64).
    Bitmap(Box<[u64; BITMAP_WORDS]>),
    /// Sorted, non-overlapping, non-adjacent runs as `(start, length - 1)`.
    Run(Vec<(u16, u16)>),
}

impl Container {
    /// Builds the best container for a sorted, deduplicated slice of lows.
    pub fn from_sorted_lows(lows: &[u16]) -> Container {
        // lint: allow(indexing) windows(2) yields exactly 2 elements
        debug_assert!(lows.windows(2).all(|w| w[0] < w[1]));
        if lows.len() <= ARRAY_MAX {
            Container::Array(lows.to_vec())
        } else {
            let mut words = Box::new([0u64; BITMAP_WORDS]);
            for &low in lows {
                // lint: allow(indexing) low / 64 < 1024 for any u16 low
                words[usize::from(low) / 64] |= 1u64 << (low % 64);
            }
            Container::Bitmap(words)
        }
    }

    /// Cardinality of this container.
    pub fn cardinality(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Bitmap(b) => b.iter().map(|w| w.count_ones() as usize).sum(),
            Container::Run(runs) => runs.iter().map(|&(_, l)| usize::from(l) + 1).sum(),
        }
    }

    /// Membership test for a low 16-bit value.
    pub fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&low).is_ok(),
            // lint: allow(indexing) low / 64 < 1024 for any u16 low
            Container::Bitmap(b) => b[usize::from(low) / 64] & (1u64 << (low % 64)) != 0,
            Container::Run(runs) => match runs.binary_search_by_key(&low, |&(s, _)| s) {
                Ok(_) => true,
                Err(0) => false,
                Err(i) => {
                    // lint: allow(indexing) binary_search returned Err(i) with i > 0
                    let (start, len) = runs[i - 1];
                    u32::from(low) <= u32::from(start) + u32::from(len)
                }
            },
        }
    }

    /// Inserts `low`; returns true if newly inserted. Run containers are
    /// converted back to arrays/bitmaps first (runs are a read-mostly form).
    pub fn insert(&mut self, low: u16) -> bool {
        if let Container::Run(_) = self {
            *self = self.to_array_or_bitmap();
        }
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(_) => false,
                Err(i) => {
                    a.insert(i, low);
                    true
                }
            },
            Container::Bitmap(b) => {
                // lint: allow(indexing) low / 64 < 1024 for any u16 low
                let word = &mut b[usize::from(low) / 64];
                let bit = 1u64 << (low % 64);
                let was = *word & bit != 0;
                *word |= bit;
                !was
            }
            Container::Run(_) => unreachable!("converted above"),
        }
    }

    /// Removes `low`; returns true if it was present.
    pub fn remove(&mut self, low: u16) -> bool {
        if let Container::Run(_) = self {
            *self = self.to_array_or_bitmap();
        }
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(i) => {
                    a.remove(i);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(b) => {
                // lint: allow(indexing) low / 64 < 1024 for any u16 low
                let word = &mut b[usize::from(low) / 64];
                let bit = 1u64 << (low % 64);
                let was = *word & bit != 0;
                *word &= !bit;
                was
            }
            Container::Run(_) => unreachable!("converted above"),
        }
    }

    /// Converts an over-full array to a bitmap after an insert.
    pub fn maybe_convert_on_insert(&mut self) {
        if let Container::Array(a) = self {
            if a.len() > ARRAY_MAX {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                for &low in a.iter() {
                    // lint: allow(indexing) low / 64 < 1024 for any u16 low
                    words[usize::from(low) / 64] |= 1u64 << (low % 64);
                }
                *self = Container::Bitmap(words);
            }
        }
    }

    /// Number of values strictly below `low`.
    pub fn rank(&self, low: u16) -> usize {
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(i) | Err(i) => i,
            },
            Container::Bitmap(b) => {
                let word_idx = usize::from(low) / 64;
                // lint: allow(indexing) low / 64 < 1024 for any u16 low
                let mut count: usize = b[..word_idx].iter().map(|w| w.count_ones() as usize).sum();
                let rem = low % 64;
                if rem > 0 {
                    // lint: allow(indexing) low / 64 < 1024 for any u16 low
                    count += (b[word_idx] & ((1u64 << rem) - 1)).count_ones() as usize;
                }
                count
            }
            Container::Run(runs) => {
                let mut count = 0usize;
                for &(start, len) in runs {
                    if low <= start {
                        break;
                    }
                    let end = u32::from(start) + u32::from(len);
                    if u32::from(low) > end {
                        count += usize::from(len) + 1;
                    } else {
                        count += (u32::from(low) - u32::from(start)) as usize;
                        break;
                    }
                }
                count
            }
        }
    }

    /// Iterates values in ascending order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u16> + '_> {
        match self {
            Container::Array(a) => Box::new(a.iter().copied()),
            Container::Bitmap(b) => Box::new(b.iter().enumerate().flat_map(|(wi, &w)| {
                // lint: allow(cast) wi * 64 < 65536
                let base = (wi * 64) as u32;
                BitIter { word: w, base }
            })),
            Container::Run(runs) => Box::new(runs.iter().flat_map(|&(start, len)| {
                // lint: allow(cast) start + len <= u16::MAX by the run invariant
                (u32::from(start)..=u32::from(start) + u32::from(len)).map(|v| v as u16)
            })),
        }
    }

    /// Converts to a run container when that is strictly smaller.
    pub fn run_optimize(&mut self) {
        let runs = self.collect_runs();
        let run_size = 4 + runs.len() * 4;
        if run_size < self.size_bytes() {
            *self = Container::Run(runs);
        }
    }

    fn collect_runs(&self) -> Vec<(u16, u16)> {
        let mut runs: Vec<(u16, u16)> = Vec::new();
        for v in self.iter() {
            match runs.last_mut() {
                Some((start, len)) if u32::from(*start) + u32::from(*len) + 1 == u32::from(v) => {
                    *len += 1;
                }
                _ => runs.push((v, 0)),
            }
        }
        runs
    }

    fn to_array_or_bitmap(&self) -> Container {
        let lows: Vec<u16> = self.iter().collect();
        Container::from_sorted_lows(&lows)
    }

    /// In-memory footprint of the container payload in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Container::Array(a) => 2 * a.len(),
            Container::Bitmap(_) => 8 * BITMAP_WORDS,
            Container::Run(runs) => 4 * runs.len(),
        }
    }

    /// Union of two containers of the same key.
    pub fn union(&self, other: &Container) -> Container {
        let mut merged: Vec<u16> = Vec::with_capacity(self.cardinality() + other.cardinality());
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) => {
                    if x < y {
                        merged.push(x);
                        a.next();
                    } else if y < x {
                        merged.push(y);
                        b.next();
                    } else {
                        merged.push(x);
                        a.next();
                        b.next();
                    }
                }
                (Some(&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&y)) => {
                    merged.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        Container::from_sorted_lows(&merged)
    }

    /// Intersection of two containers of the same key.
    pub fn intersection(&self, other: &Container) -> Container {
        let mut out: Vec<u16> = Vec::new();
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
            if x < y {
                a.next();
            } else if y < x {
                b.next();
            } else {
                out.push(x);
                a.next();
                b.next();
            }
        }
        Container::from_sorted_lows(&out)
    }
}

/// Iterator over the set bits of a single u64 word.
struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u16;

    #[inline]
    fn next(&mut self) -> Option<u16> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        // lint: allow(cast) base + tz < 65536 for a 1024-word bitmap
        Some((self.base + tz) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_to_bitmap_conversion_threshold() {
        let lows: Vec<u16> = (0..(ARRAY_MAX as u16)).collect();
        assert!(matches!(Container::from_sorted_lows(&lows), Container::Array(_)));
        let lows: Vec<u16> = (0..=(ARRAY_MAX as u16)).collect();
        assert!(matches!(Container::from_sorted_lows(&lows), Container::Bitmap(_)));
    }

    #[test]
    fn run_container_contains_and_rank() {
        let c = Container::Run(vec![(10, 4), (100, 0)]); // {10..=14, 100}
        assert!(c.contains(10));
        assert!(c.contains(14));
        assert!(!c.contains(15));
        assert!(c.contains(100));
        assert_eq!(c.cardinality(), 6);
        assert_eq!(c.rank(12), 2);
        assert_eq!(c.rank(200), 6);
        assert_eq!(c.rank(5), 0);
    }

    #[test]
    fn run_at_u16_max_boundary() {
        let lows = vec![65_534u16, 65_535];
        let mut c = Container::from_sorted_lows(&lows);
        c.run_optimize();
        assert!(c.contains(65_535));
        assert_eq!(c.iter().collect::<Vec<_>>(), lows);
    }

    #[test]
    fn insert_into_run_container_converts() {
        let mut c = Container::Run(vec![(0, 9)]);
        assert!(c.insert(20));
        assert!(c.contains(20));
        assert!(c.contains(5));
        assert_eq!(c.cardinality(), 11);
    }

    #[test]
    fn bitmap_rank_mid_word() {
        let lows: Vec<u16> = (0..5000).collect();
        let c = Container::from_sorted_lows(&lows);
        assert_eq!(c.rank(70), 70);
        assert_eq!(c.rank(4999), 4999);
        assert_eq!(c.rank(5000), 5000);
        assert_eq!(c.rank(6000), 5000);
    }

    #[test]
    fn union_intersection_mixed_kinds() {
        let a = Container::from_sorted_lows(&(0..5000).collect::<Vec<u16>>()); // bitmap
        let b = Container::from_sorted_lows(&[3u16, 4999, 6000]); // array
        let u = a.union(&b);
        assert_eq!(u.cardinality(), 5001);
        let i = a.intersection(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 4999]);
    }
}
