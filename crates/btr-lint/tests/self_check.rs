//! The linter's own workspace must satisfy the contract it enforces: no
//! regressions against the committed ratchet, every `unsafe` documented,
//! and zero un-annotated indexing/casts in decode-path lib targets. This
//! is the same gate `scripts/check.sh` runs via `btr-lint --check`, kept
//! as a test so `cargo test` alone catches drift.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_is_clean_against_committed_ratchet() {
    let root = workspace_root();
    let (run, ratchet) = btr_lint::run_workspace(&root).expect("lint run");
    assert!(run.files_scanned > 0, "workspace scan found no Rust files");

    let (regressions, _) = run.diff_ratchet(&ratchet);
    assert!(
        regressions.is_empty(),
        "counts above the committed ratchet: {regressions:?}"
    );

    // U1 is zero workspace-wide: every unsafe site carries a SAFETY comment.
    let undocumented: Vec<String> = run
        .unsafe_inventory
        .iter()
        .filter(|s| !s.site.has_safety_comment)
        .map(|s| format!("{}:{}", s.file, s.site.line))
        .collect();
    assert!(
        undocumented.is_empty(),
        "unsafe without SAFETY comment: {undocumented:?}"
    );
}

#[test]
fn decode_path_crates_have_no_unannotated_debt() {
    let root = workspace_root();
    let config_text = std::fs::read_to_string(root.join(btr_lint::CONFIG_FILE))
        .expect("btr-lint.toml at the workspace root");
    let config = btr_lint::Config::parse(&config_text).expect("config parses");
    assert!(
        !config.decode_path_crates.is_empty(),
        "decode-path crate list must not be empty"
    );

    let (run, _) = btr_lint::run_workspace(&root).expect("lint run");
    for krate in &config.decode_path_crates {
        assert!(
            run.counts.contains_key(krate),
            "decode-path crate `{krate}` not found in the workspace"
        );
        for rule in ["indexing", "cast", "banned_macro", "bad_annotation"] {
            let n = run
                .counts
                .get(krate)
                .and_then(|m| m.get(rule))
                .copied()
                .unwrap_or(0);
            assert_eq!(n, 0, "[{krate}] {rule} must stay at zero");
        }
    }
}

#[test]
fn concurrency_crates_honor_the_lock_and_atomics_contract() {
    let root = workspace_root();
    let config_text = std::fs::read_to_string(root.join(btr_lint::CONFIG_FILE))
        .expect("btr-lint.toml at the workspace root");
    let config = btr_lint::Config::parse(&config_text).expect("config parses");
    assert!(
        !config.concurrency_crates.is_empty(),
        "concurrency crate list must not be empty"
    );

    let (run, _) = btr_lint::run_workspace(&root).expect("lint run");
    for krate in &config.concurrency_crates {
        assert!(
            run.counts.contains_key(krate),
            "concurrency crate `{krate}` not found in the workspace"
        );
        for rule in ["rawlock", "lock_rank", "bare_wait"] {
            let n = run
                .counts
                .get(krate)
                .and_then(|m| m.get(rule))
                .copied()
                .unwrap_or(0);
            assert_eq!(n, 0, "[{krate}] {rule} must stay at zero");
        }
    }

    // C3 is workspace-wide (every lib target), not just concurrency crates.
    let unannotated: u64 = run
        .counts
        .values()
        .filter_map(|m| m.get("atomic_ordering"))
        .sum();
    assert_eq!(
        unannotated, 0,
        "every `Ordering::` site needs an `// ordering:` annotation"
    );
}

#[test]
fn lock_hierarchy_table_is_fully_backed() {
    let root = workspace_root();
    let config_text = std::fs::read_to_string(root.join(btr_lint::CONFIG_FILE))
        .expect("btr-lint.toml at the workspace root");
    let config = btr_lint::Config::parse(&config_text).expect("config parses");
    assert!(
        !config.lock_order.is_empty(),
        "the [lock_order] hierarchy table must not be empty"
    );

    let (run, _) = btr_lint::run_workspace(&root).expect("lint run");
    assert_eq!(
        run.lock_inventory.len(),
        config.lock_order.len(),
        "inventory must carry one row per declared lock"
    );
    for lock in &run.lock_inventory {
        assert!(
            !lock.const_name.is_empty(),
            "lock `{}` has no backing `Rank` declaration",
            lock.name
        );
        assert!(
            lock.construction_sites >= 1,
            "lock `{}` is declared but never constructed",
            lock.name
        );
    }
}
