//! Workspace discovery and the lint driver.
//!
//! Crates are discovered by scanning `crates/*/Cargo.toml` plus the root
//! package. Targets are classified from the conventional cargo layout:
//! everything under `src/` except `src/main.rs` and `src/bin/` is the lib
//! target; `src/main.rs`, `src/bin/`, `tests/`, `examples/` and `benches/`
//! are non-lib. U1/U2 run on every `.rs` file of every target; P1/P2 run on
//! lib files of decode-path crates; P3 runs on lib files of every crate.

use crate::config::{Config, Ratchet};
use crate::rules::{analyze, FileRules, RankDecl, Rule, UnsafeSite, Violation, WrapperSite};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One discovered workspace member.
#[derive(Debug)]
pub struct Crate {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Crate root directory, workspace-relative.
    pub dir: PathBuf,
}

/// A violation bound to its file and crate.
#[derive(Debug)]
pub struct SitedViolation {
    pub krate: String,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub violation: Violation,
}

/// An `unsafe` inventory entry bound to its file.
#[derive(Debug)]
pub struct SitedUnsafe {
    pub krate: String,
    pub file: String,
    pub site: UnsafeSite,
    pub allowlisted: bool,
}

/// One `[lock_order]` row joined with the evidence found in source — the
/// report's lock inventory.
#[derive(Debug, Clone)]
pub struct LockInventory {
    /// Hierarchy name (the `Rank`'s string).
    pub name: String,
    /// Numeric rank.
    pub rank: u64,
    /// File declaring the rank const (from the table).
    pub file: String,
    /// Guarded field(s), for the human reader.
    pub field: String,
    /// The Rust const backing the row (empty when the cross-check failed).
    pub const_name: String,
    /// Ordered-wrapper construction sites naming this rank.
    pub construction_sites: u64,
}

/// Aggregated result of linting the workspace.
#[derive(Debug, Default)]
pub struct LintRun {
    pub violations: Vec<SitedViolation>,
    pub unsafe_inventory: Vec<SitedUnsafe>,
    /// The lock hierarchy with per-rank construction evidence (C2).
    pub lock_inventory: Vec<LockInventory>,
    /// `crate → rule key → violation count` (all crates present, all rules).
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Escape hatches honoured.
    pub suppressed: usize,
}

impl LintRun {
    /// Current counts as a ratchet (for `--update-ratchet`).
    pub fn to_ratchet(&self) -> Ratchet {
        Ratchet {
            counts: self.counts.clone(),
        }
    }

    /// Compares against an allowed ratchet. Returns `(regressions,
    /// improvements)`: regressions are `(crate, rule, current, allowed)`
    /// with `current > allowed`; improvements have `current < allowed`.
    #[allow(clippy::type_complexity)]
    pub fn diff_ratchet(
        &self,
        ratchet: &Ratchet,
    ) -> (Vec<(String, String, u64, u64)>, Vec<(String, String, u64, u64)>) {
        let mut regressions = Vec::new();
        let mut improvements = Vec::new();
        // Every (crate, rule) present on either side is compared.
        let mut keys: Vec<(String, String)> = Vec::new();
        for (k, rules) in self.counts.iter().chain(ratchet.counts.iter()) {
            for r in rules.keys() {
                if !keys.iter().any(|(ck, cr)| ck == k && cr == r) {
                    keys.push((k.clone(), r.clone()));
                }
            }
        }
        for (k, r) in keys {
            let current = self
                .counts
                .get(&k)
                .and_then(|m| m.get(&r))
                .copied()
                .unwrap_or(0);
            let allowed = ratchet.allowed(&k, &r);
            if current > allowed {
                regressions.push((k.clone(), r.clone(), current, allowed));
            } else if current < allowed {
                improvements.push((k.clone(), r.clone(), current, allowed));
            }
        }
        (regressions, improvements)
    }
}

/// Discovers workspace members: the root package plus `crates/*`.
pub fn discover_crates(root: &Path) -> std::io::Result<Vec<Crate>> {
    let mut out = Vec::new();
    if let Some(name) = package_name(&root.join("Cargo.toml"))? {
        out.push(Crate {
            name,
            dir: PathBuf::new(),
        });
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for dir in entries {
            let manifest = dir.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            if let Some(name) = package_name(&manifest)? {
                let rel = dir
                    .strip_prefix(root)
                    .unwrap_or(&dir)
                    .to_path_buf();
                out.push(Crate { name, dir: rel });
            }
        }
    }
    Ok(out)
}

/// First `name = "…"` in a manifest (the `[package]` name by convention).
fn package_name(manifest: &Path) -> std::io::Result<Option<String>> {
    let text = std::fs::read_to_string(manifest)?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                let v = v.trim().trim_matches('"');
                return Ok(Some(v.to_string()));
            }
        }
        if line.starts_with('[') && line != "[package]" {
            // Left the [package] table without a name — unusual; stop.
            break;
        }
    }
    Ok(None)
}

/// Recursively collects `.rs` files under `dir` (sorted for determinism).
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.filter_map(|e| e.ok()) {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n != "target") {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Whether `rel` (crate-relative) belongs to the crate's lib target.
fn is_lib_file(rel: &Path) -> bool {
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match comps.next().as_deref() {
        Some("src") => !matches!(comps.next().as_deref(), Some("bin" | "main.rs")),
        _ => false,
    }
}

/// Lints the whole workspace under `root`.
pub fn run(root: &Path, config: &Config) -> std::io::Result<LintRun> {
    let crates = discover_crates(root)?;
    let mut run = LintRun::default();
    // C2 raw material, accumulated across files as `(crate, file, item)`.
    let mut rank_decls: Vec<(String, String, RankDecl)> = Vec::new();
    let mut wrapper_sites: Vec<(String, String, WrapperSite)> = Vec::new();
    for krate in &crates {
        // Seed the counts map so clean crates appear explicitly as zeros.
        let slot = run.counts.entry(krate.name.clone()).or_default();
        for rule in Rule::ALL {
            slot.insert(rule.key().to_string(), 0);
        }
        let decode = config.decode_path_crates.contains(&krate.name);
        let concurrency = config.concurrency_crates.contains(&krate.name);
        let crate_root = root.join(&krate.dir);
        for sub in ["src", "tests", "examples", "benches"] {
            let dir = crate_root.join(sub);
            if !dir.is_dir() {
                continue;
            }
            for file in rs_files(&dir) {
                let rel_to_crate = file
                    .strip_prefix(&crate_root)
                    .unwrap_or(&file)
                    .to_path_buf();
                let rel_to_root = file.strip_prefix(root).unwrap_or(&file);
                let rel_str = rel_to_root
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let lib = sub == "src" && is_lib_file(&rel_to_crate);
                let rules = FileRules {
                    unsafe_allowed: config.unsafe_allow.contains(&rel_str),
                    decode_path: decode && lib,
                    lib_target: lib,
                    concurrency_lib: concurrency && lib,
                    atomics: lib && !config.atomics_allow.contains(&rel_str),
                };
                let src = std::fs::read_to_string(&file)?;
                let analysis = analyze(&src, rules);
                run.files_scanned += 1;
                run.suppressed += analysis.suppressed;
                for v in analysis.violations {
                    let slot = run.counts.entry(krate.name.clone()).or_default();
                    *slot.entry(v.rule.key().to_string()).or_insert(0) += 1;
                    run.violations.push(SitedViolation {
                        krate: krate.name.clone(),
                        file: rel_str.clone(),
                        violation: v,
                    });
                }
                for site in analysis.unsafe_sites {
                    run.unsafe_inventory.push(SitedUnsafe {
                        krate: krate.name.clone(),
                        file: rel_str.clone(),
                        site,
                        allowlisted: rules.unsafe_allowed,
                    });
                }
                for d in analysis.rank_decls {
                    rank_decls.push((krate.name.clone(), rel_str.clone(), d));
                }
                for w in analysis.wrapper_sites {
                    wrapper_sites.push((krate.name.clone(), rel_str.clone(), w));
                }
            }
        }
    }
    cross_check_lock_order(&mut run, config, &crates, &rank_decls, &wrapper_sites);
    run.violations.sort_by(|a, b| {
        (&a.file, a.violation.line).cmp(&(&b.file, b.violation.line))
    });
    run.unsafe_inventory
        .sort_by(|a, b| (&a.file, a.site.line).cmp(&(&b.file, b.site.line)));
    Ok(run)
}

/// Records a C2 violation into both the counts map and the violation list.
fn record_lock_rank(run: &mut LintRun, krate: &str, file: &str, line: u32, what: String) {
    let slot = run.counts.entry(krate.to_string()).or_default();
    *slot.entry(Rule::LockRank.key().to_string()).or_insert(0) += 1;
    run.violations.push(SitedViolation {
        krate: krate.to_string(),
        file: file.to_string(),
        violation: Violation {
            rule: Rule::LockRank,
            line,
            what,
        },
    });
}

/// The crate owning a workspace-relative file path (longest dir prefix).
fn crate_of_file<'a>(crates: &'a [Crate], file: &str) -> &'a str {
    let mut best: Option<(&str, usize)> = None;
    for c in crates {
        let dir = c
            .dir
            .components()
            .map(|p| p.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let matches = dir.is_empty() || file.starts_with(&format!("{dir}/"));
        if matches && best.is_none_or(|(_, len)| dir.len() >= len) {
            best = Some((c.name.as_str(), dir.len()));
        }
    }
    best.map(|(name, _)| name).unwrap_or("workspace")
}

/// Rule C2: the `[lock_order]` table, the `Rank` consts, and the wrapper
/// construction sites must tell one consistent story — every declared rank
/// appears in the table (same number, same file), every table row is backed
/// by a declaration that is actually used, ranks and names are unique, and
/// every wrapper construction names a known rank const.
fn cross_check_lock_order(
    run: &mut LintRun,
    config: &Config,
    crates: &[Crate],
    rank_decls: &[(String, String, RankDecl)],
    wrapper_sites: &[(String, String, WrapperSite)],
) {
    // Duplicate rank numbers or hierarchy names among declarations.
    for (i, (krate, file, d)) in rank_decls.iter().enumerate() {
        for (_, file2, d2) in rank_decls.iter().take(i) {
            if d.rank == d2.rank {
                record_lock_rank(
                    run,
                    krate,
                    file,
                    d.line,
                    format!(
                        "rank {} of `{}` duplicates `{}` ({file2})",
                        d.rank, d.name, d2.name
                    ),
                );
            }
            if d.name == d2.name {
                record_lock_rank(
                    run,
                    krate,
                    file,
                    d.line,
                    format!("lock name `{}` already declared in {file2}", d.name),
                );
            }
        }
    }
    // Every declaration against the table.
    for (krate, file, d) in rank_decls {
        match config.lock_order.iter().find(|e| e.name == d.name) {
            None => record_lock_rank(
                run,
                krate,
                file,
                d.line,
                format!(
                    "`{}` (rank {}, `{}`) is not in btr-lint.toml's [lock_order] table",
                    d.const_name, d.rank, d.name
                ),
            ),
            Some(e) => {
                if e.rank != d.rank {
                    record_lock_rank(
                        run,
                        krate,
                        file,
                        d.line,
                        format!(
                            "`{}` declares rank {} but [lock_order.{}] says {}",
                            d.const_name, d.rank, d.name, e.rank
                        ),
                    );
                }
                if e.file != *file {
                    record_lock_rank(
                        run,
                        krate,
                        file,
                        d.line,
                        format!(
                            "`{}` lives in {file} but [lock_order.{}] says {}",
                            d.const_name, d.name, e.file
                        ),
                    );
                }
            }
        }
    }
    // Every table row backed by a declaration (an unbacked row is stale
    // documentation, which is worse than none).
    for e in &config.lock_order {
        if !rank_decls.iter().any(|(_, _, d)| d.name == e.name) {
            record_lock_rank(
                run,
                crate_of_file(crates, &e.file),
                &e.file,
                0,
                format!("[lock_order.{}] has no backing Rank declaration", e.name),
            );
        }
    }
    // Every wrapper construction names a known rank const, and every rank
    // const is constructed with at least once (unused ranks rot).
    for (krate, file, w) in wrapper_sites {
        if !rank_decls.iter().any(|(_, _, d)| d.const_name == w.rank_const) {
            record_lock_rank(
                run,
                krate,
                file,
                w.line,
                format!(
                    "{}::new's rank `{}` is not a declared Rank const (ranks must be named consts)",
                    w.wrapper, w.rank_const
                ),
            );
        }
    }
    for (krate, file, d) in rank_decls {
        if !wrapper_sites.iter().any(|(_, _, w)| w.rank_const == d.const_name) {
            record_lock_rank(
                run,
                krate,
                file,
                d.line,
                format!("rank const `{}` (`{}`) is never used", d.const_name, d.name),
            );
        }
    }
    // The inventory: table rows joined with their evidence, in rank order.
    run.lock_inventory = config
        .lock_order
        .iter()
        .map(|e| LockInventory {
            name: e.name.clone(),
            rank: e.rank,
            file: e.file.clone(),
            field: e.field.clone(),
            const_name: rank_decls
                .iter()
                .find(|(_, _, d)| d.name == e.name)
                .map(|(_, _, d)| d.const_name.clone())
                .unwrap_or_default(),
            construction_sites: wrapper_sites
                .iter()
                .filter(|(_, _, w)| {
                    rank_decls
                        .iter()
                        .any(|(_, _, d)| d.name == e.name && d.const_name == w.rank_const)
                })
                .count() as u64,
        })
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, &str, u64)]) -> BTreeMap<String, BTreeMap<String, u64>> {
        let mut out: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for &(k, r, n) in pairs {
            out.entry(k.into()).or_default().insert(r.into(), n);
        }
        out
    }

    #[test]
    fn ratchet_diff_finds_regressions_and_improvements() {
        let run = LintRun {
            counts: counts(&[("a", "indexing", 3), ("a", "cast", 0), ("c", "indexing", 1)]),
            ..LintRun::default()
        };
        let ratchet = Ratchet {
            counts: counts(&[("a", "indexing", 1), ("a", "cast", 2), ("b", "banned_macro", 5)]),
        };
        let (reg, imp) = run.diff_ratchet(&ratchet);
        // Counts above the ratchet are regressions — including a crate the
        // ratchet has never seen (absent ⇒ allowed 0).
        assert_eq!(
            reg,
            vec![
                ("a".to_string(), "indexing".to_string(), 3, 1),
                ("c".to_string(), "indexing".to_string(), 1, 0),
            ]
        );
        // Counts below the ratchet are improvements (burn-down candidates),
        // including ratchet entries for crates missing from the run.
        assert_eq!(
            imp,
            vec![
                ("a".to_string(), "cast".to_string(), 0, 2),
                ("b".to_string(), "banned_macro".to_string(), 0, 5),
            ]
        );
    }

    #[test]
    fn tightened_ratchet_matches_current_counts_exactly() {
        let run = LintRun {
            counts: counts(&[("a", "indexing", 1)]),
            ..LintRun::default()
        };
        let tightened = run.to_ratchet();
        assert_eq!(tightened.allowed("a", "indexing"), 1);
        let (reg, imp) = run.diff_ratchet(&tightened);
        assert!(reg.is_empty() && imp.is_empty());
    }

    #[test]
    fn lib_file_classification() {
        assert!(is_lib_file(Path::new("src/lib.rs")));
        assert!(is_lib_file(Path::new("src/scheme/mod.rs")));
        assert!(!is_lib_file(Path::new("src/main.rs")));
        assert!(!is_lib_file(Path::new("src/bin/tool.rs")));
        assert!(!is_lib_file(Path::new("tests/roundtrip.rs")));
    }
}
