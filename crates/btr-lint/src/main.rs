//! CLI driver. See the crate docs for the rule set.
//!
//! ```text
//! cargo run -p btr-lint                  # report + LINT_report.json, exit 0
//! cargo run -p btr-lint -- --check      # fail on any violation above ratchet
//! cargo run -p btr-lint -- --update-ratchet   # rewrite lint-ratchet.toml
//! cargo run -p btr-lint -- --root DIR --report FILE
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut update_ratchet = false;
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--update-ratchet" => update_ratchet = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => return usage("--report needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "btr-lint — decode-path safety & concurrency contract checker\n\n\
                     USAGE: btr-lint [--check] [--update-ratchet] [--root DIR] [--report FILE]\n\n\
                     --check           exit 1 if any (crate, rule) count exceeds lint-ratchet.toml\n\
                     --update-ratchet  rewrite lint-ratchet.toml with the current counts\n\
                     --root DIR        workspace root (default: current directory)\n\
                     --report FILE     where to write the JSON report (default: LINT_report.json)"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // When invoked via `cargo run -p btr-lint` the working directory is the
    // workspace root already; a nested invocation can climb via --root.
    if !root.join(btr_lint::CONFIG_FILE).is_file() && root.join("..").join("..").join(btr_lint::CONFIG_FILE).is_file() {
        root = root.join("..").join("..");
    }

    let (run, ratchet) = match btr_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("btr-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = btr_lint::report::render_json(&run);
    let report_path = report_path.unwrap_or_else(|| root.join("LINT_report.json"));
    if let Err(e) = std::fs::write(&report_path, report) {
        eprintln!("btr-lint: writing {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }

    let unsafe_total = run.unsafe_inventory.len();
    let safety_ok = run
        .unsafe_inventory
        .iter()
        .filter(|s| s.site.has_safety_comment)
        .count();
    println!(
        "btr-lint: scanned {} files — {} violations, {} suppressed by annotation, {} unsafe sites ({} with SAFETY comments)",
        run.files_scanned,
        run.violations.len(),
        run.suppressed,
        unsafe_total,
        safety_ok
    );

    if update_ratchet {
        let path = root.join(btr_lint::RATCHET_FILE);
        if let Err(e) = std::fs::write(&path, run.to_ratchet().to_toml()) {
            eprintln!("btr-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("btr-lint: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let (regressions, improvements) = run.diff_ratchet(&ratchet);
    for (krate, rule, cur, allowed) in &improvements {
        println!(
            "note: [{krate}] {rule}: {cur} < ratchet {allowed} — tighten with --update-ratchet"
        );
    }
    if !regressions.is_empty() {
        for (krate, rule, cur, allowed) in &regressions {
            eprintln!("RATCHET VIOLATION: [{krate}] {rule}: {cur} > allowed {allowed}");
        }
        for v in &run.violations {
            let over = regressions
                .iter()
                .any(|(k, r, _, _)| *k == v.krate && r == v.violation.rule.key());
            if over {
                eprintln!(
                    "  {}:{}: [{}] {}",
                    v.file,
                    v.violation.line,
                    v.violation.rule.key(),
                    v.violation.what
                );
            }
        }
        if check {
            eprintln!(
                "btr-lint: FAILED — new violations above the committed ratchet ({})",
                btr_lint::RATCHET_FILE
            );
            return ExitCode::FAILURE;
        }
    } else if check {
        println!("btr-lint: clean against {}", btr_lint::RATCHET_FILE);
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("btr-lint: {msg} (try --help)");
    ExitCode::FAILURE
}
