//! A hand-rolled Rust lexer — just enough fidelity for lint rules.
//!
//! The tokenizer understands everything that can *hide* tokens from a naive
//! text scan: line and (nested) block comments, string literals, raw string
//! literals with arbitrary `#` fences, byte strings, char literals (including
//! escapes), and lifetimes (so `'a` is not mistaken for an unterminated char
//! literal). Everything else becomes identifiers, numbers, or single-char
//! punctuation. That is all the rule engine needs: rules never look *inside*
//! literals, they only need to know that `"unsafe"` in a string is not the
//! keyword `unsafe` and that a brace inside a char literal does not change
//! block depth.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rule engine distinguishes via text).
    Ident,
    /// Lifetime such as `'a` (including the quote).
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String, byte-string, raw-string, or C-string literal.
    Str,
    /// Char or byte literal such as `'x'` or `b'\n'`.
    Char,
    /// `// …` comment (text includes the slashes; doc comments too).
    LineComment,
    /// `/* … */` comment, nesting handled (text includes delimiters).
    BlockComment,
    /// Any single punctuation character (`{`, `[`, `+`, `#`, …).
    Punct(char),
}

/// One token with its position. `text` borrows from the source.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token<'_> {
    /// Whether this token is a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Tokenizes `src`. The lexer is total: malformed input (unterminated
/// literal, stray byte) never panics, it degrades to best-effort tokens so
/// the linter can still scan the rest of the file.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while let Some(&c) = self.bytes.get(self.pos) {
            let start = self.pos;
            let line = self.line;
            let kind = match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                c if c.is_ascii_whitespace() => {
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' if self.is_raw_string_start(0) => self.raw_string(0),
                b'b' if self.peek(1) == Some(b'\'') => self.char_lit(1),
                b'b' if self.peek(1) == Some(b'"') => self.string(1),
                b'b' if self.peek(1) == Some(b'r') && self.is_raw_string_start(1) => {
                    self.raw_string(1)
                }
                b'c' if self.peek(1) == Some(b'"') => self.string(1),
                b'"' => self.string(0),
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(),
                _ => {
                    self.pos += 1;
                    TokKind::Punct(c as char)
                }
            };
            out.push(Token {
                kind,
                text: self.src.get(start..self.pos).unwrap_or(""),
                line,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// `r"` / `r#"` / `r##"` … starting `off` bytes after `self.pos` (so a
    /// `br` prefix can share the check). Requires the quote to follow the
    /// fence — `r#foo` (raw identifier) has no quote and lexes as an ident.
    fn is_raw_string_start(&self, off: usize) -> bool {
        let mut i = self.pos + off + 1;
        while self.bytes.get(i) == Some(&b'#') {
            i += 1;
        }
        self.bytes.get(i) == Some(&b'"')
    }

    fn bump_line(&mut self, c: u8) {
        if c == b'\n' {
            self.line += 1;
        }
    }

    fn line_comment(&mut self) -> TokKind {
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == b'\n' {
                break;
            }
            self.pos += 1;
        }
        TokKind::LineComment
    }

    fn block_comment(&mut self) -> TokKind {
        self.pos += 2;
        let mut depth = 1u32;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if c == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.bump_line(c);
                self.pos += 1;
            }
        }
        TokKind::BlockComment
    }

    /// Raw string with `prefix_len` bytes before the `r` (0 for `r"…"`,
    /// 1 for `br"…"`). No escapes; terminated by `"` plus the same fence.
    fn raw_string(&mut self, prefix_len: usize) -> TokKind {
        self.pos += prefix_len + 1; // past prefix and 'r'
        let mut fence = 0usize;
        while self.peek(0) == Some(b'#') {
            fence += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == b'"' {
                let closes = (1..=fence).all(|k| self.peek(k) == Some(b'#'));
                if closes {
                    self.pos += 1 + fence;
                    return TokKind::Str;
                }
            }
            self.bump_line(c);
            self.pos += 1;
        }
        TokKind::Str // unterminated: consume to EOF
    }

    /// Regular (escaped) string; `prefix_len` covers `b"`/`c"` prefixes.
    fn string(&mut self, prefix_len: usize) -> TokKind {
        self.pos += prefix_len + 1;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return TokKind::Str;
                }
                _ => {
                    self.bump_line(c);
                    self.pos += 1;
                }
            }
        }
        TokKind::Str
    }

    /// Char literal starting at a `b` prefix (`off == 1`) or bare quote.
    fn char_lit(&mut self, off: usize) -> TokKind {
        self.pos += off + 1;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    return TokKind::Char;
                }
                b'\n' => break, // malformed; don't eat the rest of the file
                _ => self.pos += 1,
            }
        }
        TokKind::Char
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): a quote two chars
    /// ahead of an identifier-start means char literal, otherwise lifetime.
    /// Escapes (`'\n'`) are always char literals.
    fn char_or_lifetime(&mut self) -> TokKind {
        match self.peek(1) {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                if self.peek(2) == Some(b'\'') {
                    self.char_lit(0)
                } else {
                    // Lifetime: consume quote + identifier.
                    self.pos += 2;
                    while let Some(&c) = self.bytes.get(self.pos) {
                        if c == b'_' || c.is_ascii_alphanumeric() {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    TokKind::Lifetime
                }
            }
            _ => self.char_lit(0),
        }
    }

    fn number(&mut self) -> TokKind {
        // Consume [0-9a-zA-Z_] (covers hex/oct/bin digits and suffixes like
        // u32), a `.` only when followed by a digit (so `0..n` stays a range
        // expression), and an exponent sign directly after e/E.
        self.pos += 1;
        while let Some(&c) = self.bytes.get(self.pos) {
            let continues = c == b'_'
                || c.is_ascii_alphanumeric()
                || (c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == b'+' || c == b'-')
                    && matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            self.pos += 1;
        }
        TokKind::Number
    }

    fn ident(&mut self) -> TokKind {
        self.pos += 1;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        TokKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_keywords() {
        let toks = kinds(r#"let s = "unsafe { }";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || *t != "unsafe"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r##\"unsafe \" quote # \"# still\"##; x";
        let toks = kinds(src);
        let s = toks.iter().find(|(k, _)| *k == TokKind::Str).unwrap();
        assert!(s.1.contains("still"));
        assert_eq!(toks.last().unwrap().1, "x");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r###"let a = b"ab\""; let b = br#"un{safe"#; done"###);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            2
        );
        assert_eq!(toks.last().unwrap().1, "done");
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'b'; let n = '\\n'; let brace = '{'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            3
        );
        // The brace inside the char literal must not appear as punctuation.
        let braces = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::Punct('{')))
            .count();
        assert_eq!(braces, 1);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1].1, "after");
    }

    #[test]
    fn line_numbers_accumulate() {
        let toks = lex("a\nb\n\n  c /* x\ny */ d");
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 4);
        assert_eq!(find("d"), 5);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { a[i] }");
        assert!(toks.iter().any(|(_, t)| *t == "0"));
        assert!(toks.iter().any(|(_, t)| *t == "10"));
        let dots = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::Punct('.')))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn float_literals_and_suffixes() {
        let toks = kinds("let x = 1.5e-3; let y = 0xFFu32; let z = 1_000;");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0xFFu32", "1_000"]);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        lex("let s = \"never closed");
        lex("let s = r#\"never closed");
        lex("let c = '");
        lex("/* never closed");
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let toks = kinds("let r#type = 1; r#fn");
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Str));
    }
}
