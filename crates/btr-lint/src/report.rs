//! `LINT_report.json` emission (hand-rolled JSON, no dependencies).

use crate::workspace::LintRun;
use std::fmt::Write as _;

/// Renders the machine-readable report: per-crate rule counts, the unsafe
/// inventory (file:line + SAFETY status), and totals for trend tracking.
pub fn render_json(run: &LintRun) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"tool\": \"btr-lint\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", run.files_scanned);
    let _ = writeln!(out, "  \"suppressed_by_annotation\": {},", run.suppressed);
    let _ = writeln!(out, "  \"total_violations\": {},", run.violations.len());

    out.push_str("  \"crates\": {\n");
    let mut first_crate = true;
    for (krate, rules) in &run.counts {
        if !first_crate {
            out.push_str(",\n");
        }
        first_crate = false;
        let _ = write!(out, "    {}: {{", quote(krate));
        let mut first_rule = true;
        for (rule, n) in rules {
            if !first_rule {
                out.push_str(", ");
            }
            first_rule = false;
            let _ = write!(out, "{}: {}", quote(rule), n);
        }
        out.push('}');
    }
    out.push_str("\n  },\n");

    out.push_str("  \"lock_inventory\": [\n");
    for (i, l) in run.lock_inventory.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": {}, \"rank\": {}, \"file\": {}, \"field\": {}, \"const\": {}, \"construction_sites\": {}}}",
            quote(&l.name),
            l.rank,
            quote(&l.file),
            quote(&l.field),
            quote(&l.const_name),
            l.construction_sites
        );
        out.push_str(if i + 1 == run.lock_inventory.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");

    out.push_str("  \"unsafe_inventory\": [\n");
    for (i, s) in run.unsafe_inventory.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"file\": {}, \"line\": {}, \"kind\": {}, \"safety_comment\": {}, \"allowlisted\": {}}}",
            quote(&s.file),
            s.site.line,
            quote(s.site.kind),
            s.site.has_safety_comment,
            s.allowlisted
        );
        out.push_str(if i + 1 == run.unsafe_inventory.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");

    out.push_str("  \"violations\": [\n");
    for (i, v) in run.violations.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"crate\": {}, \"file\": {}, \"line\": {}, \"rule\": {}, \"what\": {}}}",
            quote(&v.krate),
            quote(&v.file),
            v.violation.line,
            quote(v.violation.rule.key()),
            quote(&v.violation.what)
        );
        out.push_str(if i + 1 == run.violations.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON string escaping for the characters that can occur in paths,
/// messages, and code excerpts.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Rule, UnsafeSite, Violation};
    use crate::workspace::{LintRun, SitedUnsafe, SitedViolation};

    #[test]
    fn report_is_valid_enough_json() {
        let mut run = LintRun {
            files_scanned: 2,
            ..LintRun::default()
        };
        run.counts
            .entry("x".into())
            .or_default()
            .insert("indexing".into(), 1);
        run.violations.push(SitedViolation {
            krate: "x".into(),
            file: "crates/x/src/lib.rs".into(),
            violation: Violation {
                rule: Rule::Indexing,
                line: 7,
                what: "direct indexing `v[…]`\"quoted\"".into(),
            },
        });
        run.unsafe_inventory.push(SitedUnsafe {
            krate: "x".into(),
            file: "crates/x/src/simd.rs".into(),
            site: UnsafeSite {
                line: 3,
                kind: "block",
                has_safety_comment: true,
            },
            allowlisted: true,
        });
        let json = render_json(&run);
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"indexing\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"safety_comment\": true"));
        // Balanced braces/brackets (cheap structural sanity check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
        assert_eq!(
            json.matches('[').count() - json.matches("[…]").count(),
            json.matches(']').count() - json.matches("[…]").count()
        );
    }
}
