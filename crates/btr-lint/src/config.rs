//! Configuration (`btr-lint.toml`) and ratchet (`lint-ratchet.toml`) files.
//!
//! Both are parsed by a tiny hand-rolled reader for the TOML subset the tool
//! actually writes: `[section]` headers, `key = "string"`, `key = 123`, and
//! `key = [ "a", "b" ]` arrays (single- or multi-line). Keeping the parser
//! in-tree preserves the crate's hermeticity guarantee — `btr-lint` has zero
//! dependencies, so it can never be broken by (or lie about) the workspace
//! it audits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One row of the workspace lock hierarchy (`[lock_order.<name>]`): every
/// `btr_sync` lock must declare a rank that appears here, and every row here
/// must be backed by a `Rank` const in the named file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockOrderEntry {
    /// Hierarchy name, e.g. `scan.cache.shard` (the `Rank`'s name string).
    pub name: String,
    /// Numeric rank; acquisitions must be strictly increasing.
    pub rank: u64,
    /// Workspace-relative file declaring the `Rank` const.
    pub file: String,
    /// The field (or fields) guarded, for the human reading the table.
    pub field: String,
}

/// Tool configuration, from `btr-lint.toml` at the workspace root.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files (workspace-relative, `/`-separated) allowed to contain
    /// `unsafe` (rule U2).
    pub unsafe_allow: Vec<String>,
    /// Crates whose lib targets sit on the decode path (rules P1/P2).
    pub decode_path_crates: Vec<String>,
    /// Crates whose lib targets must use `btr_sync` wrappers instead of raw
    /// `std::sync` primitives (rules C1/C2/C4).
    pub concurrency_crates: Vec<String>,
    /// Files exempt from the atomics-ordering annotation rule (C3) — a
    /// reviewed list, empty in a fully-audited workspace.
    pub atomics_allow: Vec<String>,
    /// The workspace lock hierarchy (rule C2), sorted by rank.
    pub lock_order: Vec<LockOrderEntry>,
}

impl Config {
    /// Parses `btr-lint.toml` content.
    pub fn parse(text: &str) -> Result<Config, String> {
        let doc = parse_toml(text)?;
        let mut lock_order = Vec::new();
        for (section, entries) in &doc.sections {
            let Some(name) = section.strip_prefix("lock_order.") else {
                continue;
            };
            let mut entry = LockOrderEntry {
                name: name.to_string(),
                ..LockOrderEntry::default()
            };
            for (key, value) in entries {
                match (key.as_str(), value) {
                    ("rank", Value::Int(n)) => entry.rank = *n,
                    ("file", Value::Str(s)) => entry.file = s.clone(),
                    ("field", Value::Str(s)) => entry.field = s.clone(),
                    _ => {
                        return Err(format!(
                            "[lock_order.{name}]: unsupported entry `{key}`"
                        ))
                    }
                }
            }
            if entry.file.is_empty() {
                return Err(format!("[lock_order.{name}]: missing `file`"));
            }
            lock_order.push(entry);
        }
        lock_order.sort_by_key(|e| e.rank);
        Ok(Config {
            unsafe_allow: doc.string_array("unsafe", "allow"),
            decode_path_crates: doc.string_array("decode_path", "crates"),
            concurrency_crates: doc.string_array("concurrency", "crates"),
            atomics_allow: doc.string_array("atomics", "allow"),
            lock_order,
        })
    }
}

/// Ratchet state: allowed violation count per `(crate, rule)` pair.
/// Entries absent from the file default to zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// `crate name → rule key → allowed count`.
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Ratchet {
    /// Parses `lint-ratchet.toml` content.
    pub fn parse(text: &str) -> Result<Ratchet, String> {
        let doc = parse_toml(text)?;
        let mut counts = BTreeMap::new();
        for (section, entries) in doc.sections {
            if section.is_empty() {
                continue;
            }
            let mut per_rule = BTreeMap::new();
            for (key, value) in entries {
                match value {
                    Value::Int(n) => {
                        per_rule.insert(key, n);
                    }
                    _ => {
                        return Err(format!(
                            "ratchet entry [{section}] {key} must be an integer"
                        ))
                    }
                }
            }
            counts.insert(section, per_rule);
        }
        Ok(Ratchet { counts })
    }

    /// Allowed count for a `(crate, rule)` pair (absent ⇒ 0).
    pub fn allowed(&self, krate: &str, rule: &str) -> u64 {
        self.counts
            .get(krate)
            .and_then(|m| m.get(rule))
            .copied()
            .unwrap_or(0)
    }

    /// Serializes in canonical form (sorted, zero entries kept explicit so
    /// the burn-down state is visible in the diff).
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# Lint debt ratchet — maintained by `cargo run -p btr-lint -- --update-ratchet`.\n\
             # `--check` fails when any (crate, rule) count rises above the value here;\n\
             # lowering a value (burning down debt) requires updating this file.\n",
        );
        for (krate, rules) in &self.counts {
            let _ = write!(out, "\n[{krate}]\n");
            for (rule, n) in rules {
                let _ = writeln!(out, "{rule} = {n}");
            }
        }
        out
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(u64),
    Array(Vec<String>),
}

#[derive(Debug, Default)]
struct Doc {
    /// Section name → (key → value), in file order.
    sections: Vec<(String, Vec<(String, Value)>)>,
}

impl Doc {
    fn string_array(&self, section: &str, key: &str) -> Vec<String> {
        self.sections
            .iter()
            .filter(|(s, _)| s == section)
            .flat_map(|(_, kv)| kv.iter())
            .find_map(|(k, v)| match (k == key, v) {
                (true, Value::Array(a)) => Some(a.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }
}

/// Parses the supported TOML subset. Errors carry a line number.
fn parse_toml(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut current = String::new();
    doc.sections.push((current.clone(), Vec::new()));
    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {}: unterminated section header", ln + 1))?
                .trim();
            current = name.to_string();
            doc.sections.push((current.clone(), Vec::new()));
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        // Multi-line array: keep consuming until the closing bracket.
        if value.starts_with('[') && !balanced_array(&value) {
            for (_, cont) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
                if balanced_array(&value) {
                    break;
                }
            }
        }
        let parsed = parse_value(value.trim())
            .map_err(|e| format!("line {}: {e}", ln + 1))?;
        let section = doc
            .sections
            .iter_mut()
            .rev()
            .find(|(s, _)| *s == current)
            .ok_or_else(|| format!("line {}: no open section", ln + 1))?;
        section.1.push((key, parsed));
    }
    Ok(doc)
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced_array(v: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in v.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(v: &str) -> Result<Value, String> {
    if let Some(stripped) = v.strip_prefix('[') {
        let inner = stripped
            .strip_suffix(']')
            .ok_or("unterminated array")?;
        let mut items = Vec::new();
        for item in split_top_level(inner) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item)? {
                Value::Str(s) => items.push(s),
                _ => return Err("only string arrays are supported".into()),
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(stripped) = v.strip_prefix('"') {
        let inner = stripped.strip_suffix('"').ok_or("unterminated string")?;
        return Ok(Value::Str(inner.to_string()));
    }
    v.parse::<u64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value `{v}`"))
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_config_with_multiline_array() {
        let cfg = Config::parse(
            "# top comment\n\
             [unsafe]\n\
             allow = [\n  \"a/b.rs\", # why\n  \"c/d.rs\",\n]\n\
             [decode_path]\n\
             crates = [\"x\", \"y\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.unsafe_allow, vec!["a/b.rs", "c/d.rs"]);
        assert_eq!(cfg.decode_path_crates, vec!["x", "y"]);
    }

    #[test]
    fn ratchet_roundtrips_canonically() {
        let mut r = Ratchet::default();
        r.counts
            .entry("btrblocks".into())
            .or_default()
            .insert("indexing".into(), 3);
        r.counts
            .entry("btr-lz".into())
            .or_default()
            .insert("cast".into(), 0);
        let text = r.to_toml();
        let back = Ratchet::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.allowed("btrblocks", "indexing"), 3);
        assert_eq!(back.allowed("btrblocks", "cast"), 0, "absent defaults to 0");
        assert_eq!(back.allowed("nope", "indexing"), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Ratchet::parse("[x]\nfoo = \"bar\"\n").is_err());
        assert!(Config::parse("[unsafe\nallow = []\n").is_err());
        assert!(Config::parse("[unsafe]\nallow [\"x\"]\n").is_err());
    }

    #[test]
    fn parses_lock_order_table() {
        let cfg = Config::parse(
            "[concurrency]\n\
             crates = [\"btr-scan\"]\n\
             [atomics]\n\
             allow = []\n\
             [lock_order.scan.cache.shard]\n\
             rank = 70\n\
             file = \"crates/btr-scan/src/cache.rs\"\n\
             field = \"BlockCache.shards\"\n\
             [lock_order.s3.objects]\n\
             rank = 130\n\
             file = \"crates/btr-s3sim/src/lib.rs\"\n\
             field = \"ObjectStore.objects\"\n",
        )
        .unwrap();
        assert_eq!(cfg.concurrency_crates, vec!["btr-scan"]);
        assert!(cfg.atomics_allow.is_empty());
        // Sorted by rank, dotted names preserved.
        assert_eq!(cfg.lock_order.len(), 2);
        assert_eq!(cfg.lock_order[0].name, "scan.cache.shard");
        assert_eq!(cfg.lock_order[0].rank, 70);
        assert_eq!(cfg.lock_order[1].name, "s3.objects");
        assert_eq!(cfg.lock_order[1].file, "crates/btr-s3sim/src/lib.rs");
    }

    #[test]
    fn lock_order_entry_without_file_is_rejected() {
        assert!(Config::parse("[lock_order.x]\nrank = 1\n").is_err());
        assert!(Config::parse("[lock_order.x]\nrank = 1\nfile = \"f.rs\"\nbogus = 2\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[unsafe]\nallow = [\"weird#name.rs\"]\n").unwrap();
        assert_eq!(cfg.unsafe_allow, vec!["weird#name.rs"]);
    }
}
