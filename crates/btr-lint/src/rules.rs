//! The lint rules, run over one file's token stream.
//!
//! | Rule | Key                        | Scope                               |
//! |------|----------------------------|-------------------------------------|
//! | U1   | `unsafe_no_safety`         | every target, whole workspace       |
//! | U2   | `unsafe_outside_allowlist` | every target, whole workspace       |
//! | P1   | `indexing`                 | lib targets of decode-path crates   |
//! | P2   | `cast`                     | lib targets of decode-path crates   |
//! | P3   | `banned_macro`             | lib targets of every crate          |
//! | C1   | `rawlock`                  | lib targets of concurrency crates   |
//! | C2   | `lock_rank`                | lib targets of concurrency crates   |
//! | C3   | `atomic_ordering`          | lib targets of every crate          |
//! | C4   | `bare_wait`                | lib targets of concurrency crates   |
//! |      | `bad_annotation`           | wherever an escape hatch is used    |
//!
//! Escape hatches: `// lint: allow(indexing) <reason>`,
//! `// lint: allow(cast) <reason>`, and `// lint: allow(rawlock) <reason>`.
//! A whole-line annotation suppresses the next code line; a trailing
//! annotation suppresses its own line. The reason is mandatory — a bare
//! annotation is itself reported (`bad_annotation`) and suppresses nothing,
//! so the hatch cannot be used silently.
//!
//! The concurrency rules enforce the contract in DESIGN.md §15: locks in
//! concurrency crates are `btr_sync` wrappers carrying a declared rank from
//! the `[lock_order]` hierarchy in `btr-lint.toml` (C1; the cross-check of
//! construction sites against the table is C2, finished by the workspace
//! driver), every `Ordering::<mode>` token states *why* the chosen ordering
//! suffices via an `// ordering: <reason>` comment on the same line or the
//! comment block directly above (C3), and blocking primitives that invite
//! lost-wakeup bugs — bare `Condvar::wait`, `thread::sleep` — are banned in
//! favor of `wait_while` and the simulated clock (C4).
//!
//! Test code (a `#[cfg(test)]` module, a `#[test]` fn, or any item under a
//! test-gated brace region) is exempt from P1/P2/P3 but not from U1/U2:
//! an unsound `unsafe` block is no more acceptable in a test.

use crate::lexer::{lex, TokKind, Token};

/// Stable machine-readable rule identifiers (ratchet and report keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// U1: `unsafe` without an immediately-preceding `// SAFETY:` comment.
    UnsafeNoSafety,
    /// U2: `unsafe` in a file missing from the `btr-lint.toml` allowlist.
    UnsafeOutsideAllowlist,
    /// P1: direct slice/array indexing `expr[idx]` on a decode path.
    Indexing,
    /// P2: `as` cast to a ≤32-bit integer type on a decode path.
    Cast,
    /// P3: `todo!`/`unimplemented!`/`dbg!`/`println!` in a library target.
    BannedMacro,
    /// C1: raw `std::sync` `Mutex`/`RwLock`/`Condvar` in a concurrency
    /// crate (use the `btr_sync` ordered wrappers).
    RawLock,
    /// C2: a lock construction or rank declaration inconsistent with the
    /// `[lock_order]` hierarchy table.
    LockRank,
    /// C3: an atomic `Ordering::<mode>` token without an
    /// `// ordering: <reason>` annotation.
    AtomicOrdering,
    /// C4: bare `Condvar::wait` or `thread::sleep` in a concurrency crate's
    /// lib target (use `wait_while` / the simulated clock).
    BareWait,
    /// An allow-annotation with no reason or an unknown kind.
    BadAnnotation,
}

impl Rule {
    /// Ratchet/report key.
    pub fn key(self) -> &'static str {
        match self {
            Rule::UnsafeNoSafety => "unsafe_no_safety",
            Rule::UnsafeOutsideAllowlist => "unsafe_outside_allowlist",
            Rule::Indexing => "indexing",
            Rule::Cast => "cast",
            Rule::BannedMacro => "banned_macro",
            Rule::RawLock => "rawlock",
            Rule::LockRank => "lock_rank",
            Rule::AtomicOrdering => "atomic_ordering",
            Rule::BareWait => "bare_wait",
            Rule::BadAnnotation => "bad_annotation",
        }
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 10] = [
        Rule::UnsafeNoSafety,
        Rule::UnsafeOutsideAllowlist,
        Rule::Indexing,
        Rule::Cast,
        Rule::BannedMacro,
        Rule::RawLock,
        Rule::LockRank,
        Rule::AtomicOrdering,
        Rule::BareWait,
        Rule::BadAnnotation,
    ];
}

/// One rule violation at a source position.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub line: u32,
    /// Short human-readable context (token text, never a full line).
    pub what: String,
}

/// Inventory entry for one `unsafe` occurrence (report output).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
    /// `block`, `fn`, `impl`, `trait` or `extern`.
    pub kind: &'static str,
    pub has_safety_comment: bool,
}

/// Per-file rule toggles, derived from crate + target kind by the driver.
#[derive(Debug, Clone, Copy)]
pub struct FileRules {
    /// File appears in the `[unsafe] allow` list (U2).
    pub unsafe_allowed: bool,
    /// P1/P2 apply (lib target of a decode-path crate).
    pub decode_path: bool,
    /// P3 applies (lib target of any crate).
    pub lib_target: bool,
    /// C1/C2/C4 apply (lib target of a concurrency crate).
    pub concurrency_lib: bool,
    /// C3 applies (lib target not on the `[atomics] allow` list).
    pub atomics: bool,
}

/// A `const NAME: Rank = Rank::new(rank, "name")` declaration found in a
/// concurrency crate's lib target (raw material for the C2 cross-check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankDecl {
    /// The Rust const (or static) identifier.
    pub const_name: String,
    /// Numeric rank argument.
    pub rank: u64,
    /// Hierarchy name argument (the string literal, unquoted).
    pub name: String,
    pub line: u32,
}

/// An `Ordered{Mutex,RwLock,Condvar}::new(SOME_RANK, …)` construction site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperSite {
    /// `OrderedMutex`, `OrderedRwLock`, or `OrderedCondvar`.
    pub wrapper: String,
    /// Last identifier of the first argument — must name a `RankDecl`
    /// (ranks are always named consts, never inline `Rank::new(...)`).
    pub rank_const: String,
    pub line: u32,
}

/// Everything the analysis found in one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub violations: Vec<Violation>,
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Rank consts declared in this file (concurrency lib targets only).
    pub rank_decls: Vec<RankDecl>,
    /// Ordered-wrapper construction sites (concurrency lib targets only).
    pub wrapper_sites: Vec<WrapperSite>,
    /// Count of correctly-used escape hatches (for the report).
    pub suppressed: usize,
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [0u8; 4]`, `if let [a, b] = …`, `x as [u8; 4]`, …).
/// `self` is deliberately *not* here: `self[i]` is real indexing.
const NON_INDEXING_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod",
    "move", "mut", "pub", "ref", "return", "static", "struct", "trait",
    "type", "unsafe", "use", "where", "while", "yield", "Self",
];

/// Integer types an `as` cast can silently truncate into on a 64-bit
/// target. Widening casts to `u64`/`i64`/`usize` are not flagged; a cast to
/// anything here either truncates or should be written as `From`/`TryFrom`.
const NARROW_INT_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Macros banned from library targets (P3).
const BANNED_MACROS: &[&str] = &["todo", "unimplemented", "dbg", "println"];

/// Raw `std::sync` primitives banned from concurrency crates (C1). The
/// `btr_sync` wrappers (`OrderedMutex`, …) lex as distinct identifiers.
const RAW_SYNC_PRIMITIVES: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// The atomic memory-ordering variants (C3). `cmp::Ordering`'s variants
/// (`Less`/`Equal`/`Greater`) are not in this set, so comparison code never
/// trips the rule.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The `btr_sync` wrapper types whose `::new` takes a rank (C2 evidence).
const ORDERED_WRAPPERS: &[&str] = &["OrderedMutex", "OrderedRwLock", "OrderedCondvar"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AllowKind {
    Indexing,
    Cast,
    RawLock,
}

/// Runs every applicable rule over `src` and returns the findings.
pub fn analyze(src: &str, rules: FileRules) -> FileAnalysis {
    let tokens = lex(src);
    let mut out = FileAnalysis::default();
    let allows = collect_allows(&tokens, &mut out);
    let lines = LineMap::build(&tokens);
    let test_lines = test_region_lines(&tokens);

    let in_test =
        |line: u32| test_lines.binary_search_by(|r| cmp_range(r, line)).is_ok();
    let mut suppressed_hits = 0usize;
    // Most recent `const`/`static` identifier, for naming rank decls.
    let mut last_decl_name: Option<String> = None;

    // Significant (non-comment) token indices for prev/next lookups.
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();

    for (si, &ti) in sig.iter().enumerate() {
        let tok = &tokens[ti];
        let prev = si.checked_sub(1).map(|p| &tokens[sig[p]]);
        let next = sig.get(si + 1).map(|&n| &tokens[n]);

        match tok.kind {
            TokKind::Ident if tok.text == "unsafe" => {
                let kind = match next.map(|t| (t.kind, t.text)) {
                    Some((TokKind::Punct('{'), _)) => "block",
                    Some((TokKind::Ident, "fn")) => "fn",
                    Some((TokKind::Ident, "impl")) => "impl",
                    Some((TokKind::Ident, "trait")) => "trait",
                    Some((TokKind::Ident, "extern")) => "extern",
                    // `pub unsafe fn` handled above; anything else (e.g. a
                    // macro fragment) still counts as an unsafe site.
                    _ => "other",
                };
                let has_safety = lines.has_safety_near(tok.line);
                out.unsafe_sites.push(UnsafeSite {
                    line: tok.line,
                    kind,
                    has_safety_comment: has_safety,
                });
                if !has_safety {
                    out.violations.push(Violation {
                        rule: Rule::UnsafeNoSafety,
                        line: tok.line,
                        what: format!("unsafe {kind} without a `// SAFETY:` comment"),
                    });
                }
                if !rules.unsafe_allowed {
                    out.violations.push(Violation {
                        rule: Rule::UnsafeOutsideAllowlist,
                        line: tok.line,
                        what: format!("unsafe {kind} outside the allowlisted module set"),
                    });
                }
            }
            TokKind::Punct('[')
                if rules.decode_path && !in_test(tok.line) && is_indexing(prev) =>
            {
                if allows.covers(tok.line, AllowKind::Indexing) {
                    suppressed_hits += 1;
                } else {
                    let on = prev.map(|p| p.text).unwrap_or("");
                    out.violations.push(Violation {
                        rule: Rule::Indexing,
                        line: tok.line,
                        what: format!("direct indexing `{on}[…]` (use .get()/typed error)"),
                    });
                }
            }
            TokKind::Ident
                if tok.text == "as" && rules.decode_path && !in_test(tok.line) =>
            {
                if let Some(n) = next {
                    if n.kind == TokKind::Ident && NARROW_INT_TYPES.contains(&n.text) {
                        if allows.covers(tok.line, AllowKind::Cast) {
                            suppressed_hits += 1;
                        } else {
                            out.violations.push(Violation {
                                rule: Rule::Cast,
                                line: tok.line,
                                what: format!(
                                    "possibly-truncating cast `as {}` (use From/TryFrom)",
                                    n.text
                                ),
                            });
                        }
                    }
                }
            }
            TokKind::Ident
                if rules.lib_target
                    && !in_test(tok.line)
                    && BANNED_MACROS.contains(&tok.text)
                    && matches!(next.map(|t| t.kind), Some(TokKind::Punct('!'))) =>
            {
                out.violations.push(Violation {
                    rule: Rule::BannedMacro,
                    line: tok.line,
                    what: format!("`{}!` in a library target", tok.text),
                });
            }
            // C1: raw lock primitives. Any mention of the bare identifier
            // counts — a type position, a `use`, or a `Mutex::new` call all
            // mean the file is not speaking btr-sync's vocabulary.
            TokKind::Ident
                if rules.concurrency_lib
                    && !in_test(tok.line)
                    && RAW_SYNC_PRIMITIVES.contains(&tok.text) =>
            {
                if allows.covers(tok.line, AllowKind::RawLock) {
                    suppressed_hits += 1;
                } else {
                    out.violations.push(Violation {
                        rule: Rule::RawLock,
                        line: tok.line,
                        what: format!(
                            "raw `{}` in a concurrency crate (use btr_sync::Ordered{})",
                            tok.text, tok.text
                        ),
                    });
                }
            }
            // C3: `Ordering::<mode>` without an `// ordering:` annotation.
            TokKind::Ident
                if rules.atomics
                    && !in_test(tok.line)
                    && ATOMIC_ORDERINGS.contains(&tok.text)
                    && is_ordering_path(&tokens, &sig, si)
                    && !lines.has_ordering_near(tok.line) =>
            {
                out.violations.push(Violation {
                    rule: Rule::AtomicOrdering,
                    line: tok.line,
                    what: format!(
                        "`Ordering::{}` without an `// ordering: <reason>` annotation",
                        tok.text
                    ),
                });
            }
            // C4: bare blocking calls. `.wait(` loses wakeups without a
            // hand-rolled predicate loop; `thread::sleep` stalls real time
            // the simulated clock can't account for.
            TokKind::Ident
                if rules.concurrency_lib
                    && !in_test(tok.line)
                    && (tok.text == "wait" || tok.text == "sleep")
                    && matches!(next.map(|t| t.kind), Some(TokKind::Punct('(')))
                    && matches!(
                        prev.map(|t| t.kind),
                        Some(TokKind::Punct('.') | TokKind::Punct(':'))
                    ) =>
            {
                let fix = if tok.text == "wait" {
                    "use OrderedCondvar::wait_while"
                } else {
                    "use SimClock::advance_seconds"
                };
                out.violations.push(Violation {
                    rule: Rule::BareWait,
                    line: tok.line,
                    what: format!("bare `{}()` in a concurrency crate ({fix})", tok.text),
                });
            }
            _ => {}
        }

        // C2 raw material (cross-checked against the `[lock_order]` table by
        // the workspace driver): rank-const declarations and ordered-wrapper
        // construction sites.
        if rules.concurrency_lib && !in_test(tok.line) {
            if tok.kind == TokKind::Ident && (tok.text == "const" || tok.text == "static") {
                last_decl_name = next
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.to_string());
            }
            if tok.kind == TokKind::Ident && tok.text == "Rank" {
                if let Some(decl) = rank_decl_at(&tokens, &sig, si, last_decl_name.as_deref()) {
                    out.rank_decls.push(decl);
                }
            }
            if tok.kind == TokKind::Ident && ORDERED_WRAPPERS.contains(&tok.text) {
                if let Some(site) = wrapper_site_at(&tokens, &sig, si) {
                    out.wrapper_sites.push(site);
                }
            }
        }
    }
    out.suppressed = suppressed_hits;
    out
}

/// Whether the significant token at `sig[si]` (an ordering variant name) is
/// preceded by `Ordering` `::`, i.e. forms an `Ordering::<mode>` path.
fn is_ordering_path(tokens: &[Token<'_>], sig: &[usize], si: usize) -> bool {
    if si < 3 {
        return false;
    }
    let at = |k: usize| &tokens[sig[k]];
    matches!(at(si - 1).kind, TokKind::Punct(':'))
        && matches!(at(si - 2).kind, TokKind::Punct(':'))
        && at(si - 3).kind == TokKind::Ident
        && at(si - 3).text == "Ordering"
}

/// Parses `Rank::new(<number>, "<name>")` starting at the `Rank` token;
/// `decl_name` is the most recent `const`/`static` identifier.
fn rank_decl_at(
    tokens: &[Token<'_>],
    sig: &[usize],
    si: usize,
    decl_name: Option<&str>,
) -> Option<RankDecl> {
    let at = |k: usize| sig.get(k).map(|&i| &tokens[i]);
    let expect = |k: usize, kind: TokKind, text: Option<&str>| {
        at(k).is_some_and(|t| t.kind == kind && text.is_none_or(|x| t.text == x))
    };
    if !(expect(si + 1, TokKind::Punct(':'), None)
        && expect(si + 2, TokKind::Punct(':'), None)
        && expect(si + 3, TokKind::Ident, Some("new"))
        && expect(si + 4, TokKind::Punct('('), None)
        && expect(si + 6, TokKind::Punct(','), None))
    {
        return None;
    }
    let rank_tok = at(si + 5)?;
    let name_tok = at(si + 7)?;
    if rank_tok.kind != TokKind::Number || name_tok.kind != TokKind::Str {
        return None;
    }
    let digits: String = rank_tok.text.chars().take_while(|c| c.is_ascii_digit()).collect();
    Some(RankDecl {
        const_name: decl_name.unwrap_or("<unnamed>").to_string(),
        rank: digits.parse().ok()?,
        name: name_tok.text.trim_matches('"').to_string(),
        line: tokens[sig[si]].line,
    })
}

/// Parses `Ordered*::new(<first-arg>, …)` starting at the wrapper token and
/// returns the last identifier of the first argument (the rank const).
fn wrapper_site_at(tokens: &[Token<'_>], sig: &[usize], si: usize) -> Option<WrapperSite> {
    let at = |k: usize| sig.get(k).map(|&i| &tokens[i]);
    let is = |k: usize, kind: TokKind, text: Option<&str>| {
        at(k).is_some_and(|t| t.kind == kind && text.is_none_or(|x| t.text == x))
    };
    if !(is(si + 1, TokKind::Punct(':'), None)
        && is(si + 2, TokKind::Punct(':'), None)
        && is(si + 3, TokKind::Ident, Some("new"))
        && is(si + 4, TokKind::Punct('('), None))
    {
        return None;
    }
    let mut depth = 1i32;
    let mut rank_const = None;
    let mut j = si + 5;
    while let Some(t) = at(j) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Punct(',') if depth == 1 => break,
            TokKind::Ident => rank_const = Some(t.text.to_string()),
            _ => {}
        }
        j += 1;
    }
    Some(WrapperSite {
        wrapper: tokens[sig[si]].text.to_string(),
        rank_const: rank_const.unwrap_or_default(),
        line: tokens[sig[si]].line,
    })
}

/// Whether a `[` forms an index expression, judged by the preceding
/// significant token: an identifier (that is not a keyword), a closing
/// `)`/`]`, a `?`, or a literal can all be indexed into; everything else
/// (`&`, `=`, `:`, `,`, `<`, `#`, `!`, a lifetime, …) introduces a slice
/// type, array literal, attribute, or pattern.
fn is_indexing(prev: Option<&Token<'_>>) -> bool {
    match prev {
        Some(t) => match t.kind {
            TokKind::Ident => !NON_INDEXING_KEYWORDS.contains(&t.text),
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('?') => true,
            TokKind::Str | TokKind::Number => true,
            _ => false,
        },
        None => false,
    }
}

/// Escape-hatch annotations, resolved to the lines they cover.
struct Allows {
    /// Sorted `(line, kind)` pairs.
    entries: Vec<(u32, AllowKind)>,
}

impl Allows {
    fn covers(&self, line: u32, kind: AllowKind) -> bool {
        self.entries.iter().any(|&(l, k)| l == line && k == kind)
    }
}

/// Parses allow-annotation comments. A comment that is the only
/// token on its line covers the next line holding a non-comment token; a
/// trailing comment covers its own line. Unknown kinds and missing reasons
/// are reported and ignored.
fn collect_allows(tokens: &[Token<'_>], out: &mut FileAnalysis) -> Allows {
    // Lines that hold at least one non-comment token, sorted (tokens are in
    // source order, so pushes arrive sorted; dedup adjacent).
    let mut code_lines: Vec<u32> = Vec::new();
    let mut comment_only: Vec<bool> = Vec::new(); // parallel to tokens: token starts its line?
    let mut last_line = 0u32;
    for t in tokens {
        comment_only.push(t.line != last_line);
        if !t.is_comment() && code_lines.last() != Some(&t.line) {
            code_lines.push(t.line);
        }
        let end = t.line + t.text.matches('\n').count() as u32;
        last_line = end.max(last_line);
    }

    let mut entries = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let Some(rest) = t.text.find("lint:").map(|p| &t.text[p + 5..]) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            out.violations.push(Violation {
                rule: Rule::BadAnnotation,
                line: t.line,
                what: "malformed `lint: allow(...)` annotation".into(),
            });
            continue;
        };
        let kind = match args[..close].trim() {
            "indexing" => AllowKind::Indexing,
            "cast" => AllowKind::Cast,
            "rawlock" => AllowKind::RawLock,
            other => {
                out.violations.push(Violation {
                    rule: Rule::BadAnnotation,
                    line: t.line,
                    what: format!("unknown lint allow kind `{other}`"),
                });
                continue;
            }
        };
        let reason = args[close + 1..].trim_matches(|c: char| {
            c.is_whitespace() || c == '*' || c == '/'
        });
        if reason.is_empty() {
            out.violations.push(Violation {
                rule: Rule::BadAnnotation,
                line: t.line,
                what: "lint allow annotation requires a reason".into(),
            });
            continue;
        }
        // Whole-line comment → covers the next code line; trailing → its own.
        let starts_line = comment_only.get(i).copied().unwrap_or(true);
        let own_line_has_code = code_lines.binary_search(&t.line).is_ok();
        let target = if starts_line && !own_line_has_code {
            match code_lines.binary_search(&t.line) {
                Ok(_) => Some(t.line),
                Err(pos) => code_lines.get(pos).copied(),
            }
        } else {
            Some(t.line)
        };
        if let Some(line) = target {
            entries.push((line, kind));
        }
    }
    Allows { entries }
}

/// Per-line comment facts used by the U1 SAFETY and C3 ordering searches.
struct LineMap {
    /// Sorted list of lines fully or partially covered by a comment.
    comment_lines: Vec<u32>,
    /// Subset of `comment_lines` whose comment text contains `SAFETY:`.
    safety_lines: Vec<u32>,
    /// Subset of `comment_lines` whose comment text contains `ordering:`.
    ordering_lines: Vec<u32>,
    /// Lines holding at least one non-comment token.
    code_lines: Vec<u32>,
}

impl LineMap {
    fn build(tokens: &[Token<'_>]) -> LineMap {
        let mut comment_lines = Vec::new();
        let mut safety_lines = Vec::new();
        let mut ordering_lines = Vec::new();
        let mut code_lines = Vec::new();
        for t in tokens {
            if t.is_comment() {
                let span = t.text.matches('\n').count() as u32;
                for l in t.line..=t.line + span {
                    push_sorted(&mut comment_lines, l);
                    if t.text.contains("SAFETY:") {
                        push_sorted(&mut safety_lines, l);
                    }
                    if t.text.contains("ordering:") {
                        push_sorted(&mut ordering_lines, l);
                    }
                }
            } else {
                push_sorted(&mut code_lines, t.line);
            }
        }
        LineMap {
            comment_lines,
            safety_lines,
            ordering_lines,
            code_lines,
        }
    }

    /// U1 acceptance: a `SAFETY:` comment on the `unsafe` line itself, or on
    /// the contiguous run of comment-only lines directly above it.
    fn has_safety_near(&self, line: u32) -> bool {
        self.has_marker_near(&self.safety_lines, line)
    }

    /// C3 acceptance: an `// ordering:` comment on the token's line, or on
    /// the contiguous run of comment-only lines directly above it (which,
    /// inside a multi-line expression, is the annotation's natural home).
    fn has_ordering_near(&self, line: u32) -> bool {
        self.has_marker_near(&self.ordering_lines, line)
    }

    fn has_marker_near(&self, marker_lines: &[u32], line: u32) -> bool {
        if marker_lines.binary_search(&line).is_ok() {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let is_comment = self.comment_lines.binary_search(&l).is_ok();
            let is_code = self.code_lines.binary_search(&l).is_ok();
            if is_comment && !is_code {
                if marker_lines.binary_search(&l).is_ok() {
                    return true;
                }
                continue; // keep walking up the comment block
            }
            // First non-comment line above (code or blank) ends the search,
            // except a trailing comment on a code line directly above.
            return l == line - 1 && is_comment && marker_lines.binary_search(&l).is_ok();
        }
        false
    }
}

fn push_sorted(v: &mut Vec<u32>, x: u32) {
    if v.last() != Some(&x) {
        v.push(x);
    }
}

/// Computes the line ranges belonging to test-gated code: any brace region
/// whose governing item carries `#[test]`, `#[cfg(test)]`, or a `cfg`
/// attribute mentioning `test` (e.g. `#[cfg(any(test, fuzzing))]`).
/// Returns disjoint sorted `(start, end)` inclusive line ranges.
fn test_region_lines(tokens: &[Token<'_>]) -> Vec<(u32, u32)> {
    let sig: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut stack: Vec<bool> = Vec::new(); // test flag per open brace
    let mut region_start: Vec<u32> = Vec::new();
    let mut pending_test = false;
    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];
        match t.kind {
            TokKind::Punct('#') => {
                // Attribute: `#` (`!`)? `[` … `]` with nested brackets.
                let mut j = i + 1;
                if matches!(sig.get(j).map(|t| t.kind), Some(TokKind::Punct('!'))) {
                    j += 1;
                }
                if matches!(sig.get(j).map(|t| t.kind), Some(TokKind::Punct('['))) {
                    let mut depth = 0i32;
                    let mut attr_tokens: Vec<&Token<'_>> = Vec::new();
                    while j < sig.len() {
                        match sig[j].kind {
                            TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        attr_tokens.push(sig[j]);
                        j += 1;
                    }
                    if attr_is_test_marker(&attr_tokens) {
                        pending_test = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            TokKind::Punct('{') => {
                let parent_test = stack.iter().any(|&b| b);
                let test = pending_test || parent_test;
                if test && !parent_test {
                    region_start.push(t.line);
                }
                stack.push(pending_test || parent_test);
                pending_test = false;
            }
            TokKind::Punct('}') => {
                let was_test = stack.pop().unwrap_or(false);
                let still_test = stack.iter().any(|&b| b);
                if was_test && !still_test {
                    if let Some(start) = region_start.pop() {
                        ranges.push((start, t.line));
                    }
                }
            }
            TokKind::Punct(';') => {
                // `#[cfg(test)] use foo;` — attribute consumed by the item.
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
    ranges.sort_unstable();
    ranges
}

/// Whether an attribute's inner tokens mark test-only code: the attribute
/// path is exactly `test`, or exactly `cfg` with `test` appearing anywhere
/// in its arguments. (`cfg_attr` does *not* gate the item out of non-test
/// builds, so it is not a marker.)
fn attr_is_test_marker(inner: &[&Token<'_>]) -> bool {
    // `inner` starts at the opening `[`.
    let first_ident = inner.iter().find(|t| t.kind == TokKind::Ident);
    match first_ident.map(|t| t.text) {
        Some("test") => true,
        Some("cfg") => inner
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test"),
        _ => false,
    }
}

fn cmp_range(r: &(u32, u32), line: u32) -> std::cmp::Ordering {
    if line < r.0 {
        std::cmp::Ordering::Greater
    } else if line > r.1 {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECODE: FileRules = FileRules {
        unsafe_allowed: false,
        decode_path: true,
        lib_target: true,
        concurrency_lib: false,
        atomics: false,
    };

    /// A concurrency-crate lib target with every rule family on.
    const CONCURRENCY: FileRules = FileRules {
        unsafe_allowed: false,
        decode_path: false,
        lib_target: true,
        concurrency_lib: true,
        atomics: true,
    };

    fn rule_count(a: &FileAnalysis, rule: Rule) -> usize {
        a.violations.iter().filter(|v| v.rule == rule).count()
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bare = analyze("fn f() { unsafe { g() } }", DECODE);
        assert_eq!(rule_count(&bare, Rule::UnsafeNoSafety), 1);
        assert_eq!(rule_count(&bare, Rule::UnsafeOutsideAllowlist), 1);
        assert_eq!(bare.unsafe_sites.len(), 1);
        assert_eq!(bare.unsafe_sites[0].kind, "block");

        let documented = analyze(
            "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}",
            DECODE,
        );
        assert_eq!(rule_count(&documented, Rule::UnsafeNoSafety), 0);
        // U2 still applies: the file is not on the allowlist.
        assert_eq!(rule_count(&documented, Rule::UnsafeOutsideAllowlist), 1);

        let allowed = analyze(
            "// SAFETY: fine\nunsafe fn f() {}",
            FileRules {
                unsafe_allowed: true,
                ..DECODE
            },
        );
        assert!(allowed.violations.is_empty());
        assert_eq!(allowed.unsafe_sites[0].kind, "fn");
    }

    #[test]
    fn safety_comment_block_above_is_accepted() {
        // A multi-line comment block directly above, with SAFETY on its
        // first line, still counts.
        let src = "fn f() {\n    // SAFETY: the buffer outlives the call\n    // and the length was validated.\n    unsafe { g() }\n}";
        let a = analyze(src, DECODE);
        assert_eq!(rule_count(&a, Rule::UnsafeNoSafety), 0);
        // A blank line between the comment and the `unsafe` breaks the run.
        let gap = "fn f() {\n    // SAFETY: stale\n\n    unsafe { g() }\n}";
        let b = analyze(gap, DECODE);
        assert_eq!(rule_count(&b, Rule::UnsafeNoSafety), 1);
    }

    #[test]
    fn unsafe_in_string_literals_is_invisible() {
        let src =
            r##"fn f() { let a = "unsafe { }"; let b = r#"unsafe fn"#; let c = b"unsafe"; }"##;
        let a = analyze(src, DECODE);
        assert!(a.unsafe_sites.is_empty());
        assert!(a.violations.is_empty());
    }

    #[test]
    fn test_gated_code_skips_p_rules_but_not_u_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(v: &Vec<u8>) -> u8 {\n        println!(\"{}\", v[0]);\n        v[1] as u8\n    }\n    fn g() { unsafe { h() } }\n}\n";
        let a = analyze(src, DECODE);
        assert_eq!(rule_count(&a, Rule::Indexing), 0);
        assert_eq!(rule_count(&a, Rule::Cast), 0);
        assert_eq!(rule_count(&a, Rule::BannedMacro), 0);
        // `unsafe` in tests still needs SAFETY and allowlisting.
        assert_eq!(rule_count(&a, Rule::UnsafeNoSafety), 1);
        assert_eq!(rule_count(&a, Rule::UnsafeOutsideAllowlist), 1);
    }

    #[test]
    fn braces_in_literals_do_not_distort_test_regions() {
        let src = "#[cfg(test)]\nmod t {\n    const S: &str = \"}\";\n    const C: char = '{';\n    fn f(v: &Vec<u8>) -> u8 { v[0] as u8 }\n}\nfn g(v: &Vec<u8>) -> u8 { v[1] as u8 }\n";
        let a = analyze(src, DECODE);
        // Only g(), outside the test module, is flagged.
        assert_eq!(rule_count(&a, Rule::Indexing), 1);
        assert_eq!(rule_count(&a, Rule::Cast), 1);
        assert!(a.violations.iter().all(|v| v.line == 7), "{:?}", a.violations);
    }

    #[test]
    fn indexing_only_flags_index_expressions() {
        for (src, expect) in [
            ("v[i]", 1),
            ("f()[0]", 1),
            ("x?[0]", 1),
            ("m[k][j]", 2),
            ("let [a, b] = p;", 0),  // pattern
            ("fn t(x: &[u8]) {}", 0), // slice type
            ("let a = [0u8; 4];", 0), // array literal
            ("x as [u8; 4]", 0),      // cast to array type
            ("#[derive(Debug)]", 0),  // attribute
        ] {
            let a = analyze(src, DECODE);
            assert_eq!(rule_count(&a, Rule::Indexing), expect, "{src}");
        }
        // Outside decode-path lib targets the rule is off entirely.
        let off = analyze(
            "v[i]",
            FileRules {
                decode_path: false,
                ..DECODE
            },
        );
        assert!(off.violations.is_empty());
    }

    #[test]
    fn cast_flags_narrow_integer_targets_only() {
        for (src, expect) in [
            ("x as u8", 1),
            ("x as u16", 1),
            ("x as i32", 1),
            ("x as usize", 0),
            ("x as u64", 0),
            ("x as i64", 0),
            ("x as f64", 0),
        ] {
            let a = analyze(src, DECODE);
            assert_eq!(rule_count(&a, Rule::Cast), expect, "{src}");
        }
    }

    #[test]
    fn banned_macros_in_lib_targets() {
        let a = analyze(
            "fn f() { todo!() }\nfn g() { dbg!(1); println!(\"x\"); }",
            DECODE,
        );
        assert_eq!(rule_count(&a, Rule::BannedMacro), 3);
        // Non-lib targets (bins, tests/, benches/) may print.
        let bin = analyze(
            "fn main() { println!(\"x\"); }",
            FileRules {
                decode_path: false,
                lib_target: false,
                ..DECODE
            },
        );
        assert_eq!(rule_count(&bin, Rule::BannedMacro), 0);
        // `println` as a plain identifier (no `!`) is fine.
        let ident = analyze("fn println() {}", DECODE);
        assert_eq!(rule_count(&ident, Rule::BannedMacro), 0);
    }

    #[test]
    fn whole_line_annotation_covers_next_code_line_only() {
        let src = "fn f(v: &Vec<u8>) -> u8 {\n    // lint: allow(indexing) checked by caller\n    let a = v[0] + v[1];\n    let b = v[2];\n    a + b\n}\n";
        let a = analyze(src, DECODE);
        assert_eq!(a.suppressed, 2, "both hits on the covered line");
        assert_eq!(rule_count(&a, Rule::Indexing), 1, "the line after is not covered");
        assert_eq!(rule_count(&a, Rule::BadAnnotation), 0);
    }

    #[test]
    fn trailing_annotation_covers_its_own_line() {
        let src = "fn f(v: &Vec<u8>) -> u8 { v[0] } // lint: allow(indexing) fixture\n";
        let a = analyze(src, DECODE);
        assert!(a.violations.is_empty());
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn annotation_without_reason_is_reported_and_suppresses_nothing() {
        let src = "fn f(v: &Vec<u8>) -> u8 {\n    // lint: allow(indexing)\n    v[0]\n}\n";
        let a = analyze(src, DECODE);
        assert_eq!(rule_count(&a, Rule::BadAnnotation), 1);
        assert_eq!(rule_count(&a, Rule::Indexing), 1);
        assert_eq!(a.suppressed, 0);
    }

    #[test]
    fn unknown_or_mismatched_annotation_kinds() {
        let unknown = analyze("// lint: allow(unwrap) because\nlet x = v[0];", DECODE);
        assert_eq!(rule_count(&unknown, Rule::BadAnnotation), 1);
        assert_eq!(rule_count(&unknown, Rule::Indexing), 1);
        // allow(cast) does not excuse indexing.
        let mismatch = analyze("// lint: allow(cast) wrong kind\nlet x = v[0];", DECODE);
        assert_eq!(rule_count(&mismatch, Rule::Indexing), 1);
        assert_eq!(mismatch.suppressed, 0);
    }

    #[test]
    fn rawlock_flags_std_sync_primitives_in_concurrency_crates() {
        let src = "use std::sync::{Arc, Mutex};\nstruct S { m: Mutex<u32>, c: Condvar, r: RwLock<u8> }\n";
        let a = analyze(src, CONCURRENCY);
        assert_eq!(rule_count(&a, Rule::RawLock), 4, "{:?}", a.violations);
        // The ordered wrappers are distinct identifiers and pass.
        let ok = analyze("struct S { m: OrderedMutex<u32>, c: OrderedCondvar }", CONCURRENCY);
        assert_eq!(rule_count(&ok, Rule::RawLock), 0);
        // Outside concurrency crates the rule is off.
        let off = analyze("struct S { m: Mutex<u32> }", DECODE);
        assert_eq!(rule_count(&off, Rule::RawLock), 0);
        // Test code is exempt (std locks are fine in unit tests).
        let test = analyze("#[cfg(test)]\nmod t {\n    fn f() { let m = Mutex::new(0); }\n}\n", CONCURRENCY);
        assert_eq!(rule_count(&test, Rule::RawLock), 0);
        // The escape hatch works and demands a reason.
        let allowed = analyze(
            "static INIT: Mutex<bool> = Mutex::new(false); // lint: allow(rawlock) process-global init flag, no ordering\n",
            CONCURRENCY,
        );
        assert_eq!(rule_count(&allowed, Rule::RawLock), 0);
        assert_eq!(allowed.suppressed, 2);
    }

    #[test]
    fn atomic_ordering_needs_an_annotation() {
        let bare = analyze("fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }", CONCURRENCY);
        assert_eq!(rule_count(&bare, Rule::AtomicOrdering), 1);
        let trailing = analyze(
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // ordering: statistics counter\n}",
            CONCURRENCY,
        );
        assert_eq!(rule_count(&trailing, Rule::AtomicOrdering), 0);
        // A comment block directly above works, even when the marker is not
        // on the last comment line (multi-line justifications).
        let above = analyze(
            "fn f(c: &AtomicU64) {\n    // ordering: statistics counter, read only\n    // after the workers joined\n    c.load(Ordering::Acquire);\n}",
            CONCURRENCY,
        );
        assert_eq!(rule_count(&above, Rule::AtomicOrdering), 0);
        // `cmp::Ordering` variants never match.
        let cmp = analyze("fn f() -> Ordering { Ordering::Equal }", CONCURRENCY);
        assert_eq!(rule_count(&cmp, Rule::AtomicOrdering), 0);
        // A bare variant ident without the `Ordering::` path is invisible.
        let bare_ident = analyze("fn f(c: &AtomicU64) { c.load(Relaxed); }", CONCURRENCY);
        assert_eq!(rule_count(&bare_ident, Rule::AtomicOrdering), 0);
        // Off for files on the atomics allowlist.
        let off = analyze(
            "fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }",
            FileRules {
                atomics: false,
                ..CONCURRENCY
            },
        );
        assert_eq!(rule_count(&off, Rule::AtomicOrdering), 0);
    }

    #[test]
    fn bare_wait_and_sleep_are_banned_in_concurrency_libs() {
        let a = analyze(
            "fn f() { let g = cv.wait(g).unwrap(); std::thread::sleep(d); }",
            CONCURRENCY,
        );
        assert_eq!(rule_count(&a, Rule::BareWait), 2, "{:?}", a.violations);
        // `wait_while` is the sanctioned form; `wait` as a field or a plain
        // ident is not a call.
        let ok = analyze("fn f() { let g = cv.wait_while(g, |s| s.busy); let wait = 3; }", CONCURRENCY);
        assert_eq!(rule_count(&ok, Rule::BareWait), 0);
        // Tests may sleep (timing-based fixtures).
        let test = analyze(
            "#[cfg(test)]\nmod t {\n    fn f() { std::thread::sleep(d); }\n}\n",
            CONCURRENCY,
        );
        assert_eq!(rule_count(&test, Rule::BareWait), 0);
    }

    #[test]
    fn rank_decls_and_wrapper_sites_are_collected() {
        let src = "\
const CACHE_RANK: Rank = Rank::new(70, \"scan.cache.shard\");\n\
pub(crate) static OTHER_RANK: Rank = Rank::new(90, \"scan.health\");\n\
fn f() {\n\
    let m = OrderedMutex::new(CACHE_RANK, Shard::default());\n\
    let c = OrderedCondvar::new(OTHER_RANK);\n\
    let r = OrderedRwLock::new(CACHE_RANK, vec![1]);\n\
}\n";
        let a = analyze(src, CONCURRENCY);
        assert_eq!(a.rank_decls.len(), 2, "{:?}", a.rank_decls);
        assert_eq!(a.rank_decls[0].const_name, "CACHE_RANK");
        assert_eq!(a.rank_decls[0].rank, 70);
        assert_eq!(a.rank_decls[0].name, "scan.cache.shard");
        assert_eq!(a.rank_decls[1].const_name, "OTHER_RANK");
        assert_eq!(a.wrapper_sites.len(), 3, "{:?}", a.wrapper_sites);
        assert_eq!(a.wrapper_sites[0].wrapper, "OrderedMutex");
        assert_eq!(a.wrapper_sites[0].rank_const, "CACHE_RANK");
        assert_eq!(a.wrapper_sites[1].wrapper, "OrderedCondvar");
        assert_eq!(a.wrapper_sites[1].rank_const, "OTHER_RANK");
        // Non-concurrency files collect nothing.
        let off = analyze(src, DECODE);
        assert!(off.rank_decls.is_empty() && off.wrapper_sites.is_empty());
    }

    #[test]
    fn inline_rank_in_wrapper_does_not_resolve_to_a_const() {
        // `Rank::new` inline (not behind a named const): the collected
        // rank_const is the trailing `new` ident, which the workspace
        // cross-check will fail to resolve — by design.
        let a = analyze(
            "fn f() { let m = OrderedMutex::new(Rank::new(5, \"x\"), 0u32); }",
            CONCURRENCY,
        );
        assert_eq!(a.wrapper_sites.len(), 1);
        assert_eq!(a.wrapper_sites[0].rank_const, "new");
    }

    #[test]
    fn annotation_inside_string_is_not_an_annotation() {
        let src = "fn f(v: &Vec<u8>) -> u8 {\n    let s = \"// lint: allow(indexing) nope\";\n    v[0]\n}\n";
        let a = analyze(src, DECODE);
        assert_eq!(rule_count(&a, Rule::Indexing), 1);
        assert_eq!(a.suppressed, 0);
    }
}
