//! The lint rules, run over one file's token stream.
//!
//! | Rule | Key                        | Scope                               |
//! |------|----------------------------|-------------------------------------|
//! | U1   | `unsafe_no_safety`         | every target, whole workspace       |
//! | U2   | `unsafe_outside_allowlist` | every target, whole workspace       |
//! | P1   | `indexing`                 | lib targets of decode-path crates   |
//! | P2   | `cast`                     | lib targets of decode-path crates   |
//! | P3   | `banned_macro`             | lib targets of every crate          |
//! |      | `bad_annotation`           | wherever an escape hatch is used    |
//!
//! Escape hatches: `// lint: allow(indexing) <reason>` and
//! `// lint: allow(cast) <reason>`. A whole-line annotation suppresses the
//! next code line; a trailing annotation suppresses its own line. The reason
//! is mandatory — a bare annotation is itself reported (`bad_annotation`)
//! and suppresses nothing, so the hatch cannot be used silently.
//!
//! Test code (a `#[cfg(test)]` module, a `#[test]` fn, or any item under a
//! test-gated brace region) is exempt from P1/P2/P3 but not from U1/U2:
//! an unsound `unsafe` block is no more acceptable in a test.

use crate::lexer::{lex, TokKind, Token};

/// Stable machine-readable rule identifiers (ratchet and report keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// U1: `unsafe` without an immediately-preceding `// SAFETY:` comment.
    UnsafeNoSafety,
    /// U2: `unsafe` in a file missing from the `btr-lint.toml` allowlist.
    UnsafeOutsideAllowlist,
    /// P1: direct slice/array indexing `expr[idx]` on a decode path.
    Indexing,
    /// P2: `as` cast to a ≤32-bit integer type on a decode path.
    Cast,
    /// P3: `todo!`/`unimplemented!`/`dbg!`/`println!` in a library target.
    BannedMacro,
    /// An allow-annotation with no reason or an unknown kind.
    BadAnnotation,
}

impl Rule {
    /// Ratchet/report key.
    pub fn key(self) -> &'static str {
        match self {
            Rule::UnsafeNoSafety => "unsafe_no_safety",
            Rule::UnsafeOutsideAllowlist => "unsafe_outside_allowlist",
            Rule::Indexing => "indexing",
            Rule::Cast => "cast",
            Rule::BannedMacro => "banned_macro",
            Rule::BadAnnotation => "bad_annotation",
        }
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 6] = [
        Rule::UnsafeNoSafety,
        Rule::UnsafeOutsideAllowlist,
        Rule::Indexing,
        Rule::Cast,
        Rule::BannedMacro,
        Rule::BadAnnotation,
    ];
}

/// One rule violation at a source position.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub line: u32,
    /// Short human-readable context (token text, never a full line).
    pub what: String,
}

/// Inventory entry for one `unsafe` occurrence (report output).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
    /// `block`, `fn`, `impl`, `trait` or `extern`.
    pub kind: &'static str,
    pub has_safety_comment: bool,
}

/// Per-file rule toggles, derived from crate + target kind by the driver.
#[derive(Debug, Clone, Copy)]
pub struct FileRules {
    /// File appears in the `[unsafe] allow` list (U2).
    pub unsafe_allowed: bool,
    /// P1/P2 apply (lib target of a decode-path crate).
    pub decode_path: bool,
    /// P3 applies (lib target of any crate).
    pub lib_target: bool,
}

/// Everything the analysis found in one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub violations: Vec<Violation>,
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Count of correctly-used escape hatches (for the report).
    pub suppressed: usize,
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [0u8; 4]`, `if let [a, b] = …`, `x as [u8; 4]`, …).
/// `self` is deliberately *not* here: `self[i]` is real indexing.
const NON_INDEXING_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod",
    "move", "mut", "pub", "ref", "return", "static", "struct", "trait",
    "type", "unsafe", "use", "where", "while", "yield", "Self",
];

/// Integer types an `as` cast can silently truncate into on a 64-bit
/// target. Widening casts to `u64`/`i64`/`usize` are not flagged; a cast to
/// anything here either truncates or should be written as `From`/`TryFrom`.
const NARROW_INT_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Macros banned from library targets (P3).
const BANNED_MACROS: &[&str] = &["todo", "unimplemented", "dbg", "println"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AllowKind {
    Indexing,
    Cast,
}

/// Runs every applicable rule over `src` and returns the findings.
pub fn analyze(src: &str, rules: FileRules) -> FileAnalysis {
    let tokens = lex(src);
    let mut out = FileAnalysis::default();
    let allows = collect_allows(&tokens, &mut out);
    let lines = LineMap::build(&tokens);
    let test_lines = test_region_lines(&tokens);

    let in_test =
        |line: u32| test_lines.binary_search_by(|r| cmp_range(r, line)).is_ok();
    let mut suppressed_hits = 0usize;

    // Significant (non-comment) token indices for prev/next lookups.
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();

    for (si, &ti) in sig.iter().enumerate() {
        let tok = &tokens[ti];
        let prev = si.checked_sub(1).map(|p| &tokens[sig[p]]);
        let next = sig.get(si + 1).map(|&n| &tokens[n]);

        match tok.kind {
            TokKind::Ident if tok.text == "unsafe" => {
                let kind = match next.map(|t| (t.kind, t.text)) {
                    Some((TokKind::Punct('{'), _)) => "block",
                    Some((TokKind::Ident, "fn")) => "fn",
                    Some((TokKind::Ident, "impl")) => "impl",
                    Some((TokKind::Ident, "trait")) => "trait",
                    Some((TokKind::Ident, "extern")) => "extern",
                    // `pub unsafe fn` handled above; anything else (e.g. a
                    // macro fragment) still counts as an unsafe site.
                    _ => "other",
                };
                let has_safety = lines.has_safety_near(tok.line);
                out.unsafe_sites.push(UnsafeSite {
                    line: tok.line,
                    kind,
                    has_safety_comment: has_safety,
                });
                if !has_safety {
                    out.violations.push(Violation {
                        rule: Rule::UnsafeNoSafety,
                        line: tok.line,
                        what: format!("unsafe {kind} without a `// SAFETY:` comment"),
                    });
                }
                if !rules.unsafe_allowed {
                    out.violations.push(Violation {
                        rule: Rule::UnsafeOutsideAllowlist,
                        line: tok.line,
                        what: format!("unsafe {kind} outside the allowlisted module set"),
                    });
                }
            }
            TokKind::Punct('[')
                if rules.decode_path && !in_test(tok.line) && is_indexing(prev) =>
            {
                if allows.covers(tok.line, AllowKind::Indexing) {
                    suppressed_hits += 1;
                } else {
                    let on = prev.map(|p| p.text).unwrap_or("");
                    out.violations.push(Violation {
                        rule: Rule::Indexing,
                        line: tok.line,
                        what: format!("direct indexing `{on}[…]` (use .get()/typed error)"),
                    });
                }
            }
            TokKind::Ident
                if tok.text == "as" && rules.decode_path && !in_test(tok.line) =>
            {
                if let Some(n) = next {
                    if n.kind == TokKind::Ident && NARROW_INT_TYPES.contains(&n.text) {
                        if allows.covers(tok.line, AllowKind::Cast) {
                            suppressed_hits += 1;
                        } else {
                            out.violations.push(Violation {
                                rule: Rule::Cast,
                                line: tok.line,
                                what: format!(
                                    "possibly-truncating cast `as {}` (use From/TryFrom)",
                                    n.text
                                ),
                            });
                        }
                    }
                }
            }
            TokKind::Ident
                if rules.lib_target
                    && !in_test(tok.line)
                    && BANNED_MACROS.contains(&tok.text)
                    && matches!(next.map(|t| t.kind), Some(TokKind::Punct('!'))) =>
            {
                out.violations.push(Violation {
                    rule: Rule::BannedMacro,
                    line: tok.line,
                    what: format!("`{}!` in a library target", tok.text),
                });
            }
            _ => {}
        }
    }
    out.suppressed = suppressed_hits;
    out
}

/// Whether a `[` forms an index expression, judged by the preceding
/// significant token: an identifier (that is not a keyword), a closing
/// `)`/`]`, a `?`, or a literal can all be indexed into; everything else
/// (`&`, `=`, `:`, `,`, `<`, `#`, `!`, a lifetime, …) introduces a slice
/// type, array literal, attribute, or pattern.
fn is_indexing(prev: Option<&Token<'_>>) -> bool {
    match prev {
        Some(t) => match t.kind {
            TokKind::Ident => !NON_INDEXING_KEYWORDS.contains(&t.text),
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('?') => true,
            TokKind::Str | TokKind::Number => true,
            _ => false,
        },
        None => false,
    }
}

/// Escape-hatch annotations, resolved to the lines they cover.
struct Allows {
    /// Sorted `(line, kind)` pairs.
    entries: Vec<(u32, AllowKind)>,
}

impl Allows {
    fn covers(&self, line: u32, kind: AllowKind) -> bool {
        self.entries.iter().any(|&(l, k)| l == line && k == kind)
    }
}

/// Parses allow-annotation comments. A comment that is the only
/// token on its line covers the next line holding a non-comment token; a
/// trailing comment covers its own line. Unknown kinds and missing reasons
/// are reported and ignored.
fn collect_allows(tokens: &[Token<'_>], out: &mut FileAnalysis) -> Allows {
    // Lines that hold at least one non-comment token, sorted (tokens are in
    // source order, so pushes arrive sorted; dedup adjacent).
    let mut code_lines: Vec<u32> = Vec::new();
    let mut comment_only: Vec<bool> = Vec::new(); // parallel to tokens: token starts its line?
    let mut last_line = 0u32;
    for t in tokens {
        comment_only.push(t.line != last_line);
        if !t.is_comment() && code_lines.last() != Some(&t.line) {
            code_lines.push(t.line);
        }
        let end = t.line + t.text.matches('\n').count() as u32;
        last_line = end.max(last_line);
    }

    let mut entries = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let Some(rest) = t.text.find("lint:").map(|p| &t.text[p + 5..]) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            out.violations.push(Violation {
                rule: Rule::BadAnnotation,
                line: t.line,
                what: "malformed `lint: allow(...)` annotation".into(),
            });
            continue;
        };
        let kind = match args[..close].trim() {
            "indexing" => AllowKind::Indexing,
            "cast" => AllowKind::Cast,
            other => {
                out.violations.push(Violation {
                    rule: Rule::BadAnnotation,
                    line: t.line,
                    what: format!("unknown lint allow kind `{other}`"),
                });
                continue;
            }
        };
        let reason = args[close + 1..].trim_matches(|c: char| {
            c.is_whitespace() || c == '*' || c == '/'
        });
        if reason.is_empty() {
            out.violations.push(Violation {
                rule: Rule::BadAnnotation,
                line: t.line,
                what: "lint allow annotation requires a reason".into(),
            });
            continue;
        }
        // Whole-line comment → covers the next code line; trailing → its own.
        let starts_line = comment_only.get(i).copied().unwrap_or(true);
        let own_line_has_code = code_lines.binary_search(&t.line).is_ok();
        let target = if starts_line && !own_line_has_code {
            match code_lines.binary_search(&t.line) {
                Ok(_) => Some(t.line),
                Err(pos) => code_lines.get(pos).copied(),
            }
        } else {
            Some(t.line)
        };
        if let Some(line) = target {
            entries.push((line, kind));
        }
    }
    Allows { entries }
}

/// Per-line comment facts used by the U1 SAFETY search.
struct LineMap {
    /// Sorted list of lines fully or partially covered by a comment.
    comment_lines: Vec<u32>,
    /// Subset of `comment_lines` whose comment text contains `SAFETY:`.
    safety_lines: Vec<u32>,
    /// Lines holding at least one non-comment token.
    code_lines: Vec<u32>,
}

impl LineMap {
    fn build(tokens: &[Token<'_>]) -> LineMap {
        let mut comment_lines = Vec::new();
        let mut safety_lines = Vec::new();
        let mut code_lines = Vec::new();
        for t in tokens {
            if t.is_comment() {
                let span = t.text.matches('\n').count() as u32;
                for l in t.line..=t.line + span {
                    push_sorted(&mut comment_lines, l);
                    if t.text.contains("SAFETY:") {
                        push_sorted(&mut safety_lines, l);
                    }
                }
            } else {
                push_sorted(&mut code_lines, t.line);
            }
        }
        LineMap {
            comment_lines,
            safety_lines,
            code_lines,
        }
    }

    /// U1 acceptance: a `SAFETY:` comment on the `unsafe` line itself, or on
    /// the contiguous run of comment-only lines directly above it.
    fn has_safety_near(&self, line: u32) -> bool {
        if self.safety_lines.binary_search(&line).is_ok() {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let is_comment = self.comment_lines.binary_search(&l).is_ok();
            let is_code = self.code_lines.binary_search(&l).is_ok();
            if is_comment && !is_code {
                if self.safety_lines.binary_search(&l).is_ok() {
                    return true;
                }
                continue; // keep walking up the comment block
            }
            // First non-comment line above (code or blank) ends the search,
            // except a trailing comment on a code line directly above.
            return l == line - 1 && is_comment && self.safety_lines.binary_search(&l).is_ok();
        }
        false
    }
}

fn push_sorted(v: &mut Vec<u32>, x: u32) {
    if v.last() != Some(&x) {
        v.push(x);
    }
}

/// Computes the line ranges belonging to test-gated code: any brace region
/// whose governing item carries `#[test]`, `#[cfg(test)]`, or a `cfg`
/// attribute mentioning `test` (e.g. `#[cfg(any(test, fuzzing))]`).
/// Returns disjoint sorted `(start, end)` inclusive line ranges.
fn test_region_lines(tokens: &[Token<'_>]) -> Vec<(u32, u32)> {
    let sig: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut stack: Vec<bool> = Vec::new(); // test flag per open brace
    let mut region_start: Vec<u32> = Vec::new();
    let mut pending_test = false;
    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];
        match t.kind {
            TokKind::Punct('#') => {
                // Attribute: `#` (`!`)? `[` … `]` with nested brackets.
                let mut j = i + 1;
                if matches!(sig.get(j).map(|t| t.kind), Some(TokKind::Punct('!'))) {
                    j += 1;
                }
                if matches!(sig.get(j).map(|t| t.kind), Some(TokKind::Punct('['))) {
                    let mut depth = 0i32;
                    let mut attr_tokens: Vec<&Token<'_>> = Vec::new();
                    while j < sig.len() {
                        match sig[j].kind {
                            TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        attr_tokens.push(sig[j]);
                        j += 1;
                    }
                    if attr_is_test_marker(&attr_tokens) {
                        pending_test = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            TokKind::Punct('{') => {
                let parent_test = stack.iter().any(|&b| b);
                let test = pending_test || parent_test;
                if test && !parent_test {
                    region_start.push(t.line);
                }
                stack.push(pending_test || parent_test);
                pending_test = false;
            }
            TokKind::Punct('}') => {
                let was_test = stack.pop().unwrap_or(false);
                let still_test = stack.iter().any(|&b| b);
                if was_test && !still_test {
                    if let Some(start) = region_start.pop() {
                        ranges.push((start, t.line));
                    }
                }
            }
            TokKind::Punct(';') => {
                // `#[cfg(test)] use foo;` — attribute consumed by the item.
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
    ranges.sort_unstable();
    ranges
}

/// Whether an attribute's inner tokens mark test-only code: the attribute
/// path is exactly `test`, or exactly `cfg` with `test` appearing anywhere
/// in its arguments. (`cfg_attr` does *not* gate the item out of non-test
/// builds, so it is not a marker.)
fn attr_is_test_marker(inner: &[&Token<'_>]) -> bool {
    // `inner` starts at the opening `[`.
    let first_ident = inner.iter().find(|t| t.kind == TokKind::Ident);
    match first_ident.map(|t| t.text) {
        Some("test") => true,
        Some("cfg") => inner
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test"),
        _ => false,
    }
}

fn cmp_range(r: &(u32, u32), line: u32) -> std::cmp::Ordering {
    if line < r.0 {
        std::cmp::Ordering::Greater
    } else if line > r.1 {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECODE: FileRules = FileRules {
        unsafe_allowed: false,
        decode_path: true,
        lib_target: true,
    };

    fn rule_count(a: &FileAnalysis, rule: Rule) -> usize {
        a.violations.iter().filter(|v| v.rule == rule).count()
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bare = analyze("fn f() { unsafe { g() } }", DECODE);
        assert_eq!(rule_count(&bare, Rule::UnsafeNoSafety), 1);
        assert_eq!(rule_count(&bare, Rule::UnsafeOutsideAllowlist), 1);
        assert_eq!(bare.unsafe_sites.len(), 1);
        assert_eq!(bare.unsafe_sites[0].kind, "block");

        let documented = analyze(
            "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}",
            DECODE,
        );
        assert_eq!(rule_count(&documented, Rule::UnsafeNoSafety), 0);
        // U2 still applies: the file is not on the allowlist.
        assert_eq!(rule_count(&documented, Rule::UnsafeOutsideAllowlist), 1);

        let allowed = analyze(
            "// SAFETY: fine\nunsafe fn f() {}",
            FileRules {
                unsafe_allowed: true,
                ..DECODE
            },
        );
        assert!(allowed.violations.is_empty());
        assert_eq!(allowed.unsafe_sites[0].kind, "fn");
    }

    #[test]
    fn safety_comment_block_above_is_accepted() {
        // A multi-line comment block directly above, with SAFETY on its
        // first line, still counts.
        let src = "fn f() {\n    // SAFETY: the buffer outlives the call\n    // and the length was validated.\n    unsafe { g() }\n}";
        let a = analyze(src, DECODE);
        assert_eq!(rule_count(&a, Rule::UnsafeNoSafety), 0);
        // A blank line between the comment and the `unsafe` breaks the run.
        let gap = "fn f() {\n    // SAFETY: stale\n\n    unsafe { g() }\n}";
        let b = analyze(gap, DECODE);
        assert_eq!(rule_count(&b, Rule::UnsafeNoSafety), 1);
    }

    #[test]
    fn unsafe_in_string_literals_is_invisible() {
        let src =
            r##"fn f() { let a = "unsafe { }"; let b = r#"unsafe fn"#; let c = b"unsafe"; }"##;
        let a = analyze(src, DECODE);
        assert!(a.unsafe_sites.is_empty());
        assert!(a.violations.is_empty());
    }

    #[test]
    fn test_gated_code_skips_p_rules_but_not_u_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(v: &Vec<u8>) -> u8 {\n        println!(\"{}\", v[0]);\n        v[1] as u8\n    }\n    fn g() { unsafe { h() } }\n}\n";
        let a = analyze(src, DECODE);
        assert_eq!(rule_count(&a, Rule::Indexing), 0);
        assert_eq!(rule_count(&a, Rule::Cast), 0);
        assert_eq!(rule_count(&a, Rule::BannedMacro), 0);
        // `unsafe` in tests still needs SAFETY and allowlisting.
        assert_eq!(rule_count(&a, Rule::UnsafeNoSafety), 1);
        assert_eq!(rule_count(&a, Rule::UnsafeOutsideAllowlist), 1);
    }

    #[test]
    fn braces_in_literals_do_not_distort_test_regions() {
        let src = "#[cfg(test)]\nmod t {\n    const S: &str = \"}\";\n    const C: char = '{';\n    fn f(v: &Vec<u8>) -> u8 { v[0] as u8 }\n}\nfn g(v: &Vec<u8>) -> u8 { v[1] as u8 }\n";
        let a = analyze(src, DECODE);
        // Only g(), outside the test module, is flagged.
        assert_eq!(rule_count(&a, Rule::Indexing), 1);
        assert_eq!(rule_count(&a, Rule::Cast), 1);
        assert!(a.violations.iter().all(|v| v.line == 7), "{:?}", a.violations);
    }

    #[test]
    fn indexing_only_flags_index_expressions() {
        for (src, expect) in [
            ("v[i]", 1),
            ("f()[0]", 1),
            ("x?[0]", 1),
            ("m[k][j]", 2),
            ("let [a, b] = p;", 0),  // pattern
            ("fn t(x: &[u8]) {}", 0), // slice type
            ("let a = [0u8; 4];", 0), // array literal
            ("x as [u8; 4]", 0),      // cast to array type
            ("#[derive(Debug)]", 0),  // attribute
        ] {
            let a = analyze(src, DECODE);
            assert_eq!(rule_count(&a, Rule::Indexing), expect, "{src}");
        }
        // Outside decode-path lib targets the rule is off entirely.
        let off = analyze(
            "v[i]",
            FileRules {
                decode_path: false,
                ..DECODE
            },
        );
        assert!(off.violations.is_empty());
    }

    #[test]
    fn cast_flags_narrow_integer_targets_only() {
        for (src, expect) in [
            ("x as u8", 1),
            ("x as u16", 1),
            ("x as i32", 1),
            ("x as usize", 0),
            ("x as u64", 0),
            ("x as i64", 0),
            ("x as f64", 0),
        ] {
            let a = analyze(src, DECODE);
            assert_eq!(rule_count(&a, Rule::Cast), expect, "{src}");
        }
    }

    #[test]
    fn banned_macros_in_lib_targets() {
        let a = analyze(
            "fn f() { todo!() }\nfn g() { dbg!(1); println!(\"x\"); }",
            DECODE,
        );
        assert_eq!(rule_count(&a, Rule::BannedMacro), 3);
        // Non-lib targets (bins, tests/, benches/) may print.
        let bin = analyze(
            "fn main() { println!(\"x\"); }",
            FileRules {
                decode_path: false,
                lib_target: false,
                ..DECODE
            },
        );
        assert_eq!(rule_count(&bin, Rule::BannedMacro), 0);
        // `println` as a plain identifier (no `!`) is fine.
        let ident = analyze("fn println() {}", DECODE);
        assert_eq!(rule_count(&ident, Rule::BannedMacro), 0);
    }

    #[test]
    fn whole_line_annotation_covers_next_code_line_only() {
        let src = "fn f(v: &Vec<u8>) -> u8 {\n    // lint: allow(indexing) checked by caller\n    let a = v[0] + v[1];\n    let b = v[2];\n    a + b\n}\n";
        let a = analyze(src, DECODE);
        assert_eq!(a.suppressed, 2, "both hits on the covered line");
        assert_eq!(rule_count(&a, Rule::Indexing), 1, "the line after is not covered");
        assert_eq!(rule_count(&a, Rule::BadAnnotation), 0);
    }

    #[test]
    fn trailing_annotation_covers_its_own_line() {
        let src = "fn f(v: &Vec<u8>) -> u8 { v[0] } // lint: allow(indexing) fixture\n";
        let a = analyze(src, DECODE);
        assert!(a.violations.is_empty());
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn annotation_without_reason_is_reported_and_suppresses_nothing() {
        let src = "fn f(v: &Vec<u8>) -> u8 {\n    // lint: allow(indexing)\n    v[0]\n}\n";
        let a = analyze(src, DECODE);
        assert_eq!(rule_count(&a, Rule::BadAnnotation), 1);
        assert_eq!(rule_count(&a, Rule::Indexing), 1);
        assert_eq!(a.suppressed, 0);
    }

    #[test]
    fn unknown_or_mismatched_annotation_kinds() {
        let unknown = analyze("// lint: allow(unwrap) because\nlet x = v[0];", DECODE);
        assert_eq!(rule_count(&unknown, Rule::BadAnnotation), 1);
        assert_eq!(rule_count(&unknown, Rule::Indexing), 1);
        // allow(cast) does not excuse indexing.
        let mismatch = analyze("// lint: allow(cast) wrong kind\nlet x = v[0];", DECODE);
        assert_eq!(rule_count(&mismatch, Rule::Indexing), 1);
        assert_eq!(mismatch.suppressed, 0);
    }

    #[test]
    fn annotation_inside_string_is_not_an_annotation() {
        let src = "fn f(v: &Vec<u8>) -> u8 {\n    let s = \"// lint: allow(indexing) nope\";\n    v[0]\n}\n";
        let a = analyze(src, DECODE);
        assert_eq!(rule_count(&a, Rule::Indexing), 1);
        assert_eq!(a.suppressed, 0);
    }
}
