//! btr-lint: the decode-path safety-contract checker.
//!
//! A dependency-free static-analysis tool (no `syn`, no registry crates —
//! the linter must stay hermetic so it can gate the build on any machine
//! that has a Rust toolchain). It lexes every Rust source in the workspace
//! with a hand-rolled tokenizer and enforces the contract established by
//! the corruption-hardening work: *corrupt bytes surface as typed errors,
//! never as panics*, and every `unsafe` block states its invariant.
//!
//! Rules (see [`rules`] for scope details):
//!
//! * **U1** `unsafe_no_safety` — every `unsafe` needs `// SAFETY:` directly
//!   above (or on the same line).
//! * **U2** `unsafe_outside_allowlist` — `unsafe` only in modules listed in
//!   `btr-lint.toml`.
//! * **P1** `indexing` — no `expr[idx]` in decode-path lib code; use
//!   `.get()` + typed errors, or `// lint: allow(indexing) <reason>`.
//! * **P2** `cast` — no `as`-casts to ≤32-bit integer types in decode-path
//!   lib code; use `From`/`TryFrom`, or `// lint: allow(cast) <reason>`.
//! * **P3** `banned_macro` — no `todo!`/`unimplemented!`/`dbg!`/`println!`
//!   in any library target.
//!
//! The concurrency contract (DESIGN.md §15) adds four rules:
//!
//! * **C1** `rawlock` — no raw `std::sync::Mutex`/`RwLock`/`Condvar` in
//!   crates listed under `[concurrency]`; use the `btr-sync` ordered
//!   wrappers, or `// lint: allow(rawlock) <reason>`.
//! * **C2** `lock_rank` — every `Ordered*::new(RANK, …)` names a constant
//!   whose rank exists in the `[lock_order]` hierarchy table, and every
//!   table row is backed by a declaration that is actually constructed.
//! * **C3** `atomic_ordering` — every `Ordering::<mode>` token carries an
//!   `// ordering: <reason>` annotation (same line or the comment block
//!   directly above) unless the file is listed under `[atomics] allow`.
//! * **C4** `bare_wait` — no bare `Condvar::wait` (use `wait_while`) and
//!   no `thread::sleep` in concurrency-crate lib targets.
//!
//! Violation counts are diffed against `lint-ratchet.toml`: `--check` fails
//! on any count above the committed value, so new debt cannot land, while
//! existing debt is burned down by lowering the committed numbers.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use config::{Config, Ratchet};
pub use rules::{analyze, FileRules, Rule};
pub use workspace::{run, LintRun};

use std::path::Path;

/// Names of the two state files at the workspace root.
pub const CONFIG_FILE: &str = "btr-lint.toml";
/// See [`CONFIG_FILE`].
pub const RATCHET_FILE: &str = "lint-ratchet.toml";

/// Loads config + ratchet and lints the workspace rooted at `root`.
/// Returns the run and the parsed ratchet.
pub fn run_workspace(root: &Path) -> Result<(LintRun, Ratchet), String> {
    let config_text = std::fs::read_to_string(root.join(CONFIG_FILE))
        .map_err(|e| format!("reading {CONFIG_FILE}: {e}"))?;
    let config = Config::parse(&config_text).map_err(|e| format!("{CONFIG_FILE}: {e}"))?;
    let ratchet = match std::fs::read_to_string(root.join(RATCHET_FILE)) {
        Ok(text) => Ratchet::parse(&text).map_err(|e| format!("{RATCHET_FILE}: {e}"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ratchet::default(),
        Err(e) => return Err(format!("reading {RATCHET_FILE}: {e}")),
    };
    let run = workspace::run(root, &config).map_err(|e| format!("scanning workspace: {e}"))?;
    Ok((run, ratchet))
}
