//! Randomized oracles for the expression engine.
//!
//! The kernel path under test is the one the scan pipeline runs: compile the
//! expression, evaluate leaf conjuncts in the compressed domain when the
//! scheme allows (decoding only on `NeedsDecode`), run general conjuncts
//! through `eval_predicate`, and intersect selections per block. The oracle
//! is a naive row-wise interpreter over the *original* uncompressed data —
//! so a disagreement catches kernel bugs and lossy codecs alike.
//!
//! Randomness comes from btr-corrupt's deterministic xorshift generator (the
//! workspace builds offline; there is no `proptest`). Every case is a pure
//! function of the seed, so failures reproduce exactly. A single
//! `DecodeScratch` is shared across all seeds and never reset: kernels must
//! not depend on clean scratch state.

use btr_corrupt::Xorshift;
use btr_expr::{
    col, eval_predicate, filter_leaf, lit, AggKind, AggState, AggValue, ConjunctKind, Expr,
    ExprPlan, LeafInput, LeafVerdict, Selection, ZoneVerdict,
};
use btrblocks::{
    decompress_block_into, CmpOp, Column, ColumnData, ColumnType, Config, DecodeScratch,
    DecodedColumn, Literal, Relation, SchemeCode, Sidecar, StringArena,
};

/// Decodes one block through the shared (never-reset) scratch.
fn decode(bytes: &[u8], ty: ColumnType, cfg: &Config, scratch: &mut DecodeScratch) -> DecodedColumn {
    let mut out = scratch.lease_decoded(ty);
    decompress_block_into(bytes, ty, cfg, scratch, &mut out).expect("block decodes");
    out
}

const ROWS: usize = 600;
const BLOCK: usize = 128;

fn schema(name: &str) -> Option<(usize, ColumnType)> {
    match name {
        "a" => Some((0, ColumnType::Integer)),
        "b" => Some((1, ColumnType::Double)),
        "s" => Some((2, ColumnType::String)),
        _ => None,
    }
}

/// The original data, kept decoded for the naive reference.
struct Data {
    a: Vec<i32>,
    b: Vec<f64>,
    s: Vec<String>,
}

const TAGS: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];

/// Generates column data in shapes that steer scheme selection: constants
/// (OneValue), runs (RLE), small domains (Dict/Frequency), and noise
/// (FastPfor/FastBp128/Pseudodecimal/uncompressed).
fn gen_data(rng: &mut Xorshift) -> Data {
    let int_shape = rng.gen_range(0..4u32);
    let a: Vec<i32> = match int_shape {
        0 => vec![rng.gen_range(-20..=20); ROWS],
        1 => {
            let mut v = rng.gen_range(-20..=20);
            (0..ROWS)
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        v = rng.gen_range(-20..=20);
                    }
                    v
                })
                .collect()
        }
        2 => (0..ROWS).map(|_| rng.gen_range(-4..=4)).collect(),
        _ => (0..ROWS).map(|_| rng.gen_range(-20_000..=20_000)).collect(),
    };
    let dbl_shape = rng.gen_range(0..4u32);
    let nan_p = if rng.gen_bool(0.3) { 0.05 } else { 0.0 };
    let b: Vec<f64> = match dbl_shape {
        0 => vec![f64::from(rng.gen_range(-10..=10)) * 0.5; ROWS],
        1 => {
            let mut v = f64::from(rng.gen_range(-10..=10)) * 0.5;
            (0..ROWS)
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        v = f64::from(rng.gen_range(-10..=10)) * 0.5;
                    }
                    v
                })
                .collect()
        }
        2 => (0..ROWS)
            .map(|_| f64::from(rng.gen_range(-10..=10)) * 0.5)
            .collect(),
        _ => (0..ROWS)
            .map(|_| f64::from(rng.gen_range(-400..=400)) * 0.25)
            .collect(),
    }
    .into_iter()
    .map(|v| if rng.gen_bool(nan_p) { f64::NAN } else { v })
    .collect();
    let str_shape = rng.gen_range(0..3u32);
    let s: Vec<String> = match str_shape {
        0 => vec![TAGS[rng.gen_range(0..TAGS.len())].to_string(); ROWS],
        1 => {
            let mut v = rng.gen_range(0..TAGS.len());
            (0..ROWS)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        v = rng.gen_range(0..TAGS.len());
                    }
                    TAGS[v].to_string()
                })
                .collect()
        }
        _ => (0..ROWS)
            .map(|_| TAGS[rng.gen_range(0..TAGS.len())].to_string())
            .collect(),
    };
    Data { a, b, s }
}

fn relation(data: &Data) -> Relation {
    let refs: Vec<&str> = data.s.iter().map(|s| s.as_str()).collect();
    Relation::new(vec![
        Column::new("a", ColumnData::Int(data.a.clone())),
        Column::new("b", ColumnData::Double(data.b.clone())),
        Column::new("s", ColumnData::Str(StringArena::from_strs(&refs))),
    ])
}

/// A scheme pool per seed: the oracle must hold whatever the selector was
/// allowed to pick.
fn pool_for(seed: u64) -> Config {
    let base = Config {
        block_size: BLOCK,
        ..Config::default()
    };
    match seed % 5 {
        0 => base,
        1 => base.with_pool(&[SchemeCode::OneValue, SchemeCode::Rle]),
        2 => base.with_pool(&[
            SchemeCode::Dict,
            SchemeCode::Frequency,
            SchemeCode::DictFsst,
        ]),
        3 => base.with_pool(&[
            SchemeCode::FastPfor,
            SchemeCode::FastBp128,
            SchemeCode::Pseudodecimal,
            SchemeCode::Fsst,
        ]),
        _ => base.with_pool(&[]),
    }
}

// ---------------------------------------------------------------------------
// Random expression trees (well-typed by construction, depth <= 4).
// ---------------------------------------------------------------------------

fn gen_expr(rng: &mut Xorshift) -> Expr {
    gen_bool_expr(rng, 4)
}

fn gen_bool_expr(rng: &mut Xorshift, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.45) {
        return gen_cmp(rng, depth);
    }
    match rng.gen_range(0..3u32) {
        0 => gen_bool_expr(rng, depth - 1).and(gen_bool_expr(rng, depth - 1)),
        1 => gen_bool_expr(rng, depth - 1).or(gen_bool_expr(rng, depth - 1)),
        _ => gen_bool_expr(rng, depth - 1).not(),
    }
}

fn gen_cmp(rng: &mut Xorshift, depth: u32) -> Expr {
    let op = match rng.gen_range(0..5u32) {
        0 => CmpOp::Eq,
        1 => CmpOp::Lt,
        2 => CmpOp::Le,
        3 => CmpOp::Gt,
        _ => CmpOp::Ge,
    };
    let (lhs, rhs) = match rng.gen_range(0..3u32) {
        0 => (gen_int_expr(rng, depth), gen_int_expr(rng, depth)),
        1 => (gen_dbl_expr(rng, depth), gen_dbl_expr(rng, depth)),
        _ => {
            // Strings: columns and literals only (no string operators).
            let side = |rng: &mut Xorshift| {
                if rng.gen_bool(0.6) {
                    col("s")
                } else {
                    lit(TAGS[rng.gen_range(0..TAGS.len())])
                }
            };
            (side(rng), side(rng))
        }
    };
    Expr::Cmp(op, Box::new(lhs), Box::new(rhs))
}

fn gen_int_expr(rng: &mut Xorshift, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.6) {
        if rng.gen_bool(0.6) {
            col("a")
        } else {
            lit(rng.gen_range(-25..=25))
        }
    } else {
        let (a, b) = (gen_int_expr(rng, depth - 1), gen_int_expr(rng, depth - 1));
        match rng.gen_range(0..3u32) {
            0 => a.add(b),
            1 => a.sub(b),
            _ => a.mul(b),
        }
    }
}

fn gen_dbl_expr(rng: &mut Xorshift, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.6) {
        if rng.gen_bool(0.6) {
            col("b")
        } else if rng.gen_bool(0.05) {
            lit(f64::NAN)
        } else {
            lit(f64::from(rng.gen_range(-12..=12)) * 0.5)
        }
    } else {
        let (a, b) = (gen_dbl_expr(rng, depth - 1), gen_dbl_expr(rng, depth - 1));
        match rng.gen_range(0..3u32) {
            0 => a.add(b),
            1 => a.sub(b),
            _ => a.mul(b),
        }
    }
}

// ---------------------------------------------------------------------------
// Naive row-wise reference interpreter over the original data.
// ---------------------------------------------------------------------------

enum V {
    I(i32),
    D(f64),
    B(bool),
    S(Vec<u8>),
}

fn eval_row(e: &Expr, row: usize, d: &Data) -> V {
    match e {
        Expr::Col(name) => match name.as_str() {
            "a" => V::I(d.a[row]),
            "b" => V::D(d.b[row]),
            "s" => V::S(d.s[row].clone().into_bytes()),
            other => panic!("unknown column {other}"),
        },
        Expr::Lit(Literal::Int(v)) => V::I(*v),
        Expr::Lit(Literal::Double(v)) => V::D(*v),
        Expr::Lit(Literal::Str(v)) => V::S(v.clone()),
        Expr::Cmp(op, a, b) => {
            let (x, y) = (eval_row(a, row, d), eval_row(b, row, d));
            V::B(match (x, y) {
                (V::I(x), V::I(y)) => op.matches(&x, &y),
                (V::D(x), V::D(y)) => op.matches(&x, &y),
                (V::S(x), V::S(y)) => op.matches(&x.as_slice(), &y.as_slice()),
                _ => panic!("ill-typed comparison in generated expression"),
            })
        }
        Expr::And(a, b) => V::B(truth(a, row, d) && truth(b, row, d)),
        Expr::Or(a, b) => V::B(truth(a, row, d) || truth(b, row, d)),
        Expr::Not(a) => V::B(!truth(a, row, d)),
        Expr::Add(a, b) => arith(a, b, row, d, i32::wrapping_add, |x, y| x + y),
        Expr::Sub(a, b) => arith(a, b, row, d, i32::wrapping_sub, |x, y| x - y),
        Expr::Mul(a, b) => arith(a, b, row, d, i32::wrapping_mul, |x, y| x * y),
    }
}

fn truth(e: &Expr, row: usize, d: &Data) -> bool {
    match eval_row(e, row, d) {
        V::B(v) => v,
        _ => panic!("non-boolean where boolean expected"),
    }
}

fn arith(
    a: &Expr,
    b: &Expr,
    row: usize,
    d: &Data,
    fi: fn(i32, i32) -> i32,
    fd: fn(f64, f64) -> f64,
) -> V {
    match (eval_row(a, row, d), eval_row(b, row, d)) {
        (V::I(x), V::I(y)) => V::I(fi(x, y)),
        (V::D(x), V::D(y)) => V::D(fd(x, y)),
        _ => panic!("ill-typed arithmetic in generated expression"),
    }
}

// ---------------------------------------------------------------------------
// The kernel path: exactly what the scan pipeline runs per block.
// ---------------------------------------------------------------------------

/// Evaluates the compiled plan block by block — compressed-domain leaves
/// where the scheme allows, decode fallback otherwise, `eval_predicate` for
/// general conjuncts — and returns the surviving global row indices. Along
/// the way it cross-checks every zone verdict against the actual outcome.
fn kernel_eval(
    plan: &ExprPlan,
    compressed: &btrblocks::CompressedRelation,
    sidecar: &Sidecar,
    cfg: &Config,
    scratch: &mut DecodeScratch,
) -> Vec<usize> {
    let types = [ColumnType::Integer, ColumnType::Double, ColumnType::String];
    let names = ["a", "b", "s"];
    let blocks = compressed.columns[0].blocks.len();
    let mut kept = Vec::new();
    for g in 0..blocks {
        let start = g * BLOCK;
        let n = BLOCK.min(ROWS - start) as u32;
        let decoded: Vec<DecodedColumn> = (0..3)
            .map(|c| decode(&compressed.columns[c].blocks[g], types[c], cfg, scratch))
            .collect();
        let mut sel = Selection::all(n);
        for conj in &plan.conjuncts {
            let block_sel = match &conj.kind {
                ConjunctKind::Leaf {
                    column, op, literal, ..
                } => {
                    let bytes = &compressed.columns[*column].blocks[g];
                    let verdict = filter_leaf(
                        LeafInput::Compressed {
                            bytes,
                            ty: types[*column],
                            config: cfg,
                        },
                        *op,
                        literal,
                    )
                    .expect("leaf evaluates");
                    let rows = match verdict {
                        LeafVerdict::Selected { rows, .. } => rows,
                        LeafVerdict::NeedsDecode => {
                            match filter_leaf(LeafInput::Decoded(&decoded[*column]), *op, literal)
                                .expect("decoded leaf evaluates")
                            {
                                LeafVerdict::Selected { rows, .. } => rows,
                                LeafVerdict::NeedsDecode => {
                                    panic!("decoded input always evaluates")
                                }
                            }
                        }
                    };
                    let block_sel = Selection::from_bitmap(n, rows);
                    // Zone oracle: a verdict must never contradict the rows.
                    let meta = sidecar.column(names[*column]).expect("sidecar has column");
                    check_zone(conj.zone_verdict(&meta.zones[g]), &block_sel, g);
                    block_sel
                }
                ConjunctKind::General(bound) => {
                    eval_predicate(bound, &decoded, &sel).expect("general conjunct evaluates")
                }
            };
            sel = sel.intersect(&block_sel);
            if sel.is_empty() {
                break;
            }
        }
        kept.extend(sel.iter().map(|r| start + r as usize));
    }
    kept
}

fn check_zone(verdict: ZoneVerdict, block_sel: &Selection, g: usize) {
    match verdict {
        ZoneVerdict::AlwaysFalse => assert!(
            block_sel.is_empty(),
            "block {g}: zone said AlwaysFalse but {} rows matched",
            block_sel.cardinality()
        ),
        ZoneVerdict::AlwaysTrue => assert_eq!(
            block_sel.cardinality(),
            block_sel.rows(),
            "block {g}: zone said AlwaysTrue but some rows failed"
        ),
        ZoneVerdict::Unknown => {}
    }
}

#[test]
fn expr_eval_matches_decode_then_filter() {
    let mut scratch = DecodeScratch::new();
    let mut total_exprs = 0usize;
    let mut nontrivial = 0usize;
    for seed in 0..24u64 {
        let mut rng = Xorshift::new(seed.wrapping_mul(0x9E37_79B9) + 1);
        let data = gen_data(&mut rng);
        let rel = relation(&data);
        let cfg = pool_for(seed);
        let sidecar = Sidecar::build(&rel, BLOCK);
        let compressed = btrblocks::compress(&rel, &cfg).expect("compress");

        for _ in 0..8 {
            let expr = gen_expr(&mut rng);
            let plan = ExprPlan::compile(&expr, schema).expect("generated exprs are well-typed");
            let got = kernel_eval(&plan, &compressed, &sidecar, &cfg, &mut scratch);
            let want: Vec<usize> = (0..ROWS).filter(|&i| truth(&expr, i, &data)).collect();
            assert_eq!(
                got, want,
                "seed {seed}: kernel path diverged from naive reference for {expr:?}"
            );
            total_exprs += 1;
            if !want.is_empty() && want.len() != ROWS {
                nontrivial += 1;
            }
        }
    }
    // The generator must produce real work, not just vacuous predicates.
    assert_eq!(total_exprs, 192);
    assert!(
        nontrivial >= total_exprs / 4,
        "only {nontrivial}/{total_exprs} cases were selective"
    );
}

// ---------------------------------------------------------------------------
// Aggregate oracle: every rung of the fold ladder must agree with a naive
// fold over the original rows.
// ---------------------------------------------------------------------------

/// `AggValue` equality with NaN-tolerant doubles (bit comparison), since a
/// NaN-poisoned SUM must still count as agreement when both sides are NaN.
fn agg_eq(a: &AggValue, b: &AggValue) -> bool {
    let bits = |v: &Option<f64>| v.map(f64::to_bits);
    match (a, b) {
        (AggValue::SumDouble(x), AggValue::SumDouble(y)) => x.to_bits() == y.to_bits(),
        (AggValue::MinDouble(x), AggValue::MinDouble(y)) => bits(x) == bits(y),
        (AggValue::MaxDouble(x), AggValue::MaxDouble(y)) => bits(x) == bits(y),
        _ => a == b,
    }
}

fn naive_agg(kind: AggKind, column: usize, data: &Data, rows: &[usize]) -> AggValue {
    match (kind, column) {
        (AggKind::Count, _) => AggValue::Count(rows.len() as u64),
        (AggKind::Sum, 0) => AggValue::SumInt(
            rows.iter()
                .fold(0i64, |acc, &i| acc.wrapping_add(i64::from(data.a[i]))),
        ),
        (AggKind::Sum, 1) => AggValue::SumDouble(rows.iter().fold(0.0, |acc, &i| acc + data.b[i])),
        (AggKind::Min, 0) => AggValue::MinInt(rows.iter().map(|&i| data.a[i]).min()),
        (AggKind::Max, 0) => AggValue::MaxInt(rows.iter().map(|&i| data.a[i]).max()),
        (AggKind::Min, 1) => AggValue::MinDouble(fold_dbl(data, rows, |m, v| v < m)),
        (AggKind::Max, 1) => AggValue::MaxDouble(fold_dbl(data, rows, |m, v| v > m)),
        (AggKind::Min, 2) => AggValue::MinStr(fold_str(data, rows, |m, v| v < m)),
        (AggKind::Max, 2) => AggValue::MaxStr(fold_str(data, rows, |m, v| v > m)),
        other => panic!("invalid aggregate/column combination {other:?}"),
    }
}

/// NaN-ignoring double extremum, matching the pinned MIN/MAX semantics.
fn fold_dbl(data: &Data, rows: &[usize], better: fn(f64, f64) -> bool) -> Option<f64> {
    let mut best: Option<f64> = None;
    for &i in rows {
        let v = data.b[i];
        if v.is_nan() {
            continue;
        }
        best = Some(match best {
            Some(m) if !better(m, v) => m,
            _ => v,
        });
    }
    best
}

fn fold_str(data: &Data, rows: &[usize], better: fn(&[u8], &[u8]) -> bool) -> Option<Vec<u8>> {
    let mut best: Option<&[u8]> = None;
    for &i in rows {
        let v = data.s[i].as_bytes();
        best = Some(match best {
            Some(m) if !better(m, v) => m,
            _ => v,
        });
    }
    best.map(<[u8]>::to_vec)
}

#[test]
fn aggregate_ladder_matches_naive_fold() {
    let mut scratch = DecodeScratch::new();
    let cases: &[(AggKind, usize)] = &[
        (AggKind::Count, 0),
        (AggKind::Sum, 0),
        (AggKind::Sum, 1),
        (AggKind::Min, 0),
        (AggKind::Max, 0),
        (AggKind::Min, 1),
        (AggKind::Max, 1),
        (AggKind::Min, 2),
        (AggKind::Max, 2),
    ];
    let types = [ColumnType::Integer, ColumnType::Double, ColumnType::String];
    let names = ["a", "b", "s"];
    let all_rows: Vec<usize> = (0..ROWS).collect();

    for seed in 100..116u64 {
        let mut rng = Xorshift::new(seed);
        let data = gen_data(&mut rng);
        let rel = relation(&data);
        let cfg = pool_for(seed);
        let sidecar = Sidecar::build(&rel, BLOCK);
        let compressed = btrblocks::compress(&rel, &cfg).expect("compress");
        let blocks = compressed.columns[0].blocks.len();

        for &(kind, column) in cases {
            let meta = sidecar.column(names[column]).expect("sidecar has column");
            let mut state = AggState::new(kind, types[column]).expect("valid aggregate");
            // Walk the ladder per block with a random entry rung: zones
            // first, then the compressed domain, then the decoded fold.
            // Whatever rung answers, the total must match the naive fold.
            for g in 0..blocks {
                let start = g * BLOCK;
                let n = (BLOCK.min(ROWS - start)) as u32;
                let bytes = &compressed.columns[column].blocks[g];
                let rung = rng.gen_range(0..3u32);
                let answered = (rung == 0 && state.fold_zone(&meta.zones[g], n))
                    || (rung <= 1
                        && state
                            .fold_compressed(bytes, types[column], &cfg)
                            .expect("compressed fold"));
                if !answered {
                    let decoded = decode(bytes, types[column], &cfg, &mut scratch);
                    state.fold_decoded(&decoded, None).expect("decoded fold");
                }
            }
            let want = naive_agg(kind, column, &data, &all_rows);
            assert!(
                agg_eq(&state.value(), &want),
                "seed {seed} {kind:?} on {}: got {:?}, want {want:?}",
                names[column],
                state.value()
            );

            // Selected-rows fold: a random selection over each block must
            // match the naive fold over the same global rows.
            let mut sel_state = AggState::new(kind, types[column]).expect("valid aggregate");
            let mut sel_rows = Vec::new();
            for g in 0..blocks {
                let start = g * BLOCK;
                let n = (BLOCK.min(ROWS - start)) as u32;
                let picked: Vec<u32> = (0..n).filter(|_| rng.gen_bool(0.4)).collect();
                sel_rows.extend(picked.iter().map(|&r| start + r as usize));
                let sel = Selection::from_sorted_indices(n, picked);
                let decoded = decode(
                    &compressed.columns[column].blocks[g],
                    types[column],
                    &cfg,
                    &mut scratch,
                );
                sel_state
                    .fold_decoded(&decoded, Some(&sel))
                    .expect("selected fold");
            }
            let want = naive_agg(kind, column, &data, &sel_rows);
            assert!(
                agg_eq(&sel_state.value(), &want),
                "seed {seed} {kind:?} on {} (selected): got {:?}, want {want:?}",
                names[column],
                sel_state.value()
            );
        }
    }
}
