//! Vectorized selection-vector kernels.
//!
//! Selections in dense form are `u64` bitmap words ([`crate::selection`]
//! obtains them via `btr_roaring::RoaringBitmap::write_dense_words`). These
//! kernels cover the three hot operations on that form:
//!
//! * [`and_words_into`] — bitmap intersection, 256 bits per AVX2 `vpand`.
//! * [`count_ones_words`] — density counting via the Muła nibble-lookup
//!   popcount (`vpshufb` + `vpsadbw`); the scalar twin is one `popcnt` per
//!   word.
//! * [`words_to_indices`] — bitmap → selection-index expansion. The AVX2
//!   variant's win is skipping all-zero 4-word groups with one `vptest`
//!   (selective predicates leave most of the bitmap empty); set bits are
//!   still extracted with the scalar bit trick, which is the fastest
//!   portable way without AVX-512 compress stores.
//!
//! Every kernel takes an explicit [`SimdMode`] so the oracle tests (and the
//! §6.8-style ablation) can force the scalar path; `Auto` dispatches on
//! runtime AVX2 detection shared with btrblocks.

use btrblocks::simd::use_avx2;
use btrblocks::SimdMode;

/// Writes `a & b` into `out` (cleared first), word by word. Inputs must have
/// equal length — the selection layer always compares bitmaps of the same
/// row-universe.
pub fn and_words_into(a: &[u64], b: &[u64], out: &mut Vec<u64>, mode: SimdMode) {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    out.clear();
    out.resize(n, 0);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: use_avx2 checked the CPU; the kernel reads/writes only
        // the first n elements of equal-or-longer slices.
        // lint: allow(indexing) n = min of all three lengths, slicing cannot panic
        unsafe { and_words_avx2(&a[..n], &b[..n], &mut out[..n]) };
        return;
    }
    let _ = mode;
    for ((slot, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *slot = x & y;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available; `a`, `b`, `out` must all
// hold at least `out.len()` words. Unaligned 32-byte loads/stores cover
// 4-word groups; the tail runs scalar.
unsafe fn and_words_avx2(a: &[u64], b: &[u64], out: &mut [u64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let mut i = 0usize;
    while i + 4 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, _mm256_and_si256(va, vb));
        i += 4;
    }
    while i < n {
        // lint: allow(indexing) i < n <= len of all three slices
        out[i] = a[i] & b[i];
        i += 1;
    }
}

/// Total number of set bits across `words`.
pub fn count_ones_words(words: &[u64], mode: SimdMode) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: use_avx2 checked the CPU; the kernel only reads `words`.
        return unsafe { count_ones_avx2(words) };
    }
    let _ = mode;
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available; the kernel only reads the
// slice. Muła popcount: split each byte
// into nibbles, look both up in a 16-entry bit-count table with vpshufb, sum
// byte counts into the four 64-bit lanes with vpsadbw. Loads are unaligned
// 32-byte reads of complete 4-word groups; the tail uses scalar popcnt.
unsafe fn count_ones_avx2(words: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // low lane
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // high lane
    );
    let low_mask = _mm256_set1_epi8(0x0F);
    let mut acc = _mm256_setzero_si256();
    let n = words.len();
    let mut i = 0usize;
    while i + 4 <= n {
        let v = _mm256_loadu_si256(words.as_ptr().add(i) as *const __m256i);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
        i += 4;
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut total = lanes.iter().sum::<u64>();
    while i < n {
        // lint: allow(indexing) i < n = words.len()
        total += u64::from(words[i].count_ones());
        i += 1;
    }
    total
}

/// Expands set bits of `words` into sorted row indices appended to `out`
/// (cleared first), dropping any index `>= limit` (slack bits past the row
/// count in the final word).
pub fn words_to_indices(words: &[u64], limit: u32, out: &mut Vec<u32>, mode: SimdMode) {
    out.clear();
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: use_avx2 checked the CPU; the kernel reads `words` and
        // appends to `out` through safe Vec methods.
        unsafe { words_to_indices_avx2(words, limit, out) };
        return;
    }
    let _ = mode;
    for (wi, &word) in words.iter().enumerate() {
        expand_word(wi, word, limit, out);
    }
}

/// Appends the set-bit indices of one word (scalar bit-clear loop).
#[inline]
fn expand_word(wi: usize, word: u64, limit: u32, out: &mut Vec<u32>) {
    let mut w = word;
    let base = (wi * 64) as u64;
    while w != 0 {
        let idx = base + u64::from(w.trailing_zeros());
        if idx >= u64::from(limit) {
            break; // bits ascend within the word; the rest are also past limit
        }
        out.push(idx as u32); // lint: allow(cast) idx < limit <= u32::MAX, guarded above
        w &= w - 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available. One unaligned 32-byte load
// + one vptest per complete 4-word group; non-zero groups and the tail defer
// to the safe scalar expansion.
unsafe fn words_to_indices_avx2(words: &[u64], limit: u32, out: &mut Vec<u32>) {
    use std::arch::x86_64::*;
    let n = words.len();
    let mut i = 0usize;
    while i + 4 <= n {
        let v = _mm256_loadu_si256(words.as_ptr().add(i) as *const __m256i);
        if _mm256_testz_si256(v, v) == 0 {
            for k in 0..4 {
                // lint: allow(indexing) i + k < i + 4 <= n
                expand_word(i + k, words[i + k], limit, out);
            }
        }
        i += 4;
    }
    while i < n {
        // lint: allow(indexing) i < n = words.len()
        expand_word(i, words[i], limit, out);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> [SimdMode; 2] {
        [SimdMode::Auto, SimdMode::ForceScalar]
    }

    fn rng_words(seed: u64, n: usize, density: u64) -> Vec<u64> {
        // xorshift64*; density selects all-zero words often to exercise the
        // vptest skip path.
        let mut s = seed;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let v = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
                if v % 10 < density {
                    v
                } else {
                    0
                }
            })
            .collect()
    }

    #[test]
    fn and_words_matches_scalar() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 100] {
            let a = rng_words(1, n, 8);
            let b = rng_words(2, n, 8);
            let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
            for mode in modes() {
                let mut out = vec![u64::MAX; 2]; // dirty out, wrong length
                and_words_into(&a, &b, &mut out, mode);
                assert_eq!(out, expect, "n {n} mode {mode:?}");
            }
        }
    }

    #[test]
    fn count_ones_matches_scalar() {
        for n in [0usize, 1, 3, 4, 7, 8, 33, 257] {
            for density in [0u64, 3, 10] {
                let words = rng_words(n as u64 + 7, n, density);
                let expect: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
                for mode in modes() {
                    assert_eq!(
                        count_ones_words(&words, mode),
                        expect,
                        "n {n} density {density} mode {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn count_ones_saturated_words() {
        // All-ones input stresses the vpsadbw accumulator (64 per word).
        let words = vec![u64::MAX; 100];
        for mode in modes() {
            assert_eq!(count_ones_words(&words, mode), 6400);
        }
    }

    #[test]
    fn indices_match_scalar_and_are_sorted() {
        for n in [0usize, 1, 4, 5, 16, 65] {
            for density in [0u64, 2, 10] {
                let words = rng_words(n as u64 * 31 + 1, n, density);
                let limit = (n * 64) as u32;
                let mut expect = Vec::new();
                for (wi, &w) in words.iter().enumerate() {
                    for b in 0..64 {
                        if w & (1 << b) != 0 {
                            expect.push((wi * 64 + b) as u32);
                        }
                    }
                }
                for mode in modes() {
                    let mut out = vec![9u32; 3]; // dirty out
                    words_to_indices(&words, limit, &mut out, mode);
                    assert_eq!(out, expect, "n {n} density {density} mode {mode:?}");
                }
            }
        }
    }

    #[test]
    fn indices_respect_limit() {
        // Slack bits past `limit` in the last word must be dropped.
        let words = vec![u64::MAX; 2];
        for mode in modes() {
            let mut out = Vec::new();
            words_to_indices(&words, 70, &mut out, mode);
            assert_eq!(out, (0..70).collect::<Vec<u32>>(), "mode {mode:?}");
        }
    }
}
