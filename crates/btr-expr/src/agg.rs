//! Aggregate pushdown: `COUNT` / `SUM` / `MIN` / `MAX` over one column.
//!
//! An [`AggState`] folds blocks in row order through a lattice of paths,
//! cheapest first. Each path reports whether it *answered* the block; the
//! caller falls through to the next:
//!
//! | path                  | `COUNT` | `MIN`/`MAX` int      | `MIN`/`MAX` double        | `SUM`                 |
//! |-----------------------|---------|----------------------|---------------------------|-----------------------|
//! | zone map              | always  | always               | only NaN-free zones       | never                 |
//! | compressed (OneValue) | always  | always               | always (NaN rows ignored) | always                |
//! | compressed (RLE)      | always  | always               | always (NaN rows ignored) | always                |
//! | decoded fold          | always  | always               | always (NaN rows ignored) | always                |
//!
//! String columns support `COUNT`/`MIN`/`MAX` via the decoded fold only
//! (dictionary order is not value order, so neither zones nor the
//! compressed domain can answer); `SUM` over strings is a compile-time
//! type error.
//!
//! Exactness contract (pinned by the aggregate oracle): every path is
//! value-identical to folding the fully decoded column row by row in
//! ascending order. Double sums therefore *add* — the OneValue/RLE paths
//! repeat the addition per row rather than multiplying, because repeated
//! IEEE 754 addition and multiplication round differently. Int sums fold
//! into `i64` with wrapping addition (and may use exact multiplication,
//! since integer arithmetic has no rounding). `MIN`/`MAX` over doubles
//! ignore NaN rows, matching the zone maps' NaN-free min/max semantics.

use crate::plan::ExprError;
use crate::selection::Selection;
use btrblocks::scheme::{self, SchemeCode};
use btrblocks::writer::Reader;
use btrblocks::{BlockZone, ColumnType, Config, DecodedColumn, Error};

/// Which aggregate to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Row count.
    Count,
    /// Sum (`i64` wrapping for ints, IEEE 754 for doubles).
    Sum,
    /// Minimum (NaN rows ignored; byte-wise for strings).
    Min,
    /// Maximum (NaN rows ignored; byte-wise for strings).
    Max,
}

/// An aggregate over a named column.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Which aggregate.
    pub kind: AggKind,
    /// Column name (resolved by the scan planner).
    pub column: String,
}

impl Aggregate {
    /// `kind(column)`.
    pub fn new(kind: AggKind, column: impl Into<String>) -> Aggregate {
        Aggregate {
            kind,
            column: column.into(),
        }
    }

    /// `COUNT(column)`.
    pub fn count(column: impl Into<String>) -> Aggregate {
        Aggregate::new(AggKind::Count, column)
    }

    /// `SUM(column)`.
    pub fn sum(column: impl Into<String>) -> Aggregate {
        Aggregate::new(AggKind::Sum, column)
    }

    /// `MIN(column)`.
    pub fn min(column: impl Into<String>) -> Aggregate {
        Aggregate::new(AggKind::Min, column)
    }

    /// `MAX(column)`.
    pub fn max(column: impl Into<String>) -> Aggregate {
        Aggregate::new(AggKind::Max, column)
    }
}

/// A finished aggregate value. `None` inside `Min`/`Max` means no
/// contributing rows (empty scan, or all rows NaN).
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// Row count.
    Count(u64),
    /// Integer sum (wrapping `i64`).
    SumInt(i64),
    /// Double sum (IEEE 754, ascending row order).
    SumDouble(f64),
    /// Integer minimum.
    MinInt(Option<i32>),
    /// Integer maximum.
    MaxInt(Option<i32>),
    /// Double minimum over non-NaN rows.
    MinDouble(Option<f64>),
    /// Double maximum over non-NaN rows.
    MaxDouble(Option<f64>),
    /// Byte-wise string minimum.
    MinStr(Option<Vec<u8>>),
    /// Byte-wise string maximum.
    MaxStr(Option<Vec<u8>>),
}

#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    SumInt(i64),
    SumDouble(f64),
    MinInt(Option<i32>),
    MaxInt(Option<i32>),
    MinDouble(Option<f64>),
    MaxDouble(Option<f64>),
    MinStr(Option<Vec<u8>>),
    MaxStr(Option<Vec<u8>>),
}

/// A running aggregate accumulator for one `(kind, column type)` pair.
#[derive(Debug, Clone)]
pub struct AggState {
    acc: Acc,
}

impl AggState {
    /// Creates the accumulator; `SUM` over strings is a type error.
    pub fn new(kind: AggKind, ty: ColumnType) -> Result<AggState, ExprError> {
        let acc = match (kind, ty) {
            (AggKind::Count, _) => Acc::Count(0),
            (AggKind::Sum, ColumnType::Integer) => Acc::SumInt(0),
            (AggKind::Sum, ColumnType::Double) => Acc::SumDouble(0.0),
            (AggKind::Sum, ColumnType::String) => {
                return Err(ExprError::TypeMismatch("SUM over a string column"))
            }
            (AggKind::Min, ColumnType::Integer) => Acc::MinInt(None),
            (AggKind::Max, ColumnType::Integer) => Acc::MaxInt(None),
            (AggKind::Min, ColumnType::Double) => Acc::MinDouble(None),
            (AggKind::Max, ColumnType::Double) => Acc::MaxDouble(None),
            (AggKind::Min, ColumnType::String) => Acc::MinStr(None),
            (AggKind::Max, ColumnType::String) => Acc::MaxStr(None),
        };
        Ok(AggState { acc })
    }

    /// Tries to fold a whole `rows`-row block from its zone map alone.
    /// Returns whether the block was answered (`false` ⇒ try the compressed
    /// domain or decode).
    pub fn fold_zone(&mut self, zone: &BlockZone, rows: u32) -> bool {
        if rows == 0 {
            // An empty block contributes nothing, whatever its zone says.
            return true;
        }
        match (&mut self.acc, zone) {
            (Acc::Count(c), _) => {
                *c += u64::from(rows);
                true
            }
            (Acc::MinInt(m), BlockZone::Int { min, .. }) => {
                fold_min(m, *min);
                true
            }
            (Acc::MaxInt(m), BlockZone::Int { max, .. }) => {
                fold_max(m, *max);
                true
            }
            // A NaN-bearing double zone collapses degenerate cases (e.g. an
            // all-NaN block reports min = max = 0.0); only NaN-free zones
            // carry trustworthy extrema.
            (Acc::MinDouble(m), BlockZone::Double { min, has_nan, .. }) if !has_nan => {
                fold_min(m, *min);
                true
            }
            (Acc::MaxDouble(m), BlockZone::Double { max, has_nan, .. }) if !has_nan => {
                fold_max(m, *max);
                true
            }
            // Sums need every value; string zones carry no order stats.
            _ => false,
        }
    }

    /// Tries to fold a whole block in the compressed domain (OneValue and
    /// RLE frames). Returns `Ok(false)` when the scheme doesn't support it
    /// (⇒ decode and use [`AggState::fold_decoded`]); corrupt frames are
    /// typed errors.
    pub fn fold_compressed(
        &mut self,
        bytes: &[u8],
        ty: ColumnType,
        cfg: &Config,
    ) -> btrblocks::Result<bool> {
        let mut r = Reader::new(bytes);
        let code = SchemeCode::from_u8(r.u8()?)?;
        let count = r.u32()? as usize;
        if let Acc::Count(c) = &mut self.acc {
            // The row count sits in every frame header.
            *c += count as u64;
            return Ok(true);
        }
        if count == 0 {
            return Ok(true);
        }
        match (code, ty) {
            (SchemeCode::OneValue, ColumnType::Integer) => {
                let v = r.i32()?;
                self.fold_int_run(v, count);
                Ok(true)
            }
            (SchemeCode::OneValue, ColumnType::Double) => {
                let v = r.f64()?;
                self.fold_double_run(v, count);
                Ok(true)
            }
            (SchemeCode::Rle, ColumnType::Integer) => {
                let _run_count = r.u32()?;
                let values = scheme::decompress_int(&mut r, cfg)?;
                let lengths = scheme::decompress_int(&mut r, cfg)?;
                for (&v, &l) in values.iter().zip(&lengths) {
                    let len = usize::try_from(l)
                        .map_err(|_| Error::Corrupt("negative RLE run length"))?;
                    self.fold_int_run(v, len);
                }
                Ok(true)
            }
            (SchemeCode::Rle, ColumnType::Double) => {
                let _run_count = r.u32()?;
                let values = scheme::decompress_double(&mut r, cfg)?;
                let lengths = scheme::decompress_int(&mut r, cfg)?;
                for (&v, &l) in values.iter().zip(&lengths) {
                    let len = usize::try_from(l)
                        .map_err(|_| Error::Corrupt("negative RLE run length"))?;
                    self.fold_double_run(v, len);
                }
                Ok(true)
            }
            // Strings and every other scheme: decode.
            _ => Ok(false),
        }
    }

    fn fold_int_run(&mut self, v: i32, len: usize) {
        if len == 0 {
            return;
        }
        match &mut self.acc {
            Acc::SumInt(s) => {
                // Integer arithmetic is exact: a run folds as one wrapping
                // multiply-add, identical to `len` repeated additions.
                let run = i64::from(v).wrapping_mul(len as i64);
                *s = s.wrapping_add(run);
            }
            Acc::MinInt(m) => fold_min(m, v),
            Acc::MaxInt(m) => fold_max(m, v),
            _ => {}
        }
    }

    fn fold_double_run(&mut self, v: f64, len: usize) {
        if len == 0 {
            return;
        }
        match &mut self.acc {
            Acc::SumDouble(s) => {
                // NOT `v * len`: IEEE 754 addition and multiplication round
                // differently, and the contract is bitwise identity with the
                // decoded ascending-order fold.
                for _ in 0..len {
                    *s += v;
                }
            }
            Acc::MinDouble(m) if !v.is_nan() => fold_min(m, v),
            Acc::MaxDouble(m) if !v.is_nan() => fold_max(m, v),
            _ => {}
        }
    }

    /// Folds a decoded block, restricted to `sel` when given (the residual
    /// selection after filter evaluation). Rows fold in ascending order.
    pub fn fold_decoded(
        &mut self,
        col: &DecodedColumn,
        sel: Option<&Selection>,
    ) -> Result<(), ExprError> {
        // lint: allow(cast) block row counts fit u32 by the format contract
        let len = col.len() as u32;
        if let Some(s) = sel {
            for r in s.iter() {
                self.fold_row(col, r, len)?;
            }
        } else {
            for r in 0..len {
                self.fold_row(col, r, len)?;
            }
        }
        Ok(())
    }

    fn fold_row(&mut self, col: &DecodedColumn, r: u32, len: u32) -> Result<(), ExprError> {
        if r >= len {
            return Err(ExprError::RowOutOfRange);
        }
        match (&mut self.acc, col) {
            (Acc::Count(c), _) => *c += 1,
            (Acc::SumInt(s), DecodedColumn::Int(v)) => {
                let x = v.get(r as usize).copied().ok_or(ExprError::RowOutOfRange)?;
                *s = s.wrapping_add(i64::from(x));
            }
            (Acc::MinInt(m), DecodedColumn::Int(v)) => {
                let x = v.get(r as usize).copied().ok_or(ExprError::RowOutOfRange)?;
                fold_min(m, x);
            }
            (Acc::MaxInt(m), DecodedColumn::Int(v)) => {
                let x = v.get(r as usize).copied().ok_or(ExprError::RowOutOfRange)?;
                fold_max(m, x);
            }
            (Acc::SumDouble(s), DecodedColumn::Double(v)) => {
                let x = v.get(r as usize).copied().ok_or(ExprError::RowOutOfRange)?;
                *s += x;
            }
            (Acc::MinDouble(m), DecodedColumn::Double(v)) => {
                let x = v.get(r as usize).copied().ok_or(ExprError::RowOutOfRange)?;
                if !x.is_nan() {
                    fold_min(m, x);
                }
            }
            (Acc::MaxDouble(m), DecodedColumn::Double(v)) => {
                let x = v.get(r as usize).copied().ok_or(ExprError::RowOutOfRange)?;
                if !x.is_nan() {
                    fold_max(m, x);
                }
            }
            (Acc::MinStr(m), DecodedColumn::Str(views)) => {
                let x = views.get(r as usize);
                if m.as_deref().is_none_or(|cur| x < cur) {
                    *m = Some(x.to_vec());
                }
            }
            (Acc::MaxStr(m), DecodedColumn::Str(views)) => {
                let x = views.get(r as usize);
                if m.as_deref().is_none_or(|cur| x > cur) {
                    *m = Some(x.to_vec());
                }
            }
            _ => return Err(ExprError::TypeMismatch("aggregate/column type mismatch")),
        }
        Ok(())
    }

    /// The finished value.
    pub fn value(&self) -> AggValue {
        match &self.acc {
            Acc::Count(c) => AggValue::Count(*c),
            Acc::SumInt(s) => AggValue::SumInt(*s),
            Acc::SumDouble(s) => AggValue::SumDouble(*s),
            Acc::MinInt(m) => AggValue::MinInt(*m),
            Acc::MaxInt(m) => AggValue::MaxInt(*m),
            Acc::MinDouble(m) => AggValue::MinDouble(*m),
            Acc::MaxDouble(m) => AggValue::MaxDouble(*m),
            Acc::MinStr(m) => AggValue::MinStr(m.clone()),
            Acc::MaxStr(m) => AggValue::MaxStr(m.clone()),
        }
    }
}

fn fold_min<T: PartialOrd + Copy>(m: &mut Option<T>, v: T) {
    if m.is_none_or(|cur| v < cur) {
        *m = Some(v);
    }
}

fn fold_max<T: PartialOrd + Copy>(m: &mut Option<T>, v: T) {
    if m.is_none_or(|cur| v > cur) {
        *m = Some(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrblocks::block::compress_block_with;
    use btrblocks::{BlockRef, SchemeCode};

    #[test]
    fn zone_path_answers_minmax_and_count() {
        let zone = BlockZone::Int { min: -2, max: 9 };
        let mut min = AggState::new(AggKind::Min, ColumnType::Integer).unwrap();
        let mut max = AggState::new(AggKind::Max, ColumnType::Integer).unwrap();
        let mut count = AggState::new(AggKind::Count, ColumnType::Integer).unwrap();
        let mut sum = AggState::new(AggKind::Sum, ColumnType::Integer).unwrap();
        assert!(min.fold_zone(&zone, 4));
        assert!(max.fold_zone(&zone, 4));
        assert!(count.fold_zone(&zone, 4));
        assert!(!sum.fold_zone(&zone, 4), "sums need every value");
        assert_eq!(min.value(), AggValue::MinInt(Some(-2)));
        assert_eq!(max.value(), AggValue::MaxInt(Some(9)));
        assert_eq!(count.value(), AggValue::Count(4));
    }

    #[test]
    fn nan_zones_decline_minmax() {
        let values = vec![1.0, f64::NAN, 3.0];
        let zone = BlockZone::Double {
            min: 1.0,
            max: 3.0,
            has_nan: true,
        };
        let mut min = AggState::new(AggKind::Min, ColumnType::Double).unwrap();
        assert!(!min.fold_zone(&zone, 3), "NaN-bearing zone must decode");
        // The decoded fold ignores the NaN row.
        min.fold_decoded(&DecodedColumn::Double(values), None).unwrap();
        assert_eq!(min.value(), AggValue::MinDouble(Some(1.0)));
    }

    #[test]
    fn compressed_domain_matches_decoded_reference() {
        let cfg = Config::default();
        // A double whose repeated addition differs from multiplication, so
        // the exactness contract is actually exercised.
        let v = 0.1f64;
        let count = 1_000usize;
        let bytes = {
            let values = vec![v; count];
            compress_block_with(SchemeCode::OneValue, BlockRef::Double(&values), &cfg)
        };
        let mut sum = AggState::new(AggKind::Sum, ColumnType::Double).unwrap();
        assert!(sum.fold_compressed(&bytes, ColumnType::Double, &cfg).unwrap());
        let mut reference = 0.0f64;
        for _ in 0..count {
            reference += v;
        }
        assert_eq!(sum.value(), AggValue::SumDouble(reference));
        assert_ne!(reference, v * count as f64, "test must discriminate");

        // RLE ints: exact multiply-add per run.
        let values: Vec<i32> = (0..2_000).map(|i| (i / 250) * 10).collect();
        let bytes = compress_block_with(SchemeCode::Rle, BlockRef::Int(&values), &cfg);
        let mut sum = AggState::new(AggKind::Sum, ColumnType::Integer).unwrap();
        assert!(sum.fold_compressed(&bytes, ColumnType::Integer, &cfg).unwrap());
        let expected: i64 = values.iter().map(|&x| i64::from(x)).sum();
        assert_eq!(sum.value(), AggValue::SumInt(expected));

        // Bit-packed blocks have no compressed-domain path.
        let bytes = compress_block_with(SchemeCode::FastBp128, BlockRef::Int(&values), &cfg);
        let mut sum = AggState::new(AggKind::Sum, ColumnType::Integer).unwrap();
        assert!(!sum.fold_compressed(&bytes, ColumnType::Integer, &cfg).unwrap());
    }

    #[test]
    fn selected_fold_and_strings() {
        let arena = btrblocks::StringArena::from_strs(&["pear", "apple", "quince", "fig"]);
        let col = DecodedColumn::Str(btrblocks::StringViews::from_arena(&arena));
        let mut min = AggState::new(AggKind::Min, ColumnType::String).unwrap();
        let mut max = AggState::new(AggKind::Max, ColumnType::String).unwrap();
        let sel = Selection::from_sorted_indices(4, vec![0, 2, 3]);
        min.fold_decoded(&col, Some(&sel)).unwrap();
        max.fold_decoded(&col, Some(&sel)).unwrap();
        assert_eq!(min.value(), AggValue::MinStr(Some(b"fig".to_vec())));
        assert_eq!(max.value(), AggValue::MaxStr(Some(b"quince".to_vec())));

        assert!(AggState::new(AggKind::Sum, ColumnType::String).is_err());

        // Empty selection leaves the accumulator untouched.
        let mut min = AggState::new(AggKind::Min, ColumnType::Integer).unwrap();
        min.fold_decoded(&DecodedColumn::Int(vec![1, 2]), Some(&Selection::none(2)))
            .unwrap();
        assert_eq!(min.value(), AggValue::MinInt(None));
    }
}
