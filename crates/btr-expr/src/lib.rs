//! Vectorized expression engine over compressed BtrBlocks columns.
//!
//! The paper's premise is that decompression runs at wire speed — which makes
//! the *query* layer the next bottleneck. This crate grows the original
//! single-predicate pushdown into a small vectorized engine, following the
//! composable-columnar-operator model ("A computational model for analytic
//! column stores"): selection vectors are the carrier between operators, and
//! every operator is free to exploit the compressed representation when the
//! scheme supports it.
//!
//! The pieces, bottom-up:
//!
//! * [`Selection`] — the selection vector: dense-range / bitmap / index-list
//!   representations with crossover heuristics, so sparse selections stay
//!   cheap to intersect and dense selections stay cheap to scan.
//! * [`Expr`] — a typed expression tree (`Col`, `Lit`, comparisons, boolean
//!   connectives, `Add`/`Sub`/`Mul` on numerics) with a builder API.
//! * [`ExprPlan`] — the compiled per-row-group evaluation plan: the tree is
//!   bound against a schema, split into top-level conjuncts, and each
//!   conjunct classified as a *leaf* (single `column op literal`, eligible
//!   for zone pruning and compressed-domain evaluation) or *general*
//!   (vectorized row-wise kernel over the candidate selection).
//! * [`filter_leaf`] — the one fast-path ladder shared by every caller:
//!   decoded input runs `filter_decoded`, compressed input runs
//!   `filter_block` when `has_fast_path` says the scheme supports it, and
//!   everything else reports [`LeafVerdict::NeedsDecode`].
//! * [`AggState`] — aggregate pushdown: `COUNT`/`MIN`/`MAX` answered from
//!   zone maps, `SUM` from one-value/RLE compressed domains, everything
//!   falling back to a vectorized fold over selected rows.
//!
//! Evaluation semantics are pinned by the oracle tests: `i32` arithmetic
//! wraps, doubles are IEEE 754 (NaN never satisfies any comparison), boolean
//! logic is two-valued, and every pushdown path must be row- and
//! value-identical to naive decode-then-evaluate.

pub mod agg;
pub mod eval;
pub mod expr;
pub mod plan;
pub mod selection;
pub mod simd;

pub use agg::{AggKind, AggState, AggValue, Aggregate};
pub use eval::{eval_predicate, filter_leaf, ColumnAccess, LeafInput, LeafVerdict};
pub use expr::{col, lit, Expr};
pub use plan::{
    ArithOp, BoundExpr, Conjunct, ConjunctKind, ExprError, ExprPlan, ValueType, ZoneVerdict,
};
pub use selection::{Selection, SelectionRepr};

// Re-export the predicate vocabulary so downstream crates can depend on
// btr-expr alone for expression building.
pub use btrblocks::{CmpOp, Literal};
