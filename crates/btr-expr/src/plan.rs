//! Compiling an [`Expr`] into a per-row-group evaluation plan.
//!
//! Compilation does three things:
//!
//! 1. **Bind** — column names resolve to `(index, ColumnType)` against the
//!    caller's schema, and the tree is type-checked (comparisons need equal
//!    operand types, arithmetic needs numerics, connectives need booleans,
//!    the root must be boolean).
//! 2. **Split** — the bound tree is split on top-level `AND` into
//!    *conjuncts*. Each conjunct is classified: a [`ConjunctKind::Leaf`]
//!    (`column op literal`, in either operand order) is eligible for
//!    zone-map pruning and compressed-domain evaluation; everything else is
//!    [`ConjunctKind::General`] and runs the vectorized row-wise kernel.
//! 3. **Prune** — per block, [`Conjunct::zone_verdict`] consults the zone
//!    map: `AlwaysFalse` short-circuits the whole block (it is never
//!    fetched), `AlwaysTrue` drops the conjunct from that block's residual
//!    work, `Unknown` means evaluate. NaN and empty-domain blocks are
//!    handled conservatively: a NaN literal matches nothing, a NaN-bearing
//!    double zone can veto `AlwaysFalse` claims but never supports
//!    `AlwaysTrue`, and string zones carry no order statistics so string
//!    conjuncts never prune.

use crate::expr::Expr;
use btrblocks::{BlockZone, CmpOp, ColumnType, Literal};
use std::fmt;

/// The value type an expression node produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// 32-bit integer.
    Int,
    /// 64-bit double.
    Double,
    /// Byte string.
    Str,
    /// Boolean (comparisons and connectives).
    Bool,
}

impl ValueType {
    /// The value type of a column of `ty`.
    pub fn of(ty: ColumnType) -> ValueType {
        match ty {
            ColumnType::Integer => ValueType::Int,
            ColumnType::Double => ValueType::Double,
            ColumnType::String => ValueType::Str,
        }
    }
}

/// Typed errors from expression compilation and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// Operand types don't line up (context says where).
    TypeMismatch(&'static str),
    /// The root of a filter expression must be boolean.
    NotBoolean,
    /// A column needed by evaluation was not provided.
    ColumnNotDecoded(usize),
    /// A selected row index exceeds the decoded block's length — the plan
    /// and the block disagree about the row count.
    RowOutOfRange,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            ExprError::TypeMismatch(ctx) => write!(f, "type mismatch: {ctx}"),
            ExprError::NotBoolean => write!(f, "filter expression must be boolean"),
            ExprError::ColumnNotDecoded(idx) => {
                write!(f, "column {idx} not available to the evaluator")
            }
            ExprError::RowOutOfRange => write!(f, "selected row exceeds block length"),
        }
    }
}

impl std::error::Error for ExprError {}

/// Arithmetic operator of a bound numeric node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition (`i32` wrapping).
    Add,
    /// Subtraction (`i32` wrapping).
    Sub,
    /// Multiplication (`i32` wrapping).
    Mul,
}

/// An [`Expr`] with columns resolved to indices and types checked.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// A resolved column reference.
    Col {
        /// Source column index.
        index: usize,
        /// The column's type.
        ty: ColumnType,
    },
    /// A literal value.
    Lit(Literal),
    /// A comparison (both operands share a value type).
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<BoundExpr>,
        /// Right operand.
        rhs: Box<BoundExpr>,
    },
    /// Logical conjunction.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical disjunction.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical negation.
    Not(Box<BoundExpr>),
    /// Numeric arithmetic.
    Arith {
        /// The arithmetic operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<BoundExpr>,
        /// Right operand.
        rhs: Box<BoundExpr>,
    },
}

impl BoundExpr {
    /// The value type this node produces (well-defined after binding).
    pub fn value_type(&self) -> ValueType {
        match self {
            BoundExpr::Col { ty, .. } => ValueType::of(*ty),
            BoundExpr::Lit(Literal::Int(_)) => ValueType::Int,
            BoundExpr::Lit(Literal::Double(_)) => ValueType::Double,
            BoundExpr::Lit(Literal::Str(_)) => ValueType::Str,
            BoundExpr::Cmp { .. } | BoundExpr::And(..) | BoundExpr::Or(..) | BoundExpr::Not(_) => {
                ValueType::Bool
            }
            BoundExpr::Arith { lhs, .. } => lhs.value_type(),
        }
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Col { index, .. } => out.push(*index),
            BoundExpr::Lit(_) => {}
            BoundExpr::Cmp { lhs, rhs, .. } | BoundExpr::Arith { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            BoundExpr::Not(a) => a.collect_columns(out),
        }
    }
}

/// What one conjunct is, structurally.
#[derive(Debug, Clone, PartialEq)]
pub enum ConjunctKind {
    /// `column op literal` — eligible for zone pruning and compressed-domain
    /// evaluation through the per-scheme fast paths.
    Leaf {
        /// Source column index.
        column: usize,
        /// The column's type.
        ty: ColumnType,
        /// The comparison operator (normalized to column-on-the-left).
        op: CmpOp,
        /// The literal operand.
        literal: Literal,
    },
    /// Anything else: runs the vectorized row-wise kernel over the candidate
    /// selection.
    General(BoundExpr),
}

/// One top-level `AND` factor of the compiled filter.
#[derive(Debug, Clone, PartialEq)]
pub struct Conjunct {
    /// Structure of this conjunct.
    pub kind: ConjunctKind,
    /// Source columns this conjunct reads (sorted, deduplicated).
    pub columns: Vec<usize>,
}

/// Whether a zone map decides a conjunct for a whole block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneVerdict {
    /// No row of the block can satisfy the conjunct — skip the block.
    AlwaysFalse,
    /// Every row of the block satisfies the conjunct — drop the conjunct
    /// from this block's residual work.
    AlwaysTrue,
    /// The zone map cannot decide; evaluate the conjunct.
    Unknown,
}

impl Conjunct {
    /// Consults a zone map for this conjunct over a `rows`-row block.
    ///
    /// Conservative by construction: `AlwaysFalse` is exactly
    /// `!BlockZone::may_match` (NaN literals match nothing; string zones and
    /// general conjuncts never prune), and `AlwaysTrue` additionally
    /// requires a double zone to be NaN-free — a NaN row fails every
    /// comparison, so a NaN-bearing block is never fully selected by a
    /// comparison conjunct.
    pub fn zone_verdict(&self, zone: &BlockZone) -> ZoneVerdict {
        let ConjunctKind::Leaf { op, literal, .. } = &self.kind else {
            return ZoneVerdict::Unknown;
        };
        if !zone.may_match(*op, literal) {
            return ZoneVerdict::AlwaysFalse;
        }
        let always = match (zone, literal) {
            (BlockZone::Int { min, max }, Literal::Int(l)) => range_always(min, max, *op, l),
            (BlockZone::Double { min, max, has_nan }, Literal::Double(l)) => {
                !has_nan && !l.is_nan() && range_always(min, max, *op, l)
            }
            // String zones carry no order statistics; type mismatches were
            // already conservative in may_match.
            _ => false,
        };
        if always {
            ZoneVerdict::AlwaysTrue
        } else {
            ZoneVerdict::Unknown
        }
    }
}

/// Whether `v op lit` holds for *every* v in `[min, max]`.
fn range_always<T: PartialOrd>(min: &T, max: &T, op: CmpOp, lit: &T) -> bool {
    match op {
        CmpOp::Eq => min == lit && max == lit,
        CmpOp::Lt => max < lit,
        CmpOp::Le => max <= lit,
        CmpOp::Gt => min > lit,
        CmpOp::Ge => min >= lit,
    }
}

/// A compiled filter: bound, type-checked, split into conjuncts.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprPlan {
    /// Top-level `AND` factors, in evaluation order.
    pub conjuncts: Vec<Conjunct>,
    /// Every source column the filter reads (sorted, deduplicated).
    pub columns: Vec<usize>,
}

impl ExprPlan {
    /// Compiles `expr` against a schema. `resolve` maps a column name to its
    /// `(source index, type)`; returning `None` yields
    /// [`ExprError::UnknownColumn`].
    pub fn compile<F>(expr: &Expr, mut resolve: F) -> Result<ExprPlan, ExprError>
    where
        F: FnMut(&str) -> Option<(usize, ColumnType)>,
    {
        let bound = bind(expr, &mut resolve)?;
        if bound.value_type() != ValueType::Bool {
            return Err(ExprError::NotBoolean);
        }
        let mut factors = Vec::new();
        split_and(bound, &mut factors);
        let conjuncts: Vec<Conjunct> = factors.into_iter().map(classify).collect();
        let mut columns: Vec<usize> = conjuncts.iter().flat_map(|c| c.columns.clone()).collect();
        columns.sort_unstable();
        columns.dedup();
        Ok(ExprPlan { conjuncts, columns })
    }

    /// If the whole plan is a single leaf conjunct, its
    /// `(column, op, literal)` — the shape the original single-predicate
    /// pushdown handled.
    pub fn single_leaf(&self) -> Option<(usize, CmpOp, &Literal)> {
        match self.conjuncts.as_slice() {
            [Conjunct {
                kind: ConjunctKind::Leaf {
                    column, op, literal, ..
                },
                ..
            }] => Some((*column, *op, literal)),
            _ => None,
        }
    }
}

fn bind<F>(expr: &Expr, resolve: &mut F) -> Result<BoundExpr, ExprError>
where
    F: FnMut(&str) -> Option<(usize, ColumnType)>,
{
    match expr {
        Expr::Col(name) => {
            let (index, ty) =
                resolve(name).ok_or_else(|| ExprError::UnknownColumn(name.clone()))?;
            Ok(BoundExpr::Col { index, ty })
        }
        Expr::Lit(l) => Ok(BoundExpr::Lit(l.clone())),
        Expr::Cmp(op, a, b) => {
            let lhs = bind(a, resolve)?;
            let rhs = bind(b, resolve)?;
            let (lt, rt) = (lhs.value_type(), rhs.value_type());
            if lt != rt || lt == ValueType::Bool {
                return Err(ExprError::TypeMismatch(
                    "comparison operands must share an int/double/string type",
                ));
            }
            Ok(BoundExpr::Cmp {
                op: *op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        }
        Expr::And(a, b) => bind_bool2(a, b, resolve, BoundExpr::And),
        Expr::Or(a, b) => bind_bool2(a, b, resolve, BoundExpr::Or),
        Expr::Not(a) => {
            let inner = bind(a, resolve)?;
            if inner.value_type() != ValueType::Bool {
                return Err(ExprError::TypeMismatch("NOT needs a boolean operand"));
            }
            Ok(BoundExpr::Not(Box::new(inner)))
        }
        Expr::Add(a, b) => bind_arith(ArithOp::Add, a, b, resolve),
        Expr::Sub(a, b) => bind_arith(ArithOp::Sub, a, b, resolve),
        Expr::Mul(a, b) => bind_arith(ArithOp::Mul, a, b, resolve),
    }
}

fn bind_bool2<F>(
    a: &Expr,
    b: &Expr,
    resolve: &mut F,
    make: fn(Box<BoundExpr>, Box<BoundExpr>) -> BoundExpr,
) -> Result<BoundExpr, ExprError>
where
    F: FnMut(&str) -> Option<(usize, ColumnType)>,
{
    let lhs = bind(a, resolve)?;
    let rhs = bind(b, resolve)?;
    if lhs.value_type() != ValueType::Bool || rhs.value_type() != ValueType::Bool {
        return Err(ExprError::TypeMismatch("AND/OR need boolean operands"));
    }
    Ok(make(Box::new(lhs), Box::new(rhs)))
}

fn bind_arith<F>(op: ArithOp, a: &Expr, b: &Expr, resolve: &mut F) -> Result<BoundExpr, ExprError>
where
    F: FnMut(&str) -> Option<(usize, ColumnType)>,
{
    let lhs = bind(a, resolve)?;
    let rhs = bind(b, resolve)?;
    let (lt, rt) = (lhs.value_type(), rhs.value_type());
    if lt != rt || !matches!(lt, ValueType::Int | ValueType::Double) {
        return Err(ExprError::TypeMismatch(
            "arithmetic needs matching numeric operands",
        ));
    }
    Ok(BoundExpr::Arith {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    })
}

fn split_and(expr: BoundExpr, out: &mut Vec<BoundExpr>) {
    match expr {
        BoundExpr::And(a, b) => {
            split_and(*a, out);
            split_and(*b, out);
        }
        other => out.push(other),
    }
}

fn classify(bound: BoundExpr) -> Conjunct {
    let mut columns = Vec::new();
    bound.collect_columns(&mut columns);
    columns.sort_unstable();
    columns.dedup();
    // Leaf shapes: `col op lit` and `lit op col` (normalized by flipping).
    if let BoundExpr::Cmp { op, lhs, rhs } = &bound {
        match (lhs.as_ref(), rhs.as_ref()) {
            (BoundExpr::Col { index, ty }, BoundExpr::Lit(l)) => {
                return Conjunct {
                    kind: ConjunctKind::Leaf {
                        column: *index,
                        ty: *ty,
                        op: *op,
                        literal: l.clone(),
                    },
                    columns,
                };
            }
            (BoundExpr::Lit(l), BoundExpr::Col { index, ty }) => {
                return Conjunct {
                    kind: ConjunctKind::Leaf {
                        column: *index,
                        ty: *ty,
                        op: op.flip(),
                        literal: l.clone(),
                    },
                    columns,
                };
            }
            _ => {}
        }
    }
    Conjunct {
        kind: ConjunctKind::General(bound),
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn schema(name: &str) -> Option<(usize, ColumnType)> {
        match name {
            "id" => Some((0, ColumnType::Integer)),
            "val" => Some((1, ColumnType::Double)),
            "tag" => Some((2, ColumnType::String)),
            _ => None,
        }
    }

    #[test]
    fn compile_splits_conjuncts_and_classifies_leaves() {
        let e = col("id")
            .lt(lit(10))
            .and(lit(0.5).le(col("val")))
            .and(col("id").add(lit(1)).gt(lit(0)));
        let plan = ExprPlan::compile(&e, schema).unwrap();
        assert_eq!(plan.conjuncts.len(), 3);
        assert_eq!(plan.columns, vec![0, 1]);
        assert!(matches!(
            &plan.conjuncts[0].kind,
            ConjunctKind::Leaf { column: 0, op: CmpOp::Lt, .. }
        ));
        // `lit <= col` normalizes to `col >= lit`.
        assert!(matches!(
            &plan.conjuncts[1].kind,
            ConjunctKind::Leaf { column: 1, op: CmpOp::Ge, .. }
        ));
        assert!(matches!(&plan.conjuncts[2].kind, ConjunctKind::General(_)));
        assert!(plan.single_leaf().is_none());
    }

    #[test]
    fn single_leaf_matches_legacy_predicate_shape() {
        let plan = ExprPlan::compile(&col("tag").eq(lit("x")), schema).unwrap();
        let (column, op, literal) = plan.single_leaf().unwrap();
        assert_eq!((column, op), (2, CmpOp::Eq));
        assert_eq!(literal, &Literal::from("x"));
    }

    #[test]
    fn type_errors_are_typed() {
        assert_eq!(
            ExprPlan::compile(&col("nope").eq(lit(1)), schema),
            Err(ExprError::UnknownColumn("nope".into()))
        );
        assert!(matches!(
            ExprPlan::compile(&col("id").eq(lit(1.0)), schema),
            Err(ExprError::TypeMismatch(_))
        ));
        assert!(matches!(
            ExprPlan::compile(&col("tag").add(lit(1)), schema),
            Err(ExprError::TypeMismatch(_))
        ));
        assert_eq!(
            ExprPlan::compile(&col("id").add(lit(1)), schema),
            Err(ExprError::NotBoolean)
        );
        assert!(matches!(
            ExprPlan::compile(&col("id").eq(lit(1)).and(col("val")), schema),
            Err(ExprError::TypeMismatch(_))
        ));
    }

    fn leaf(op: CmpOp, literal: Literal) -> Conjunct {
        let ty = literal.column_type();
        Conjunct {
            kind: ConjunctKind::Leaf {
                column: 0,
                ty,
                op,
                literal,
            },
            columns: vec![0],
        }
    }

    #[test]
    fn zone_verdicts_int() {
        let zone = BlockZone::Int { min: 10, max: 20 };
        assert_eq!(
            leaf(CmpOp::Lt, Literal::Int(10)).zone_verdict(&zone),
            ZoneVerdict::AlwaysFalse
        );
        assert_eq!(
            leaf(CmpOp::Lt, Literal::Int(21)).zone_verdict(&zone),
            ZoneVerdict::AlwaysTrue
        );
        assert_eq!(
            leaf(CmpOp::Lt, Literal::Int(15)).zone_verdict(&zone),
            ZoneVerdict::Unknown
        );
        assert_eq!(
            leaf(CmpOp::Ge, Literal::Int(10)).zone_verdict(&zone),
            ZoneVerdict::AlwaysTrue
        );
        let one = BlockZone::Int { min: 7, max: 7 };
        assert_eq!(
            leaf(CmpOp::Eq, Literal::Int(7)).zone_verdict(&one),
            ZoneVerdict::AlwaysTrue
        );
        assert_eq!(
            leaf(CmpOp::Eq, Literal::Int(8)).zone_verdict(&one),
            ZoneVerdict::AlwaysFalse
        );
    }

    #[test]
    fn zone_nan_literal_prunes_everything() {
        // NaN satisfies no comparison: a NaN literal makes every conjunct
        // always-false, never always-true.
        let zone = BlockZone::Double {
            min: 0.0,
            max: 1.0,
            has_nan: false,
        };
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(
                leaf(op, Literal::Double(f64::NAN)).zone_verdict(&zone),
                ZoneVerdict::AlwaysFalse,
                "op {op:?}"
            );
        }
    }

    #[test]
    fn zone_nan_rows_veto_always_true() {
        // A NaN-bearing block can still prune (no non-NaN row in range ⇒
        // nothing matches), but can never be fully selected: the NaN rows
        // fail every comparison.
        let nan_zone = BlockZone::Double {
            min: 1.0,
            max: 2.0,
            has_nan: true,
        };
        assert_eq!(
            leaf(CmpOp::Le, Literal::Double(5.0)).zone_verdict(&nan_zone),
            ZoneVerdict::Unknown
        );
        assert_eq!(
            leaf(CmpOp::Gt, Literal::Double(5.0)).zone_verdict(&nan_zone),
            ZoneVerdict::AlwaysFalse
        );
        let clean = BlockZone::Double {
            min: 1.0,
            max: 2.0,
            has_nan: false,
        };
        assert_eq!(
            leaf(CmpOp::Le, Literal::Double(5.0)).zone_verdict(&clean),
            ZoneVerdict::AlwaysTrue
        );
    }

    #[test]
    fn zone_empty_domain_blocks_are_harmless() {
        // All-NaN / empty double blocks collapse to (0.0, 0.0) + has_nan in
        // zone_of; the NaN flag keeps them out of AlwaysTrue. Empty int
        // blocks collapse to (0, 0): any verdict is vacuous over zero rows,
        // but the verdicts must still be internally consistent.
        let all_nan = BlockZone::Double {
            min: 0.0,
            max: 0.0,
            has_nan: true,
        };
        assert_eq!(
            leaf(CmpOp::Le, Literal::Double(0.0)).zone_verdict(&all_nan),
            ZoneVerdict::Unknown
        );
        assert_eq!(
            leaf(CmpOp::Gt, Literal::Double(0.0)).zone_verdict(&all_nan),
            ZoneVerdict::AlwaysFalse
        );
        let empty_int = BlockZone::Int { min: 0, max: 0 };
        assert_eq!(
            leaf(CmpOp::Eq, Literal::Int(0)).zone_verdict(&empty_int),
            ZoneVerdict::AlwaysTrue
        );
    }

    #[test]
    fn string_and_general_conjuncts_never_always_true() {
        assert_eq!(
            leaf(CmpOp::Eq, Literal::from("x")).zone_verdict(&BlockZone::Str),
            ZoneVerdict::Unknown
        );
        let plan = ExprPlan::compile(&col("id").add(lit(0)).ge(lit(0)), schema).unwrap();
        assert_eq!(
            plan.conjuncts[0].zone_verdict(&BlockZone::Int { min: 5, max: 9 }),
            ZoneVerdict::Unknown
        );
    }

    #[test]
    fn zone_type_mismatch_is_conservative() {
        // A leaf whose literal type doesn't match the zone (corrupt sidecar
        // or schema drift) must not prune.
        let zone = BlockZone::Int { min: 0, max: 1 };
        assert_eq!(
            leaf(CmpOp::Eq, Literal::Double(0.5)).zone_verdict(&zone),
            ZoneVerdict::Unknown
        );
    }
}
