//! Vectorized evaluation: leaf kernels and the general row-wise kernel.
//!
//! [`filter_leaf`] is the *single* fast-path ladder for `column op literal`
//! conjuncts. Every caller — the scan pipeline's worker loop, the scan
//! service, benches — goes through it, so the decision "compressed-domain
//! fast path vs decode-then-filter" cannot drift between layers:
//!
//! * decoded input → `filter_decoded` (the cache-hit path);
//! * compressed input whose scheme has a fast path (`has_fast_path`) →
//!   `filter_block`, evaluating without materializing the block;
//! * anything else → [`LeafVerdict::NeedsDecode`]: the caller decodes (and
//!   typically caches) the block, then calls back with the decoded column.
//!
//! [`eval_predicate`] handles general conjuncts: it gathers the candidate
//! rows (the selection produced by the conjuncts evaluated so far — late
//! materialization applies to predicate work too), evaluates the bound tree
//! column-at-a-time over those rows, and returns the narrowed selection.
//! Semantics are pinned: `i32` arithmetic wraps, doubles are IEEE 754, NaN
//! never satisfies any comparison, boolean logic is two-valued.

use crate::plan::{ArithOp, BoundExpr, ExprError, ValueType};
use crate::selection::Selection;
use btrblocks::{
    filter_block, filter_decoded, has_fast_path, peek_scheme, CmpOp, ColumnType, Config,
    DecodedColumn, Literal, StringViews,
};
use btr_roaring::RoaringBitmap;

/// What a leaf conjunct evaluates over.
pub enum LeafInput<'a> {
    /// An already-decoded block (cache hit or prior decode).
    Decoded(&'a DecodedColumn),
    /// A compressed block as fetched.
    Compressed {
        /// The block's bytes.
        bytes: &'a [u8],
        /// The column's type.
        ty: ColumnType,
        /// Decode configuration.
        config: &'a Config,
    },
}

/// Outcome of [`filter_leaf`].
#[derive(Debug, Clone, PartialEq)]
pub enum LeafVerdict {
    /// The conjunct was evaluated; these rows match.
    Selected {
        /// Matching block-relative row positions.
        rows: RoaringBitmap,
        /// Whether evaluation ran in the compressed domain (scheme fast
        /// path) rather than over decoded values.
        compressed_domain: bool,
    },
    /// No fast path for this scheme: decode the block and call again with
    /// [`LeafInput::Decoded`].
    NeedsDecode,
}

/// Evaluates a `column op literal` leaf over one block. See the module docs
/// for the ladder this collapses.
pub fn filter_leaf(
    input: LeafInput<'_>,
    op: CmpOp,
    literal: &Literal,
) -> btrblocks::Result<LeafVerdict> {
    match input {
        LeafInput::Decoded(col) => Ok(LeafVerdict::Selected {
            rows: filter_decoded(col, op, literal)?,
            compressed_domain: false,
        }),
        LeafInput::Compressed { bytes, ty, config } => {
            if has_fast_path(ty, peek_scheme(bytes)?) {
                Ok(LeafVerdict::Selected {
                    rows: filter_block(bytes, ty, op, literal, config)?,
                    compressed_domain: true,
                })
            } else {
                Ok(LeafVerdict::NeedsDecode)
            }
        }
    }
}

/// Provides decoded columns (by source index) to the general-conjunct
/// evaluator. The scan pipeline implements this over its per-group decode
/// context; a plain slice works for tests and standalone use.
pub trait ColumnAccess {
    /// The decoded block of source column `index`, if available.
    fn column(&self, index: usize) -> Option<&DecodedColumn>;
}

impl ColumnAccess for [DecodedColumn] {
    fn column(&self, index: usize) -> Option<&DecodedColumn> {
        self.get(index)
    }
}

impl ColumnAccess for Vec<DecodedColumn> {
    fn column(&self, index: usize) -> Option<&DecodedColumn> {
        self.get(index)
    }
}

/// Evaluates a boolean [`BoundExpr`] over the candidate rows of one block,
/// returning the narrowed selection. Every column the expression references
/// must be available through `cols` (decoded), and `candidates` carries the
/// block's row count.
pub fn eval_predicate(
    expr: &BoundExpr,
    cols: &dyn ColumnAccess,
    candidates: &Selection,
) -> Result<Selection, ExprError> {
    let rows: Vec<u32> = candidates.iter().collect();
    let Vals::Bool(verdicts) = eval_vals(expr, cols, &rows)? else {
        return Err(ExprError::NotBoolean);
    };
    let kept: Vec<u32> = rows
        .iter()
        .copied()
        .zip(verdicts)
        .filter_map(|(r, keep)| keep.then_some(r))
        .collect();
    Ok(Selection::from_sorted_indices(candidates.rows(), kept))
}

/// Column-at-a-time values for the gathered candidate rows.
enum Vals {
    Int(Vec<i32>),
    Double(Vec<f64>),
    Bool(Vec<bool>),
}

fn eval_vals(expr: &BoundExpr, cols: &dyn ColumnAccess, rows: &[u32]) -> Result<Vals, ExprError> {
    match expr {
        BoundExpr::Col { index, .. } => {
            let col = cols
                .column(*index)
                .ok_or(ExprError::ColumnNotDecoded(*index))?;
            match col {
                DecodedColumn::Int(v) => gather_num(v, rows).map(Vals::Int),
                DecodedColumn::Double(v) => gather_num(v, rows).map(Vals::Double),
                // String columns only appear inside comparisons, which are
                // special-cased below to avoid materializing per-row copies.
                DecodedColumn::Str(_) => Err(ExprError::TypeMismatch(
                    "string column outside a comparison",
                )),
            }
        }
        BoundExpr::Lit(Literal::Int(l)) => Ok(Vals::Int(vec![*l; rows.len()])),
        BoundExpr::Lit(Literal::Double(l)) => Ok(Vals::Double(vec![*l; rows.len()])),
        BoundExpr::Lit(Literal::Str(_)) => Err(ExprError::TypeMismatch(
            "string literal outside a comparison",
        )),
        BoundExpr::Cmp { op, lhs, rhs } => {
            if lhs.value_type() == ValueType::Str {
                return eval_str_cmp(*op, lhs, rhs, cols, rows);
            }
            let a = eval_vals(lhs, cols, rows)?;
            let b = eval_vals(rhs, cols, rows)?;
            match (a, b) {
                (Vals::Int(a), Vals::Int(b)) => Ok(Vals::Bool(
                    a.iter().zip(&b).map(|(x, y)| op.matches(x, y)).collect(),
                )),
                (Vals::Double(a), Vals::Double(b)) => Ok(Vals::Bool(
                    a.iter().zip(&b).map(|(x, y)| op.matches(x, y)).collect(),
                )),
                _ => Err(ExprError::TypeMismatch("comparison operand types differ")),
            }
        }
        BoundExpr::And(a, b) => {
            let (a, b) = (eval_bool(a, cols, rows)?, eval_bool(b, cols, rows)?);
            Ok(Vals::Bool(a.iter().zip(&b).map(|(x, y)| *x && *y).collect()))
        }
        BoundExpr::Or(a, b) => {
            let (a, b) = (eval_bool(a, cols, rows)?, eval_bool(b, cols, rows)?);
            Ok(Vals::Bool(a.iter().zip(&b).map(|(x, y)| *x || *y).collect()))
        }
        BoundExpr::Not(a) => {
            let a = eval_bool(a, cols, rows)?;
            Ok(Vals::Bool(a.iter().map(|x| !x).collect()))
        }
        BoundExpr::Arith { op, lhs, rhs } => {
            let a = eval_vals(lhs, cols, rows)?;
            let b = eval_vals(rhs, cols, rows)?;
            match (a, b) {
                (Vals::Int(a), Vals::Int(b)) => {
                    let f = match op {
                        ArithOp::Add => i32::wrapping_add,
                        ArithOp::Sub => i32::wrapping_sub,
                        ArithOp::Mul => i32::wrapping_mul,
                    };
                    Ok(Vals::Int(a.iter().zip(&b).map(|(x, y)| f(*x, *y)).collect()))
                }
                (Vals::Double(a), Vals::Double(b)) => {
                    let f = match op {
                        ArithOp::Add => |x: f64, y: f64| x + y,
                        ArithOp::Sub => |x: f64, y: f64| x - y,
                        ArithOp::Mul => |x: f64, y: f64| x * y,
                    };
                    Ok(Vals::Double(
                        a.iter().zip(&b).map(|(x, y)| f(*x, *y)).collect(),
                    ))
                }
                _ => Err(ExprError::TypeMismatch("arithmetic operand types differ")),
            }
        }
    }
}

fn eval_bool(
    expr: &BoundExpr,
    cols: &dyn ColumnAccess,
    rows: &[u32],
) -> Result<Vec<bool>, ExprError> {
    match eval_vals(expr, cols, rows)? {
        Vals::Bool(v) => Ok(v),
        _ => Err(ExprError::TypeMismatch("expected a boolean subexpression")),
    }
}

fn gather_num<T: Copy>(values: &[T], rows: &[u32]) -> Result<Vec<T>, ExprError> {
    rows.iter()
        .map(|&r| {
            values
                .get(r as usize)
                .copied()
                .ok_or(ExprError::RowOutOfRange)
        })
        .collect()
}

/// String comparisons evaluate directly over views and literal bytes —
/// no per-row string materialization.
fn eval_str_cmp(
    op: CmpOp,
    lhs: &BoundExpr,
    rhs: &BoundExpr,
    cols: &dyn ColumnAccess,
    rows: &[u32],
) -> Result<Vals, ExprError> {
    enum Side<'a> {
        Views(&'a StringViews),
        Lit(&'a [u8]),
    }
    fn side<'a>(e: &'a BoundExpr, cols: &'a dyn ColumnAccess) -> Result<Side<'a>, ExprError> {
        match e {
            BoundExpr::Col { index, .. } => match cols.column(*index) {
                Some(DecodedColumn::Str(views)) => Ok(Side::Views(views)),
                Some(_) => Err(ExprError::TypeMismatch("expected a string column")),
                None => Err(ExprError::ColumnNotDecoded(*index)),
            },
            BoundExpr::Lit(Literal::Str(l)) => Ok(Side::Lit(l.as_slice())),
            // Binding guarantees string operands are columns or literals
            // (no operator produces strings), so this is unreachable on a
            // well-formed plan — keep it a typed error regardless.
            _ => Err(ExprError::TypeMismatch(
                "string comparison operands must be columns or literals",
            )),
        }
    }
    let (a, b) = (side(lhs, cols)?, side(rhs, cols)?);
    let mut out = Vec::with_capacity(rows.len());
    for &r in rows {
        let av: &[u8] = match &a {
            Side::Views(v) => {
                if (r as usize) < v.len() {
                    v.get(r as usize)
                } else {
                    return Err(ExprError::RowOutOfRange);
                }
            }
            Side::Lit(l) => l,
        };
        let bv: &[u8] = match &b {
            Side::Views(v) => {
                if (r as usize) < v.len() {
                    v.get(r as usize)
                } else {
                    return Err(ExprError::RowOutOfRange);
                }
            }
            Side::Lit(l) => l,
        };
        out.push(op.matches(&av, &bv));
    }
    Ok(Vals::Bool(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::ExprPlan;
    use btrblocks::block::compress_block_with;
    use btrblocks::{BlockRef, SchemeCode};

    fn schema(name: &str) -> Option<(usize, ColumnType)> {
        match name {
            "a" => Some((0, ColumnType::Integer)),
            "b" => Some((1, ColumnType::Double)),
            "s" => Some((2, ColumnType::String)),
            _ => None,
        }
    }

    fn cols() -> Vec<DecodedColumn> {
        let arena = btrblocks::StringArena::from_strs(&["x", "y", "x", "z"]);
        vec![
            DecodedColumn::Int(vec![1, 2, 3, 4]),
            DecodedColumn::Double(vec![0.5, f64::NAN, 2.5, 3.5]),
            DecodedColumn::Str(StringViews::from_arena(&arena)),
        ]
    }

    fn run(e: &crate::Expr) -> Vec<u32> {
        let plan = ExprPlan::compile(e, schema).unwrap();
        let cols = cols();
        let mut sel = Selection::all(4);
        for c in &plan.conjuncts {
            let block = match &c.kind {
                crate::plan::ConjunctKind::General(b) => {
                    eval_predicate(b, &cols, &sel).unwrap()
                }
                crate::plan::ConjunctKind::Leaf {
                    column, op, literal, ..
                } => {
                    let decoded = &cols[*column];
                    let LeafVerdict::Selected { rows, .. } =
                        filter_leaf(LeafInput::Decoded(decoded), *op, literal).unwrap()
                    else {
                        panic!("decoded input always evaluates");
                    };
                    Selection::from_bitmap(4, rows)
                }
            };
            sel = sel.intersect(&block);
        }
        sel.iter().collect()
    }

    #[test]
    fn general_kernel_arithmetic_and_logic() {
        // (a + 1) * 2 > 6  ⇒  a > 2  ⇒ rows 2, 3
        assert_eq!(run(&col("a").add(lit(1)).mul(lit(2)).gt(lit(6))), vec![2, 3]);
        // NOT / OR over mixed conjuncts.
        assert_eq!(
            run(&col("a").eq(lit(1)).or(col("s").eq(lit("z")))),
            vec![0, 3]
        );
        assert_eq!(run(&col("a").lt(lit(3)).not().or(col("a").eq(lit(1)))), vec![0, 2, 3]);
    }

    #[test]
    fn nan_never_matches_in_general_kernel() {
        // Row 1 is NaN: fails b <= 100 and fails NOT(b > -100) alike.
        assert_eq!(run(&col("b").le(lit(100.0)).or(col("b").ge(lit(-100.0)))), vec![0, 2, 3]);
    }

    #[test]
    fn string_comparisons_including_col_vs_col() {
        assert_eq!(run(&col("s").eq(lit("x"))), vec![0, 2]);
        assert_eq!(run(&col("s").eq(col("s"))), vec![0, 1, 2, 3]);
        assert_eq!(run(&col("s").gt(lit("x"))), vec![1, 3]);
    }

    #[test]
    fn candidates_narrow_evaluation() {
        let plan = ExprPlan::compile(&col("a").ge(lit(2)), schema).unwrap();
        let crate::plan::ConjunctKind::Leaf { .. } = &plan.conjuncts[0].kind else {
            panic!("leaf expected");
        };
        // Drive the general path with a pre-narrowed candidate set.
        let bound = BoundExpr::Cmp {
            op: CmpOp::Ge,
            lhs: Box::new(BoundExpr::Col {
                index: 0,
                ty: ColumnType::Integer,
            }),
            rhs: Box::new(BoundExpr::Lit(Literal::Int(2))),
        };
        let candidates = Selection::from_sorted_indices(4, vec![0, 3]);
        let got = eval_predicate(&bound, &cols(), &candidates).unwrap();
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn filter_leaf_ladder() {
        let cfg = Config::default();
        let values = vec![7i32; 500];
        // Fast-path scheme: evaluated in the compressed domain.
        let bytes = compress_block_with(SchemeCode::OneValue, BlockRef::Int(&values), &cfg);
        let got = filter_leaf(
            LeafInput::Compressed {
                bytes: &bytes,
                ty: ColumnType::Integer,
                config: &cfg,
            },
            CmpOp::Eq,
            &Literal::Int(7),
        )
        .unwrap();
        assert!(matches!(
            got,
            LeafVerdict::Selected {
                compressed_domain: true,
                ..
            }
        ));

        // No fast path: the ladder reports NeedsDecode...
        let bytes = compress_block_with(SchemeCode::FastBp128, BlockRef::Int(&values), &cfg);
        let got = filter_leaf(
            LeafInput::Compressed {
                bytes: &bytes,
                ty: ColumnType::Integer,
                config: &cfg,
            },
            CmpOp::Eq,
            &Literal::Int(7),
        )
        .unwrap();
        assert_eq!(got, LeafVerdict::NeedsDecode);

        // ...and the decoded round answers with the same rows.
        let decoded = btrblocks::decompress_block(&bytes, ColumnType::Integer, &cfg).unwrap();
        let got = filter_leaf(LeafInput::Decoded(&decoded), CmpOp::Eq, &Literal::Int(7)).unwrap();
        let LeafVerdict::Selected {
            rows,
            compressed_domain,
        } = got
        else {
            panic!("decoded input always evaluates");
        };
        assert!(!compressed_domain);
        assert_eq!(rows.cardinality(), 500);
    }

    #[test]
    fn missing_column_is_typed_error() {
        let bound = BoundExpr::Col {
            index: 9,
            ty: ColumnType::Integer,
        };
        let bound = BoundExpr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(bound),
            rhs: Box::new(BoundExpr::Lit(Literal::Int(0))),
        };
        assert_eq!(
            eval_predicate(&bound, &cols(), &Selection::all(4)),
            Err(ExprError::ColumnNotDecoded(9))
        );
    }
}
