//! Selection vectors: which rows of a block survive the filter so far.
//!
//! Three representations, chosen by a density crossover rule so the engine
//! pays for what the selection actually is:
//!
//! * [`SelectionRepr::All`] — a dense range: every row selected. The common
//!   case for scans without a filter and for conjuncts proven always-true by
//!   zone maps; intersecting with it is free.
//! * [`SelectionRepr::Indices`] — a sorted index list. Used when fewer than
//!   1/8 of the rows survive: iteration and intersection are then O(selected)
//!   instead of O(rows).
//! * [`SelectionRepr::Bitmap`] — a Roaring bitmap for everything in between
//!   (also what the compressed-domain filter kernels hand back natively).
//!
//! Every constructor normalizes: full cardinality collapses to `All`, sparse
//! results collapse to `Indices`. The crossover constant is
//! [`Selection::SPARSE_FRACTION`] (documented in DESIGN.md §16).

use btr_roaring::RoaringBitmap;
use btrblocks::SimdMode;

/// How a [`Selection`] stores its selected rows.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionRepr {
    /// Every row in `0..rows` is selected (dense range).
    All,
    /// Selected rows as a Roaring bitmap.
    Bitmap(RoaringBitmap),
    /// Selected rows as a sorted, duplicate-free index list.
    Indices(Vec<u32>),
}

/// The set of selected rows within one block of `rows` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    rows: u32,
    repr: SelectionRepr,
}

impl Selection {
    /// Indices win over a bitmap when `cardinality * SPARSE_FRACTION <= rows`.
    pub const SPARSE_FRACTION: u32 = 8;

    /// Every row of a `rows`-row block selected.
    pub fn all(rows: u32) -> Selection {
        Selection {
            rows,
            repr: SelectionRepr::All,
        }
    }

    /// No row selected.
    pub fn none(rows: u32) -> Selection {
        Selection {
            rows,
            repr: SelectionRepr::Indices(Vec::new()),
        }
    }

    /// Builds from a bitmap of selected positions, normalizing the
    /// representation by the crossover rule.
    pub fn from_bitmap(rows: u32, bitmap: RoaringBitmap) -> Selection {
        let card = clamp_card(bitmap.cardinality(), rows);
        if card == rows {
            return Selection::all(rows);
        }
        if sparse(card, rows) {
            return Selection {
                rows,
                repr: SelectionRepr::Indices(bitmap.iter().collect()),
            };
        }
        Selection {
            rows,
            repr: SelectionRepr::Bitmap(bitmap),
        }
    }

    /// Builds from a sorted, duplicate-free index list, normalizing the
    /// representation by the crossover rule.
    pub fn from_sorted_indices(rows: u32, indices: Vec<u32>) -> Selection {
        let card = clamp_card(indices.len() as u64, rows);
        if card == rows {
            return Selection::all(rows);
        }
        if sparse(card, rows) {
            return Selection {
                rows,
                repr: SelectionRepr::Indices(indices),
            };
        }
        Selection {
            rows,
            repr: SelectionRepr::Bitmap(RoaringBitmap::from_sorted_iter(indices)),
        }
    }

    /// Number of rows in the block this selection describes.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The representation currently in use.
    pub fn repr(&self) -> &SelectionRepr {
        &self.repr
    }

    /// Number of selected rows.
    pub fn cardinality(&self) -> u32 {
        match &self.repr {
            SelectionRepr::All => self.rows,
            SelectionRepr::Bitmap(b) => clamp_card(b.cardinality(), self.rows),
            SelectionRepr::Indices(v) => clamp_card(v.len() as u64, self.rows),
        }
    }

    /// Whether no row is selected.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            SelectionRepr::All => self.rows == 0,
            SelectionRepr::Bitmap(b) => b.is_empty(),
            SelectionRepr::Indices(v) => v.is_empty(),
        }
    }

    /// Whether every row is selected.
    pub fn is_all(&self) -> bool {
        self.cardinality() == self.rows
    }

    /// Whether `row` is selected.
    pub fn contains(&self, row: u32) -> bool {
        match &self.repr {
            SelectionRepr::All => row < self.rows,
            SelectionRepr::Bitmap(b) => b.contains(row),
            SelectionRepr::Indices(v) => v.binary_search(&row).is_ok(),
        }
    }

    /// Iterates selected rows in ascending order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        match &self.repr {
            SelectionRepr::All => Box::new(0..self.rows),
            SelectionRepr::Bitmap(b) => Box::new(b.iter()),
            SelectionRepr::Indices(v) => Box::new(v.iter().copied()),
        }
    }

    /// Materializes as a Roaring bitmap (regardless of representation).
    pub fn to_bitmap(&self) -> RoaringBitmap {
        match &self.repr {
            SelectionRepr::All => RoaringBitmap::from_sorted_iter(0..self.rows),
            SelectionRepr::Bitmap(b) => b.clone(),
            SelectionRepr::Indices(v) => RoaringBitmap::from_sorted_iter(v.iter().copied()),
        }
    }

    /// Set intersection. Both selections must describe the same block; the
    /// result keeps `self.rows`.
    pub fn intersect(&self, other: &Selection) -> Selection {
        self.intersect_with(other, SimdMode::Auto)
    }

    /// [`Selection::intersect`] with explicit scalar/SIMD dispatch for the
    /// bitmap kernels (ablation and oracle testing).
    pub fn intersect_with(&self, other: &Selection, mode: SimdMode) -> Selection {
        match (&self.repr, &other.repr) {
            (SelectionRepr::All, _) => {
                let mut out = other.clone();
                out.rows = self.rows;
                out
            }
            (_, SelectionRepr::All) => self.clone(),
            // With an index list on either side, filtering the (sorted) list
            // through the other side is O(selected · lookup).
            (SelectionRepr::Indices(v), _) => Selection::from_sorted_indices(
                self.rows,
                v.iter().copied().filter(|&r| other.contains(r)).collect(),
            ),
            (_, SelectionRepr::Indices(v)) => Selection::from_sorted_indices(
                self.rows,
                v.iter().copied().filter(|&r| self.contains(r)).collect(),
            ),
            // Bitmap × Bitmap goes through the dense-words kernels: expand
            // both sides to `u64` words, AND them 256 bits at a time, count
            // the result's density, and only then pick the representation —
            // so the crossover decision never needs a second pass.
            (SelectionRepr::Bitmap(a), SelectionRepr::Bitmap(b)) => {
                let rows = self.rows;
                let mut wa = Vec::new();
                let mut wb = Vec::new();
                a.write_dense_words(rows, &mut wa);
                b.write_dense_words(rows, &mut wb);
                let mut anded = Vec::new();
                crate::simd::and_words_into(&wa, &wb, &mut anded, mode);
                let card = clamp_card(crate::simd::count_ones_words(&anded, mode), rows);
                if card == rows {
                    return Selection::all(rows);
                }
                if sparse(card, rows) {
                    let mut indices = Vec::with_capacity(card as usize);
                    crate::simd::words_to_indices(&anded, rows, &mut indices, mode);
                    return Selection {
                        rows,
                        repr: SelectionRepr::Indices(indices),
                    };
                }
                Selection {
                    rows,
                    repr: SelectionRepr::Bitmap(RoaringBitmap::from_dense_words(&anded)),
                }
            }
        }
    }

    /// Set union. Both selections must describe the same block; the result
    /// keeps `self.rows`.
    pub fn union(&self, other: &Selection) -> Selection {
        match (&self.repr, &other.repr) {
            (SelectionRepr::All, _) | (_, SelectionRepr::All) => Selection::all(self.rows),
            _ => Selection::from_bitmap(self.rows, self.to_bitmap().union(&other.to_bitmap())),
        }
    }

    /// The rows *not* selected.
    pub fn complement(&self) -> Selection {
        match &self.repr {
            SelectionRepr::All => Selection::none(self.rows),
            _ => Selection::from_sorted_indices(
                self.rows,
                (0..self.rows).filter(|&r| !self.contains(r)).collect(),
            ),
        }
    }
}

/// A bitmap built from block-relative positions can never exceed the block's
/// row count; clamp defensively instead of trusting the narrowing conversion.
fn clamp_card(card: u64, rows: u32) -> u32 {
    u32::try_from(card).unwrap_or(rows).min(rows)
}

fn sparse(card: u32, rows: u32) -> bool {
    u64::from(card) * u64::from(Selection::SPARSE_FRACTION) <= u64::from(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_rule_picks_representations() {
        // Full cardinality collapses to All.
        let s = Selection::from_bitmap(100, RoaringBitmap::from_sorted_iter(0..100));
        assert_eq!(s.repr(), &SelectionRepr::All);
        assert!(s.is_all());

        // <= 1/8 of rows selected: index list.
        let s = Selection::from_bitmap(100, RoaringBitmap::from_sorted_iter([3, 50, 97]));
        assert!(matches!(s.repr(), SelectionRepr::Indices(v) if v == &[3, 50, 97]));

        // In between: bitmap.
        let s = Selection::from_bitmap(100, RoaringBitmap::from_sorted_iter(0..50));
        assert!(matches!(s.repr(), SelectionRepr::Bitmap(_)));
        assert_eq!(s.cardinality(), 50);
    }

    #[test]
    fn intersect_across_representations() {
        let all = Selection::all(64);
        let sparse = Selection::from_sorted_indices(64, vec![1, 5, 9]);
        let dense = Selection::from_bitmap(64, RoaringBitmap::from_sorted_iter(0..32));

        assert_eq!(all.intersect(&sparse), sparse);
        assert_eq!(sparse.intersect(&all), sparse);
        let got = sparse.intersect(&dense);
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
        let got = dense.intersect(&sparse);
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
        let got = dense.intersect(&dense);
        assert_eq!(got.cardinality(), 32);
    }

    #[test]
    fn union_and_complement() {
        let a = Selection::from_sorted_indices(64, vec![1, 2]);
        let b = Selection::from_sorted_indices(64, vec![2, 3]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(a.union(&Selection::all(64)), Selection::all(64));

        let c = Selection::from_sorted_indices(4, vec![0, 2]);
        assert_eq!(c.complement().iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(Selection::all(4).complement().is_empty());
        assert!(Selection::none(4).complement().is_all());
    }

    #[test]
    fn empty_block_edge_cases() {
        let s = Selection::all(0);
        assert!(s.is_empty());
        assert!(s.is_all());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn bitmap_intersect_kernels_match_roaring() {
        // The dense-words kernel path must agree with roaring's merge-join
        // intersection on every mode, across densities that land the result
        // in each representation (All / Bitmap / Indices) and across the
        // 65536-row chunk boundary.
        let cases: [(u32, Vec<u32>, Vec<u32>); 4] = [
            (256, (0..256).collect(), (0..256).collect()),          // -> All
            (256, (0..128).collect(), (64..192).collect()),         // -> Bitmap
            (256, (0..256).step_by(2).collect(), (0..40).collect()), // -> Indices
            (
                200_000,
                (0..200_000).step_by(3).collect(),
                (0..200_000).step_by(2).collect(),
            ),
        ];
        for (rows, av, bv) in cases {
            let a = RoaringBitmap::from_sorted_iter(av.iter().copied());
            let b = RoaringBitmap::from_sorted_iter(bv.iter().copied());
            let expect: Vec<u32> = a.intersection(&b).iter().collect();
            let sa = Selection {
                rows,
                repr: SelectionRepr::Bitmap(a),
            };
            let sb = Selection {
                rows,
                repr: SelectionRepr::Bitmap(b),
            };
            for mode in [SimdMode::Auto, SimdMode::ForceScalar] {
                let got = sa.intersect_with(&sb, mode);
                assert_eq!(got.rows(), rows);
                assert_eq!(got.iter().collect::<Vec<_>>(), expect, "rows {rows} mode {mode:?}");
                assert_eq!(got.cardinality() as usize, expect.len());
            }
        }
    }

    #[test]
    fn iter_matches_contains() {
        let s = Selection::from_bitmap(32, RoaringBitmap::from_sorted_iter((0..32).step_by(3)));
        let via_iter: Vec<u32> = s.iter().collect();
        let via_contains: Vec<u32> = (0..32).filter(|&r| s.contains(r)).collect();
        assert_eq!(via_iter, via_contains);
        assert_eq!(s.to_bitmap().iter().collect::<Vec<_>>(), via_iter);
    }
}
