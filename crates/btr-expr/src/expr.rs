//! The typed expression tree and its builder API.
//!
//! An [`Expr`] is schema-free: columns are referenced by name and resolved at
//! compile time ([`crate::ExprPlan::compile`]). The builder methods make
//! predicates read like the query they express:
//!
//! ```
//! use btr_expr::{col, lit};
//! let e = col("price").gt(lit(10.0)).and(col("city").eq(lit("Berlin")));
//! ```

use btrblocks::{CmpOp, Literal};

/// A typed expression over named columns.
///
/// Comparisons require both sides to have the same type (integer, double, or
/// string); arithmetic is defined on numerics only (`i32` wraps, doubles are
/// IEEE 754). The boolean connectives are two-valued. Type checking happens
/// when the expression is compiled against a schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, by name.
    Col(String),
    /// A literal value.
    Lit(Literal),
    /// `lhs op rhs` (NaN never satisfies any comparison).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Numeric addition (`i32` wrapping).
    Add(Box<Expr>, Box<Expr>),
    /// Numeric subtraction (`i32` wrapping).
    Sub(Box<Expr>, Box<Expr>),
    /// Numeric multiplication (`i32` wrapping).
    Mul(Box<Expr>, Box<Expr>),
}

/// A column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// A literal (from `i32`, `f64`, `&str`, `Vec<u8>`, or a [`Literal`]).
pub fn lit(value: impl Into<Literal>) -> Expr {
    Expr::Lit(value.into())
}

impl From<Literal> for Expr {
    fn from(l: Literal) -> Expr {
        Expr::Lit(l)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Expr {
        Expr::Lit(Literal::Int(v))
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::Lit(Literal::Double(v))
    }
}

impl From<&str> for Expr {
    fn from(v: &str) -> Expr {
        Expr::Lit(Literal::from(v))
    }
}

impl Expr {
    fn cmp(self, op: CmpOp, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(rhs.into()))
    }

    /// `self == rhs`
    pub fn eq(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self < rhs`
    pub fn lt(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self <= rhs`
    pub fn le(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Le, rhs)
    }

    /// `self > rhs`
    pub fn gt(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`
    pub fn ge(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// `self AND rhs`
    pub fn and(self, rhs: impl Into<Expr>) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs.into()))
    }

    /// `self OR rhs`
    pub fn or(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs.into()))
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self + rhs` (numeric; `i32` wraps)
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs.into()))
    }

    /// `self - rhs` (numeric; `i32` wraps)
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs.into()))
    }

    /// `self * rhs` (numeric; `i32` wraps)
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs.into()))
    }

    /// Collects every referenced column name (with duplicates, in tree
    /// order). Mostly useful for diagnostics; plans carry resolved indices.
    pub fn column_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(name) => out.push(name.as_str()),
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
            Expr::Not(a) => a.collect_names(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = col("a").ge(lit(3)).and(col("b").lt(lit(2.5)).or(col("c").eq(lit("x")).not()));
        assert_eq!(e.column_names(), vec!["a", "b", "c"]);
        // Literal coercions via Into<Expr>.
        assert_eq!(col("a").eq(7), col("a").eq(lit(Literal::Int(7))));
        assert_eq!(col("a").lt(1.5), col("a").lt(lit(1.5f64)));
        assert_eq!(col("a").eq("s"), col("a").eq(lit("s")));
    }

    #[test]
    fn arithmetic_builders() {
        let e = col("a").add(col("b")).mul(2).sub(1).gt(0);
        match e {
            Expr::Cmp(CmpOp::Gt, lhs, _) => match *lhs {
                Expr::Sub(_, _) => {}
                other => panic!("unexpected tree: {other:?}"),
            },
            other => panic!("unexpected tree: {other:?}"),
        }
    }
}
