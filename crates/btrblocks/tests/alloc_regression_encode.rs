//! Zero-allocation warm encode: the tentpole guarantee of `EncodeScratch`.
//!
//! This binary installs btr-corrupt's tracking allocator as the global
//! allocator, compresses a relation once cold (populating the scratch pool
//! and the output shells), then compresses the same columns again warm via
//! `compress_column_into` and asserts the warm pass performs **zero** heap
//! allocations.
//!
//! The scheme pool is restricted to the schemes whose encode path is fully
//! scratch-leased: Frequency keeps a Roaring bitmap serialization and the
//! FSST schemes keep symbol-table training allocations, so they are excluded
//! here (their leased temporaries are covered by the roundtrip proptests).
//! String columns are excluded for the same reason — their stats and
//! dictionary maps key on borrowed `&[u8]` slices that cannot outlive one
//! block, so those maps are rebuilt per block by design (DESIGN.md §12).

use btr_corrupt::alloc::{self, TrackingAllocator};
use btrblocks::{
    compress_column, compress_column_into, Column, ColumnData, CompressedColumn, Config,
    EncodeScratch, Relation, SchemeCode,
};

#[global_allocator]
static ALLOCATOR: TrackingAllocator = TrackingAllocator;

fn scratch_only_config() -> Config {
    Config {
        block_size: 2_048,
        ..Config::default()
    }
    .with_pool(&[
        SchemeCode::Uncompressed,
        SchemeCode::OneValue,
        SchemeCode::Rle,
        SchemeCode::Dict,
        SchemeCode::FastPfor,
        SchemeCode::FastBp128,
    ])
}

fn sample_relation(rows: usize) -> Relation {
    Relation::new(vec![
        // Ascending ints: FastPfor/FastBp128 territory.
        Column::new("id", ColumnData::Int((0..rows as i32).collect())),
        // Run-heavy ints: RLE with a cascaded child.
        Column::new("runs", ColumnData::Int((0..rows).map(|i| (i / 100) as i32 % 7).collect())),
        // Low-cardinality ints: integer dictionary.
        Column::new("cat", ColumnData::Int((0..rows).map(|i| (i * 31) as i32 % 40).collect())),
        // Constant ints: OneValue.
        Column::new("one", ColumnData::Int(vec![42; rows])),
        // Low-cardinality doubles: double dictionary.
        Column::new(
            "price",
            ColumnData::Double((0..rows).map(|i| (i % 50) as f64 * 0.25).collect()),
        ),
        // Run-heavy doubles: double RLE.
        Column::new(
            "bucket",
            ColumnData::Double((0..rows).map(|i| (i / 200) as f64).collect()),
        ),
    ])
}

/// One full encode of every column into its reused shell, the way a
/// steady-state ingest loop recompresses batches.
fn encode_all(
    rel: &Relation,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    outs: &mut [CompressedColumn],
) -> usize {
    let mut bytes = 0;
    for (col, out) in rel.columns.iter().zip(outs.iter_mut()) {
        compress_column_into(col, cfg, scratch, out);
        bytes += out.blocks.iter().map(|b| b.len()).sum::<usize>();
    }
    bytes
}

// One #[test] only: the allocator counters are process-global, and a second
// test running on a sibling thread would count its allocations into the
// measured window.
#[test]
fn warm_encode_allocates_zero_bytes() {
    let cfg = scratch_only_config();
    let rel = sample_relation(10_000);

    let mut scratch = EncodeScratch::new();
    let mut outs: Vec<CompressedColumn> = rel
        .columns
        .iter()
        .map(|col| CompressedColumn {
            name: String::new(),
            column_type: col.data.column_type(),
            nulls: Vec::new(),
            blocks: Vec::new(),
            schemes: Vec::new(),
        })
        .collect();

    // Cold pass: every lease misses and allocates; the pool and the output
    // shells fill up.
    let cold_bytes = encode_all(&rel, &cfg, &mut scratch, &mut outs);
    assert!(cold_bytes > 0);
    let cold = scratch.stats();
    assert!(cold.misses > 0, "cold pass must populate the pool");
    assert_eq!(cold.dropped, 0, "budget must not drop encode-sized buffers");

    // Settle pass: shells and pool already shaped; lets any one-time growth
    // (tier rebalancing, map capacity) finish before the measured window.
    let settle_bytes = encode_all(&rel, &cfg, &mut scratch, &mut outs);
    assert_eq!(settle_bytes, cold_bytes);

    // Warm pass: identical work, zero heap allocations.
    let (warm_bytes, growth) =
        alloc::measure(|| encode_all(&rel, &cfg, &mut scratch, &mut outs));
    assert_eq!(warm_bytes, cold_bytes);
    assert_eq!(
        growth, 0,
        "warm encode must not allocate (grew {growth} bytes; stats: {:?})",
        scratch.stats()
    );

    // The reused shells must hold exactly what a fresh compression produces:
    // buffer reuse is a performance property, never an output property.
    for (col, out) in rel.columns.iter().zip(&outs) {
        let fresh = compress_column(col, &cfg);
        assert_eq!(&fresh, out, "column {}", col.name);
    }

    // A tight budget drops oversized returns instead of hoarding; encode
    // still succeeds, it just stays allocating. This pins the budget
    // behaviour end-to-end rather than only at the unit level.
    let mut scratch = EncodeScratch::with_budget(1 << 10);
    let bytes = encode_all(&rel, &cfg, &mut scratch, &mut outs);
    assert_eq!(bytes, cold_bytes);
    let stats = scratch.stats();
    assert!(stats.held_bytes <= stats.budget_bytes);
    assert!(stats.dropped > 0, "tight budget must drop returns");
}
