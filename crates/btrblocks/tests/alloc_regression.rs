//! Zero-allocation warm decode: the tentpole guarantee of `DecodeScratch`.
//!
//! This binary installs btr-corrupt's tracking allocator as the global
//! allocator, decodes a relation's blocks once cold (populating the scratch
//! pool), then decodes the same blocks again warm and asserts the warm pass
//! performs **zero** heap allocations.
//!
//! The scheme pool is restricted to the schemes whose decode path is fully
//! scratch-leased: Frequency, Pseudodecimal, Fsst and DictFsst each keep one
//! unavoidable per-block allocation (Roaring containers / FSST symbol
//! tables) and are excluded here; their leased temporaries are covered by
//! the dirty-out proptests instead.

use btr_corrupt::alloc::{self, TrackingAllocator};
use btrblocks::{
    compress, decompress_block_into, Column, ColumnData, Config, DecodeScratch, Relation,
    SchemeCode, StringArena,
};

#[global_allocator]
static ALLOCATOR: TrackingAllocator = TrackingAllocator;

fn scratch_only_config() -> Config {
    Config {
        block_size: 2_048,
        ..Config::default()
    }
    .with_pool(&[
        SchemeCode::Uncompressed,
        SchemeCode::OneValue,
        SchemeCode::Rle,
        SchemeCode::Dict,
        SchemeCode::FastPfor,
        SchemeCode::FastBp128,
    ])
}

fn sample_relation(rows: usize) -> Relation {
    let strings: Vec<String> = (0..rows).map(|i| format!("city-{}", (i / 64) % 23)).collect();
    let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
    Relation::new(vec![
        // Ascending ints: FastPfor/FastBp128 territory.
        Column::new("id", ColumnData::Int((0..rows as i32).collect())),
        // Run-heavy ints: RLE with a cascaded child.
        Column::new("runs", ColumnData::Int((0..rows).map(|i| (i / 100) as i32 % 7).collect())),
        // Low-cardinality doubles: double dictionary.
        Column::new(
            "price",
            ColumnData::Double((0..rows).map(|i| (i % 50) as f64 * 0.25).collect()),
        ),
        // Repetitive strings with long runs: string Dict (+ fused RLE path).
        Column::new("city", ColumnData::Str(StringArena::from_strs(&refs))),
    ])
}

/// One full decode of every block of every column, reusing `out` across
/// blocks the way the scan engine does.
fn decode_all(
    compressed: &btrblocks::CompressedRelation,
    cfg: &Config,
    scratch: &mut DecodeScratch,
) -> usize {
    let mut rows = 0;
    for col in &compressed.columns {
        let mut out = scratch.lease_decoded(col.column_type);
        for block in &col.blocks {
            decompress_block_into(block, col.column_type, cfg, scratch, &mut out)
                .expect("block decodes");
            rows += out.len();
        }
        scratch.recycle(out);
    }
    rows
}

// One #[test] only: the allocator counters are process-global, and a second
// test running on a sibling thread would count its allocations into the
// measured window.
#[test]
fn warm_decode_allocates_zero_bytes() {
    let cfg = scratch_only_config();
    let rel = sample_relation(10_000);
    let compressed = compress(&rel, &cfg).expect("compresses");
    let expected_rows: usize = 4 * 10_000;

    let mut scratch = DecodeScratch::new();
    // Cold pass: every lease misses and allocates; the pool fills up.
    let cold_rows = decode_all(&compressed, &cfg, &mut scratch);
    assert_eq!(cold_rows, expected_rows);
    let cold = scratch.stats();
    assert!(cold.misses > 0, "cold pass must populate the pool");
    assert_eq!(cold.dropped, 0, "budget must not drop decode-sized buffers");

    // Warm pass: identical work, zero heap allocations.
    let (warm_rows, growth) = alloc::measure(|| decode_all(&compressed, &cfg, &mut scratch));
    assert_eq!(warm_rows, expected_rows);
    assert_eq!(
        growth, 0,
        "warm decode must not allocate (grew {growth} bytes; stats: {:?})",
        scratch.stats()
    );
    let warm = scratch.stats();
    assert_eq!(warm.misses, cold.misses, "warm pass must be all pool hits");
    assert!(warm.hits > cold.hits);

    // A tight budget drops oversized returns instead of hoarding; decode
    // still succeeds, it just stays allocating. This pins the budget
    // behaviour end-to-end rather than only at the unit level.
    let rel = sample_relation(4_000);
    let compressed = compress(&rel, &cfg).expect("compresses");
    let mut scratch = DecodeScratch::with_budget(1 << 10);
    let rows = decode_all(&compressed, &cfg, &mut scratch);
    assert_eq!(rows, 4 * 4_000);
    let stats = scratch.stats();
    assert!(stats.held_bytes <= stats.budget_bytes);
    assert!(stats.dropped > 0, "tight budget must drop returns");
}
