//! Regression corpus: hand-crafted corrupt inputs asserting *exact* error
//! variants from the decode path.
//!
//! The mutation campaigns in `btr-corrupt` prove nothing bad happens for
//! thousands of random corruptions; this corpus pins down the specific
//! error each *class* of damage must produce, so a refactor that silently
//! downgrades (say) a checksum mismatch to a generic parse error fails here
//! rather than in a consumer.

use btrblocks::{compress, decompress, Column, ColumnData, Config, Error, Relation};

fn small_cfg() -> Config {
    Config {
        block_size: 512,
        max_cascade_depth: 3,
        max_block_values: 4_096,
        ..Config::default()
    }
}

/// A run-heavy two-block integer column: enough structure to cascade.
fn sample() -> Relation {
    let mut values = Vec::new();
    for i in 0..1_200i32 {
        values.extend(std::iter::repeat_n(i % 7, 3));
    }
    Relation::new(vec![Column::new("i", ColumnData::Int(values))])
}

/// Byte offset of the first block's payload, derived from the layout:
/// `magic | version | rows | n_cols | name_len u16 | name | tag | null_len
/// u32 | nulls | block_count u32 | byte_len u32 [| crc u32]`.
fn first_payload_offset(name_len: usize, nulls_len: usize, v2: bool) -> usize {
    4 + 4 + 8 + 4 + 2 + name_len + 1 + 4 + nulls_len + 4 + 4 + if v2 { 4 } else { 0 }
}

fn v2_bytes() -> Vec<u8> {
    compress(&sample(), &small_cfg()).unwrap().to_bytes()
}

fn v1_bytes() -> Vec<u8> {
    compress(&sample(), &small_cfg()).unwrap().to_bytes_v1()
}

#[test]
fn truncated_header_is_unexpected_end() {
    let bytes = v2_bytes();
    for cut in [0, 3, 5, 7, 9, 11] {
        assert_eq!(
            decompress(&bytes[..cut], &small_cfg()).unwrap_err(),
            Error::UnexpectedEnd,
            "cut at {cut}"
        );
    }
}

#[test]
fn bad_magic_and_unknown_version_are_corrupt() {
    let mut bytes = v2_bytes();
    bytes[0] = b'X';
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::Corrupt("bad magic")
    );
    let mut bytes = v2_bytes();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::Corrupt("unsupported version")
    );
}

#[test]
fn flipped_payload_bit_is_a_part_checksum_mismatch() {
    let mut bytes = v2_bytes();
    let payload = first_payload_offset(1, 0, true);
    bytes[payload + 3] ^= 0x10;
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::ChecksumMismatch { column: 0, part: 0 }
    );
}

#[test]
fn flipped_stored_crc_is_a_part_checksum_mismatch() {
    let mut bytes = v2_bytes();
    // The CRC field sits 4 bytes before the payload.
    let crc_at = first_payload_offset(1, 0, true) - 4;
    bytes[crc_at] ^= 0x01;
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::ChecksumMismatch { column: 0, part: 0 }
    );
}

#[test]
fn flipped_footer_is_a_file_checksum_mismatch() {
    let mut bytes = v2_bytes();
    let n = bytes.len();
    bytes[n - 2] ^= 0x40;
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::FileChecksumMismatch
    );
}

#[test]
fn trailing_garbage_is_a_file_checksum_mismatch() {
    let mut bytes = v2_bytes();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::FileChecksumMismatch
    );
}

#[test]
fn corrupt_row_count_is_a_file_checksum_mismatch() {
    // The rows field is framing, not part payload: only the footer CRC
    // covers it, and it must — a v1 reader would silently return a relation
    // with the wrong row count here.
    let mut bytes = v2_bytes();
    bytes[8] ^= 0x01;
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::FileChecksumMismatch
    );
}

// The v1 cases pin the *structural* errors: with no checksums in the way,
// hostile fields must be caught by the typed limit/bounds checks that also
// serve as the v2 defense-in-depth layer.

#[test]
fn v1_hostile_column_count_is_limit_exceeded() {
    let mut bytes = v1_bytes();
    bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::LimitExceeded("column count")
    );
}

#[test]
fn v1_hostile_block_count_is_limit_exceeded() {
    let mut bytes = v1_bytes();
    // block_count u32 sits 8 bytes before the first payload (count + len).
    let at = first_payload_offset(1, 0, false) - 8;
    bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::LimitExceeded("block count")
    );
}

#[test]
fn v1_oversized_block_length_is_unexpected_end() {
    let mut bytes = v1_bytes();
    let at = first_payload_offset(1, 0, false) - 4;
    bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::UnexpectedEnd
    );
}

#[test]
fn v1_bad_scheme_code_is_invalid_scheme() {
    let mut bytes = v1_bytes();
    let payload = first_payload_offset(1, 0, false);
    bytes[payload] = 0xEE; // scheme byte: no such code
    assert_eq!(
        decompress(&bytes, &small_cfg()).unwrap_err(),
        Error::InvalidScheme(0xEE)
    );
}

#[test]
fn v1_mid_cascade_truncation_errors_cleanly() {
    let bytes = v1_bytes();
    let payload = first_payload_offset(1, 0, false);
    // Cut inside the first block's payload: the cascade decoder must come
    // back with a typed error, never a panic.
    let err = decompress(&bytes[..payload + 16], &small_cfg()).unwrap_err();
    assert!(
        matches!(
            err,
            Error::UnexpectedEnd
                | Error::Corrupt(_)
                | Error::Substrate { .. }
                | Error::LimitExceeded(_)
        ),
        "got {err:?}"
    );
}

#[test]
fn every_error_variant_displays() {
    // Display is part of the contract (callers log these); keep each
    // variant's message stable and non-empty.
    for (err, needle) in [
        (Error::UnexpectedEnd, "unexpectedly"),
        (Error::InvalidScheme(7), "scheme code 7"),
        (Error::Corrupt("x"), "x"),
        (Error::LimitExceeded("block count"), "block count"),
        (
            Error::Substrate { codec: "fsst", detail: "boom".into() },
            "fsst",
        ),
        (Error::ChecksumMismatch { column: 2, part: 9 }, "column 2"),
        (Error::FileChecksumMismatch, "footer"),
    ] {
        assert!(err.to_string().contains(needle), "{err:?}");
    }
}
