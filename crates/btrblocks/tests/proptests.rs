//! Randomized round-trip tests: the whole cascading compressor must
//! round-trip arbitrary columns bitwise, under every scheme and both SIMD
//! modes. Deterministic (seeded xorshift) so runs are reproducible offline.

use btr_corrupt::rng::Xorshift;
use btrblocks::block::{compress_block, compress_block_with, decompress_block, BlockRef};
use btrblocks::{
    decompress_block_into, Column, ColumnData, ColumnType, Config, DecodeScratch, DecodedColumn,
    Relation, SchemeCode, SimdMode, StringArena, StringViews,
};

const CASES: usize = 64;

fn small_cfg(simd: SimdMode) -> Config {
    Config {
        block_size: 256, // force multi-block relations even for small inputs
        simd,
        ..Config::default()
    }
}

fn simd_mode(case: usize) -> SimdMode {
    if case.is_multiple_of(2) {
        SimdMode::Auto
    } else {
        SimdMode::ForceScalar
    }
}

/// Four integer shapes: arbitrary, tiny-range, run-heavy, dominant-with-
/// exceptions — the distributions the int schemes are specialized for.
fn arb_ints(rng: &mut Xorshift) -> Vec<i32> {
    match rng.gen_range(0..4u32) {
        0 => {
            let len = rng.gen_range(0..1500usize);
            (0..len).map(|_| rng.next_u32() as i32).collect()
        }
        1 => {
            let len = rng.gen_range(0..1500usize);
            (0..len).map(|_| rng.gen_range(-5i32..5)).collect()
        }
        2 => {
            let runs = rng.gen_range(0..60usize);
            let mut out = Vec::new();
            for _ in 0..runs {
                let v = rng.next_u32() as i32;
                let n = rng.gen_range(1..40usize);
                out.extend(std::iter::repeat_n(v, n));
            }
            out
        }
        _ => {
            let len = rng.gen_range(0..1500usize);
            (0..len)
                .map(|_| if rng.gen_bool(0.9) { 0 } else { rng.next_u32() as i32 })
                .collect()
        }
    }
}

/// Three double shapes: raw bit patterns (incl. NaN payloads), price-like
/// (PDE-friendly), low-cardinality.
fn arb_doubles(rng: &mut Xorshift) -> Vec<f64> {
    match rng.gen_range(0..3u32) {
        0 => {
            let len = rng.gen_range(0..1000usize);
            (0..len).map(|_| f64::from_bits(rng.next_u64())).collect()
        }
        1 => {
            let len = rng.gen_range(0..1000usize);
            (0..len)
                .map(|_| rng.gen_range(0i32..100_000) as f64 / 100.0)
                .collect()
        }
        _ => {
            const CHOICES: [f64; 5] = [0.0, 83.2833, 3.05, f64::NAN, -0.0];
            let len = rng.gen_range(0..1000usize);
            (0..len).map(|_| CHOICES[rng.gen_range(0usize..5)]).collect()
        }
    }
}

/// Three string shapes: arbitrary bytes, low-cardinality words, and
/// prefix-sharing URLs.
fn arb_strings(rng: &mut Xorshift) -> Vec<Vec<u8>> {
    match rng.gen_range(0..3u32) {
        0 => {
            let count = rng.gen_range(0..400usize);
            (0..count)
                .map(|_| {
                    let len = rng.gen_range(0..30usize);
                    let mut s = vec![0u8; len];
                    rng.fill_bytes(&mut s);
                    s
                })
                .collect()
        }
        1 => {
            const WORDS: [&[u8]; 4] = [b"BRONX", b"QUEENS", b"", "Maceió".as_bytes()];
            let count = rng.gen_range(0..600usize);
            (0..count).map(|_| WORDS[rng.gen_range(0usize..4)].to_vec()).collect()
        }
        _ => {
            let count = rng.gen_range(0..400usize);
            (0..count)
                .map(|_| {
                    format!("https://example.com/page/{}", rng.gen_range(0u32..50)).into_bytes()
                })
                .collect()
        }
    }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn int_blocks_roundtrip() {
    let mut rng = Xorshift::new(0x51);
    for case in 0..CASES {
        let values = arb_ints(&mut rng);
        let cfg = small_cfg(simd_mode(case));
        let (bytes, _) = compress_block(BlockRef::Int(&values), &cfg);
        match decompress_block(&bytes, ColumnType::Integer, &cfg).unwrap() {
            DecodedColumn::Int(out) => assert_eq!(out, values),
            _ => panic!("wrong decoded type"),
        }
    }
}

#[test]
fn double_blocks_roundtrip() {
    let mut rng = Xorshift::new(0x52);
    for case in 0..CASES {
        let values = arb_doubles(&mut rng);
        let cfg = small_cfg(simd_mode(case));
        let (bytes, _) = compress_block(BlockRef::Double(&values), &cfg);
        match decompress_block(&bytes, ColumnType::Double, &cfg).unwrap() {
            DecodedColumn::Double(out) => assert!(bits_eq(&values, &out)),
            _ => panic!("wrong decoded type"),
        }
    }
}

#[test]
fn string_blocks_roundtrip() {
    let mut rng = Xorshift::new(0x53);
    for case in 0..CASES {
        let strings = arb_strings(&mut rng);
        let cfg = small_cfg(simd_mode(case));
        let arena = StringArena::from_strs(&strings);
        let (bytes, _) = compress_block(BlockRef::Str(&arena), &cfg);
        match decompress_block(&bytes, ColumnType::String, &cfg).unwrap() {
            DecodedColumn::Str(views) => {
                assert_eq!(views.len(), strings.len());
                for (i, s) in strings.iter().enumerate() {
                    assert_eq!(views.get(i), s.as_slice());
                }
            }
            _ => panic!("wrong decoded type"),
        }
    }
}

#[test]
fn every_int_scheme_roundtrips_when_forced() {
    let mut rng = Xorshift::new(0x54);
    for _ in 0..CASES {
        let values = arb_ints(&mut rng);
        let cfg = Config::default();
        for code in [
            SchemeCode::Uncompressed,
            SchemeCode::Rle,
            SchemeCode::Dict,
            SchemeCode::Frequency,
            SchemeCode::FastPfor,
            SchemeCode::FastBp128,
        ] {
            let bytes = compress_block_with(code, BlockRef::Int(&values), &cfg);
            match decompress_block(&bytes, ColumnType::Integer, &cfg).unwrap() {
                DecodedColumn::Int(out) => assert_eq!(&out, &values, "scheme {code:?}"),
                _ => panic!("wrong decoded type for {code:?}"),
            }
        }
    }
}

#[test]
fn every_double_scheme_roundtrips_when_forced() {
    let mut rng = Xorshift::new(0x55);
    for _ in 0..CASES {
        let values = arb_doubles(&mut rng);
        let cfg = Config::default();
        for code in [
            SchemeCode::Uncompressed,
            SchemeCode::Rle,
            SchemeCode::Dict,
            SchemeCode::Frequency,
            SchemeCode::Pseudodecimal,
        ] {
            let bytes = compress_block_with(code, BlockRef::Double(&values), &cfg);
            match decompress_block(&bytes, ColumnType::Double, &cfg).unwrap() {
                DecodedColumn::Double(out) => {
                    assert!(bits_eq(&values, &out), "scheme {code:?}")
                }
                _ => panic!("wrong decoded type for {code:?}"),
            }
        }
    }
}

#[test]
fn every_string_scheme_roundtrips_when_forced() {
    let mut rng = Xorshift::new(0x56);
    for _ in 0..CASES {
        let strings = arb_strings(&mut rng);
        let cfg = Config::default();
        let arena = StringArena::from_strs(&strings);
        for code in [
            SchemeCode::Uncompressed,
            SchemeCode::Dict,
            SchemeCode::DictFsst,
            SchemeCode::Fsst,
        ] {
            let bytes = compress_block_with(code, BlockRef::Str(&arena), &cfg);
            match decompress_block(&bytes, ColumnType::String, &cfg).unwrap() {
                DecodedColumn::Str(views) => {
                    for (i, s) in strings.iter().enumerate() {
                        assert_eq!(views.get(i), s.as_slice(), "scheme {code:?}");
                    }
                }
                _ => panic!("wrong decoded type for {code:?}"),
            }
        }
    }
}

#[test]
fn relations_roundtrip_via_file_bytes() {
    let mut rng = Xorshift::new(0x57);
    for case in 0..CASES {
        let ints = arb_ints(&mut rng);
        let cfg = small_cfg(simd_mode(case));
        let n = ints.len();
        let doubles: Vec<f64> = ints.iter().map(|&i| f64::from(i) * 0.5).collect();
        let strings: Vec<String> = ints.iter().map(|&i| format!("s{}", i % 17)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int(ints.clone())),
            Column::new("d", ColumnData::Double(doubles)),
            Column::new("s", ColumnData::Str(StringArena::from_strs(&refs))),
        ]);
        assert_eq!(rel.rows(), n);
        let bytes = btrblocks::compress(&rel, &cfg).unwrap().to_bytes();
        let restored = btrblocks::decompress(&bytes, &cfg).unwrap();
        assert_eq!(rel, restored);
    }
}

#[test]
fn block_parallel_compression_matches_serial() {
    // Block-granular parallel compression must be byte-identical to the
    // serial path for any relation shape and any worker count — including a
    // single-column relation, where the old per-column fan-out degenerated
    // to one worker.
    let mut rng = Xorshift::new(0xB10C);
    for case in 0..CASES {
        let cfg = small_cfg(simd_mode(case));
        let ints = arb_ints(&mut rng);
        let n = ints.len();
        let doubles: Vec<f64> = (0..n).map(|_| f64::from_bits(rng.next_u64())).collect();
        let strings = arb_strings(&mut rng);
        let srefs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
        let mut arena = StringArena::new();
        for s in srefs.iter().take(n) {
            arena.push(s);
        }
        while arena.len() < n {
            arena.push(b"pad");
        }
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int(ints.clone())),
            Column::new("d", ColumnData::Double(doubles)),
            Column::new("s", ColumnData::Str(arena)),
        ]);
        let serial = btrblocks::compress(&rel, &cfg).unwrap();
        let single = Relation::new(vec![Column::new("only", ColumnData::Int(ints))]);
        let single_serial = btrblocks::compress(&single, &cfg).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let par = btrblocks::compress_parallel(&rel, &cfg, threads).unwrap();
            assert_eq!(par, serial, "case {case} threads {threads}");
            assert_eq!(par.to_bytes(), serial.to_bytes(), "case {case} threads {threads}");
            let par = btrblocks::compress_parallel(&single, &cfg, threads).unwrap();
            assert_eq!(par, single_serial, "single column, case {case} threads {threads}");
        }
    }
}

/// A deliberately filthy out-buffer of the right type: stale contents and
/// odd capacities that `decompress_block_into` must fully overwrite.
fn dirty_decoded(ty: ColumnType, rng: &mut Xorshift) -> DecodedColumn {
    let junk = rng.gen_range(1..500usize);
    match ty {
        ColumnType::Integer => {
            DecodedColumn::Int((0..junk).map(|_| rng.next_u32() as i32).collect())
        }
        ColumnType::Double => {
            DecodedColumn::Double((0..junk).map(|_| f64::from_bits(rng.next_u64())).collect())
        }
        ColumnType::String => {
            let mut pool = vec![0u8; junk];
            rng.fill_bytes(&mut pool);
            let views = (0..junk / 8).map(|_| rng.next_u64()).collect();
            DecodedColumn::Str(StringViews { pool, views })
        }
    }
}

fn assert_decoded_bits_eq(fresh: &DecodedColumn, reused: &DecodedColumn, label: &str) {
    match (fresh, reused) {
        (DecodedColumn::Int(a), DecodedColumn::Int(b)) => assert_eq!(a, b, "{label}"),
        (DecodedColumn::Double(a), DecodedColumn::Double(b)) => {
            assert!(bits_eq(a, b), "{label}")
        }
        (DecodedColumn::Str(a), DecodedColumn::Str(b)) => {
            assert_eq!(a.len(), b.len(), "{label}");
            for i in 0..a.len() {
                assert_eq!(a.get(i), b.get(i), "{label} string {i}");
            }
        }
        _ => panic!("{label}: decoded type mismatch"),
    }
}

// `decompress_block_into` with a garbage-filled out-buffer and a dirty,
// reused scratch arena must match the allocate-fresh decode bitwise, for
// every scheme. This is the correctness half of the zero-allocation
// guarantee: buffer reuse must never leak stale state into results.
#[test]
fn dirty_scratch_decode_matches_fresh_for_every_scheme() {
    let mut rng = Xorshift::new(0x59);
    // One scratch across all cases and schemes: its pool carries buffers
    // (and their stale capacities) from every previous decode.
    let mut scratch = DecodeScratch::new();
    for case in 0..CASES {
        let cfg = small_cfg(simd_mode(case));
        let ints = arb_ints(&mut rng);
        let doubles = arb_doubles(&mut rng);
        let strings = arb_strings(&mut rng);
        let arena = StringArena::from_strs(&strings);

        let mut jobs: Vec<(ColumnType, SchemeCode, Vec<u8>)> = Vec::new();
        for code in [
            SchemeCode::Uncompressed,
            SchemeCode::OneValue,
            SchemeCode::Rle,
            SchemeCode::Dict,
            SchemeCode::Frequency,
            SchemeCode::FastPfor,
            SchemeCode::FastBp128,
        ] {
            // OneValue only encodes constant blocks; use a constant column.
            let constant = vec![ints.first().copied().unwrap_or(7); ints.len()];
            let vals = if code == SchemeCode::OneValue { &constant } else { &ints };
            jobs.push((
                ColumnType::Integer,
                code,
                compress_block_with(code, BlockRef::Int(vals), &cfg),
            ));
        }
        for code in [
            SchemeCode::Uncompressed,
            SchemeCode::OneValue,
            SchemeCode::Rle,
            SchemeCode::Dict,
            SchemeCode::Frequency,
            SchemeCode::Pseudodecimal,
        ] {
            let constant = vec![doubles.first().copied().unwrap_or(1.5); doubles.len()];
            let vals = if code == SchemeCode::OneValue { &constant } else { &doubles };
            jobs.push((
                ColumnType::Double,
                code,
                compress_block_with(code, BlockRef::Double(vals), &cfg),
            ));
        }
        for code in [
            SchemeCode::Uncompressed,
            SchemeCode::OneValue,
            SchemeCode::Dict,
            SchemeCode::Fsst,
            SchemeCode::DictFsst,
        ] {
            let constant: Vec<&[u8]> = strings
                .iter()
                .map(|_| strings.first().map(|s| s.as_slice()).unwrap_or(b"x"))
                .collect();
            let ca = StringArena::from_strs(&constant);
            let a = if code == SchemeCode::OneValue { &ca } else { &arena };
            jobs.push((
                ColumnType::String,
                code,
                compress_block_with(code, BlockRef::Str(a), &cfg),
            ));
        }

        for (ty, code, bytes) in jobs {
            let fresh = decompress_block(&bytes, ty, &cfg).unwrap();
            let mut out = dirty_decoded(ty, &mut rng);
            decompress_block_into(&bytes, ty, &cfg, &mut scratch, &mut out)
                .unwrap_or_else(|e| panic!("scheme {code:?} case {case}: {e}"));
            assert_decoded_bits_eq(&fresh, &out, &format!("scheme {code:?} case {case}"));
            scratch.recycle(out);
        }
    }
}

#[test]
fn decompress_never_panics_on_corrupt_bytes() {
    // Fuzzing the block parser: must return Err, never panic/UB. (The full
    // 10k-mutation campaigns live in btr-corrupt's integration tests.)
    let mut rng = Xorshift::new(0x58);
    let cfg = Config::default();
    for _ in 0..CASES {
        let len = rng.gen_range(0..300usize);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        let _ = decompress_block(&bytes, ColumnType::Integer, &cfg);
        let _ = decompress_block(&bytes, ColumnType::Double, &cfg);
        let _ = decompress_block(&bytes, ColumnType::String, &cfg);
        // Also flip a valid block's bytes.
        let (valid, _) = compress_block(BlockRef::Int(&[1, 2, 3, 4, 5, 5, 5]), &cfg);
        for (i, b) in valid.iter().enumerate() {
            if i < bytes.len() {
                bytes[i] ^= b;
            }
        }
        let _ = decompress_block(&bytes, ColumnType::Integer, &cfg);
    }
}
