//! Property tests: the whole cascading compressor must round-trip arbitrary
//! columns bitwise, under every scheme and both SIMD modes.

use btrblocks::block::{compress_block, compress_block_with, decompress_block, BlockRef};
use btrblocks::{
    Column, ColumnData, ColumnType, Config, DecodedColumn, Relation, SchemeCode, SimdMode,
    StringArena,
};
use proptest::prelude::*;

fn small_cfg(simd: SimdMode) -> Config {
    Config {
        block_size: 256, // force multi-block relations even for small inputs
        simd,
        ..Config::default()
    }
}

fn arb_ints() -> impl Strategy<Value = Vec<i32>> {
    prop_oneof![
        proptest::collection::vec(any::<i32>(), 0..1500),
        proptest::collection::vec(-5i32..5, 0..1500),
        // Run-heavy data.
        (proptest::collection::vec((any::<i32>(), 1usize..40), 0..60)).prop_map(|runs| {
            runs.into_iter().flat_map(|(v, n)| std::iter::repeat_n(v, n)).collect()
        }),
        // One dominant value with exceptions.
        proptest::collection::vec(prop_oneof![9 => Just(0i32), 1 => any::<i32>()], 0..1500),
    ]
}

fn arb_doubles() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        proptest::collection::vec(any::<u64>().prop_map(f64::from_bits), 0..1000),
        // Price-like (PDE-friendly).
        proptest::collection::vec((0i32..100_000).prop_map(|i| i as f64 / 100.0), 0..1000),
        // Low cardinality.
        proptest::collection::vec(
            prop_oneof![Just(0.0f64), Just(83.2833), Just(3.05), Just(f64::NAN), Just(-0.0)],
            0..1000
        ),
    ]
}

fn arb_strings() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop_oneof![
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..30), 0..400),
        // Low-cardinality words.
        proptest::collection::vec(
            prop_oneof![
                Just(b"BRONX".to_vec()),
                Just(b"QUEENS".to_vec()),
                Just(b"".to_vec()),
                Just("Maceió".as_bytes().to_vec())
            ],
            0..600
        ),
        // Prefix-sharing strings.
        proptest::collection::vec(
            (0u32..50).prop_map(|i| format!("https://example.com/page/{i}").into_bytes()),
            0..400
        ),
    ]
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int_blocks_roundtrip(values in arb_ints(), scalar in any::<bool>()) {
        let cfg = small_cfg(if scalar { SimdMode::ForceScalar } else { SimdMode::Auto });
        let (bytes, _) = compress_block(BlockRef::Int(&values), &cfg);
        match decompress_block(&bytes, ColumnType::Integer, &cfg).unwrap() {
            DecodedColumn::Int(out) => prop_assert_eq!(out, values),
            _ => prop_assert!(false, "wrong decoded type"),
        }
    }

    #[test]
    fn double_blocks_roundtrip(values in arb_doubles(), scalar in any::<bool>()) {
        let cfg = small_cfg(if scalar { SimdMode::ForceScalar } else { SimdMode::Auto });
        let (bytes, _) = compress_block(BlockRef::Double(&values), &cfg);
        match decompress_block(&bytes, ColumnType::Double, &cfg).unwrap() {
            DecodedColumn::Double(out) => prop_assert!(bits_eq(&values, &out)),
            _ => prop_assert!(false, "wrong decoded type"),
        }
    }

    #[test]
    fn string_blocks_roundtrip(strings in arb_strings(), scalar in any::<bool>()) {
        let cfg = small_cfg(if scalar { SimdMode::ForceScalar } else { SimdMode::Auto });
        let arena = StringArena::from_strs(&strings);
        let (bytes, _) = compress_block(BlockRef::Str(&arena), &cfg);
        match decompress_block(&bytes, ColumnType::String, &cfg).unwrap() {
            DecodedColumn::Str(views) => {
                prop_assert_eq!(views.len(), strings.len());
                for (i, s) in strings.iter().enumerate() {
                    prop_assert_eq!(views.get(i), s.as_slice());
                }
            }
            _ => prop_assert!(false, "wrong decoded type"),
        }
    }

    #[test]
    fn every_int_scheme_roundtrips_when_forced(values in arb_ints()) {
        let cfg = Config::default();
        for code in [SchemeCode::Uncompressed, SchemeCode::Rle, SchemeCode::Dict,
                     SchemeCode::Frequency, SchemeCode::FastPfor, SchemeCode::FastBp128] {
            let bytes = compress_block_with(code, BlockRef::Int(&values), &cfg);
            match decompress_block(&bytes, ColumnType::Integer, &cfg).unwrap() {
                DecodedColumn::Int(out) => prop_assert_eq!(&out, &values, "scheme {:?}", code),
                _ => prop_assert!(false),
            }
        }
    }

    #[test]
    fn every_double_scheme_roundtrips_when_forced(values in arb_doubles()) {
        let cfg = Config::default();
        for code in [SchemeCode::Uncompressed, SchemeCode::Rle, SchemeCode::Dict,
                     SchemeCode::Frequency, SchemeCode::Pseudodecimal] {
            let bytes = compress_block_with(code, BlockRef::Double(&values), &cfg);
            match decompress_block(&bytes, ColumnType::Double, &cfg).unwrap() {
                DecodedColumn::Double(out) => prop_assert!(bits_eq(&values, &out), "scheme {:?}", code),
                _ => prop_assert!(false),
            }
        }
    }

    #[test]
    fn every_string_scheme_roundtrips_when_forced(strings in arb_strings()) {
        let cfg = Config::default();
        let arena = StringArena::from_strs(&strings);
        for code in [SchemeCode::Uncompressed, SchemeCode::Dict, SchemeCode::DictFsst, SchemeCode::Fsst] {
            let bytes = compress_block_with(code, BlockRef::Str(&arena), &cfg);
            match decompress_block(&bytes, ColumnType::String, &cfg).unwrap() {
                DecodedColumn::Str(views) => {
                    for (i, s) in strings.iter().enumerate() {
                        prop_assert_eq!(views.get(i), s.as_slice(), "scheme {:?}", code);
                    }
                }
                _ => prop_assert!(false),
            }
        }
    }

    #[test]
    fn relations_roundtrip_via_file_bytes(ints in arb_ints(), scalar in any::<bool>()) {
        let cfg = small_cfg(if scalar { SimdMode::ForceScalar } else { SimdMode::Auto });
        let n = ints.len();
        let doubles: Vec<f64> = ints.iter().map(|&i| f64::from(i) * 0.5).collect();
        let strings: Vec<String> = ints.iter().map(|&i| format!("s{}", i % 17)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int(ints.clone())),
            Column::new("d", ColumnData::Double(doubles)),
            Column::new("s", ColumnData::Str(StringArena::from_strs(&refs))),
        ]);
        prop_assert_eq!(rel.rows(), n);
        let bytes = btrblocks::compress(&rel, &cfg).unwrap().to_bytes();
        let restored = btrblocks::decompress(&bytes, &cfg).unwrap();
        prop_assert_eq!(rel, restored);
    }

    #[test]
    fn decompress_never_panics_on_corrupt_bytes(mut bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // Fuzzing the block parser: must return Err, never panic/UB.
        let cfg = Config::default();
        let _ = decompress_block(&bytes, ColumnType::Integer, &cfg);
        let _ = decompress_block(&bytes, ColumnType::Double, &cfg);
        let _ = decompress_block(&bytes, ColumnType::String, &cfg);
        // Also flip a valid block's bytes.
        let (valid, _) = compress_block(BlockRef::Int(&[1, 2, 3, 4, 5, 5, 5]), &cfg);
        for (i, b) in valid.iter().enumerate() {
            if i < bytes.len() {
                bytes[i] ^= b;
            }
        }
        let _ = decompress_block(&bytes, ColumnType::Integer, &cfg);
    }
}
