//! Property tests for predicate pushdown and zone-map pruning: the compressed
//! evaluation must agree with decompress-then-filter for every scheme, every
//! operator, and arbitrary data; pruning must never drop a matching block.

use btrblocks::block::{compress_block_with, BlockRef};
use btrblocks::metadata::{pruned_filter, Sidecar};
use btrblocks::query::{filter_block, CmpOp, Literal};
use btrblocks::{Column, ColumnData, Config, Relation, SchemeCode, StringArena};
use proptest::prelude::*;

const OPS: [CmpOp; 5] = [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

fn cmp<T: PartialOrd>(op: CmpOp, v: &T, l: &T) -> bool {
    match op {
        CmpOp::Eq => v == l,
        CmpOp::Lt => v < l,
        CmpOp::Le => v <= l,
        CmpOp::Gt => v > l,
        CmpOp::Ge => v >= l,
    }
}

fn arb_ints() -> impl Strategy<Value = Vec<i32>> {
    prop_oneof![
        proptest::collection::vec(-20i32..20, 0..800),
        proptest::collection::vec(any::<i32>(), 0..400),
        // Run-heavy.
        (proptest::collection::vec((-5i32..5, 1usize..50), 0..40)).prop_map(|runs| {
            runs.into_iter().flat_map(|(v, n)| std::iter::repeat_n(v, n)).collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn int_pushdown_matches_reference(values in arb_ints(), lit in -20i32..20, op_idx in 0usize..5) {
        let cfg = Config::default();
        let op = OPS[op_idx];
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| cmp(op, v, &lit).then_some(i as u32))
            .collect();
        for code in [SchemeCode::Uncompressed, SchemeCode::Rle, SchemeCode::Dict,
                     SchemeCode::Frequency, SchemeCode::FastPfor, SchemeCode::FastBp128] {
            let bytes = compress_block_with(code, BlockRef::Int(&values), &cfg);
            let got = filter_block(&bytes, btrblocks::ColumnType::Integer, op, &Literal::Int(lit), &cfg)
                .unwrap();
            prop_assert_eq!(got.iter().collect::<Vec<_>>(), expected.clone(), "scheme {:?} op {:?}", code, op);
        }
    }

    #[test]
    fn double_pushdown_matches_reference(
        values in proptest::collection::vec(
            prop_oneof![( -50i32..50).prop_map(|i| f64::from(i) * 0.25), Just(f64::NAN)], 0..600),
        lit in -50i32..50,
        op_idx in 0usize..5,
    ) {
        let cfg = Config::default();
        let op = OPS[op_idx];
        let lit = f64::from(lit) * 0.25;
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| cmp(op, v, &lit).then_some(i as u32))
            .collect();
        for code in [SchemeCode::Uncompressed, SchemeCode::Rle, SchemeCode::Dict,
                     SchemeCode::Frequency, SchemeCode::Pseudodecimal] {
            let bytes = compress_block_with(code, BlockRef::Double(&values), &cfg);
            let got = filter_block(&bytes, btrblocks::ColumnType::Double, op, &Literal::Double(lit), &cfg)
                .unwrap();
            prop_assert_eq!(got.iter().collect::<Vec<_>>(), expected.clone(), "scheme {:?} op {:?}", code, op);
        }
    }

    #[test]
    fn string_pushdown_matches_reference(
        words in proptest::collection::vec("[a-c]{0,4}", 0..400),
        lit in "[a-c]{0,4}",
        op_idx in 0usize..5,
    ) {
        let cfg = Config::default();
        let op = OPS[op_idx];
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let arena = StringArena::from_strs(&refs);
        let lit_b = lit.as_bytes();
        let expected: Vec<u32> = refs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| cmp(op, &s.as_bytes(), &lit_b).then_some(i as u32))
            .collect();
        for code in [SchemeCode::Uncompressed, SchemeCode::Dict, SchemeCode::DictFsst, SchemeCode::Fsst] {
            let bytes = compress_block_with(code, BlockRef::Str(&arena), &cfg);
            let got = filter_block(
                &bytes,
                btrblocks::ColumnType::String,
                op,
                &Literal::Str(lit_b.to_vec()),
                &cfg,
            )
            .unwrap();
            prop_assert_eq!(got.iter().collect::<Vec<_>>(), expected.clone(), "scheme {:?} op {:?}", code, op);
        }
    }

    #[test]
    fn pruned_filter_never_loses_matches(
        values in proptest::collection::vec(-1000i32..1000, 1..2000),
        lit in -1000i32..1000,
        op_idx in 0usize..5,
        block_size in 50usize..500,
    ) {
        let cfg = Config { block_size, ..Config::default() };
        let op = OPS[op_idx];
        let rel = Relation::new(vec![Column::new("x", ColumnData::Int(values.clone()))]);
        let compressed = btrblocks::compress(&rel, &cfg).unwrap();
        let sidecar = Sidecar::build(&rel, cfg.block_size);
        let (matches, decoded) =
            pruned_filter(&compressed, &sidecar, "x", op, &Literal::Int(lit), &cfg).unwrap();
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| cmp(op, v, &lit).then_some(i as u32))
            .collect();
        prop_assert_eq!(matches.iter().collect::<Vec<_>>(), expected);
        prop_assert!(decoded <= compressed.columns[0].blocks.len());
    }

    #[test]
    fn sidecar_serialization_roundtrips(
        ints in proptest::collection::vec(any::<i32>(), 0..500),
        doubles in proptest::collection::vec(any::<u64>().prop_map(f64::from_bits), 0..500),
        block_size in 10usize..200,
    ) {
        let n = ints.len().min(doubles.len());
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int(ints[..n].to_vec())),
            Column::new("d", ColumnData::Double(doubles[..n].to_vec())),
        ]);
        let sidecar = Sidecar::build(&rel, block_size);
        let back = Sidecar::from_bytes(&sidecar.to_bytes()).unwrap();
        // NaN-bearing zones break Eq; compare through re-serialization.
        prop_assert_eq!(back.to_bytes(), sidecar.to_bytes());
    }
}
