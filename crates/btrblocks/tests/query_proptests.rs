//! Randomized tests for predicate pushdown and zone-map pruning: the
//! compressed evaluation must agree with decompress-then-filter for every
//! scheme, every operator, and arbitrary data; pruning must never drop a
//! matching block. Deterministic (seeded xorshift) so runs reproduce offline.

use btr_corrupt::rng::Xorshift;
use btrblocks::block::{compress_block_with, BlockRef};
use btrblocks::metadata::{pruned_filter, Sidecar};
use btrblocks::query::{filter_block, CmpOp, Literal};
use btrblocks::{Column, ColumnData, Config, Relation, SchemeCode, StringArena};

const OPS: [CmpOp; 5] = [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
const CASES: usize = 48;

fn cmp<T: PartialOrd>(op: CmpOp, v: &T, l: &T) -> bool {
    match op {
        CmpOp::Eq => v == l,
        CmpOp::Lt => v < l,
        CmpOp::Le => v <= l,
        CmpOp::Gt => v > l,
        CmpOp::Ge => v >= l,
    }
}

/// Three shapes: tiny-range, arbitrary, and run-heavy integers.
fn arb_ints(rng: &mut Xorshift) -> Vec<i32> {
    match rng.gen_range(0..3u32) {
        0 => {
            let len = rng.gen_range(0..800usize);
            (0..len).map(|_| rng.gen_range(-20i32..20)).collect()
        }
        1 => {
            let len = rng.gen_range(0..400usize);
            (0..len).map(|_| rng.next_u32() as i32).collect()
        }
        _ => {
            let runs = rng.gen_range(0..40usize);
            let mut out = Vec::new();
            for _ in 0..runs {
                let v = rng.gen_range(-5i32..5);
                let n = rng.gen_range(1..50usize);
                out.extend(std::iter::repeat_n(v, n));
            }
            out
        }
    }
}

fn word(rng: &mut Xorshift) -> String {
    let len = rng.gen_range(0..=4usize);
    (0..len).map(|_| (b'a' + rng.gen_range(0u8..3)) as char).collect()
}

#[test]
fn int_pushdown_matches_reference() {
    let mut rng = Xorshift::new(0x61);
    for case in 0..CASES {
        let values = arb_ints(&mut rng);
        let lit = rng.gen_range(-20i32..20);
        let op = OPS[case % OPS.len()];
        let cfg = Config::default();
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| cmp(op, v, &lit).then_some(i as u32))
            .collect();
        for code in [
            SchemeCode::Uncompressed,
            SchemeCode::Rle,
            SchemeCode::Dict,
            SchemeCode::Frequency,
            SchemeCode::FastPfor,
            SchemeCode::FastBp128,
        ] {
            let bytes = compress_block_with(code, BlockRef::Int(&values), &cfg);
            let got =
                filter_block(&bytes, btrblocks::ColumnType::Integer, op, &Literal::Int(lit), &cfg)
                    .unwrap();
            assert_eq!(
                got.iter().collect::<Vec<_>>(),
                expected,
                "scheme {code:?} op {op:?}"
            );
        }
    }
}

#[test]
fn double_pushdown_matches_reference() {
    let mut rng = Xorshift::new(0x62);
    for case in 0..CASES {
        let len = rng.gen_range(0..600usize);
        let values: Vec<f64> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    f64::NAN
                } else {
                    f64::from(rng.gen_range(-50i32..50)) * 0.25
                }
            })
            .collect();
        let op = OPS[case % OPS.len()];
        let lit = f64::from(rng.gen_range(-50i32..50)) * 0.25;
        let cfg = Config::default();
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| cmp(op, v, &lit).then_some(i as u32))
            .collect();
        for code in [
            SchemeCode::Uncompressed,
            SchemeCode::Rle,
            SchemeCode::Dict,
            SchemeCode::Frequency,
            SchemeCode::Pseudodecimal,
        ] {
            let bytes = compress_block_with(code, BlockRef::Double(&values), &cfg);
            let got = filter_block(
                &bytes,
                btrblocks::ColumnType::Double,
                op,
                &Literal::Double(lit),
                &cfg,
            )
            .unwrap();
            assert_eq!(
                got.iter().collect::<Vec<_>>(),
                expected,
                "scheme {code:?} op {op:?}"
            );
        }
    }
}

#[test]
fn string_pushdown_matches_reference() {
    let mut rng = Xorshift::new(0x63);
    for case in 0..CASES {
        let count = rng.gen_range(0..400usize);
        let words: Vec<String> = (0..count).map(|_| word(&mut rng)).collect();
        let lit = word(&mut rng);
        let op = OPS[case % OPS.len()];
        let cfg = Config::default();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let arena = StringArena::from_strs(&refs);
        let lit_b = lit.as_bytes();
        let expected: Vec<u32> = refs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| cmp(op, &s.as_bytes(), &lit_b).then_some(i as u32))
            .collect();
        for code in [
            SchemeCode::Uncompressed,
            SchemeCode::Dict,
            SchemeCode::DictFsst,
            SchemeCode::Fsst,
        ] {
            let bytes = compress_block_with(code, BlockRef::Str(&arena), &cfg);
            let got = filter_block(
                &bytes,
                btrblocks::ColumnType::String,
                op,
                &Literal::Str(lit_b.to_vec()),
                &cfg,
            )
            .unwrap();
            assert_eq!(
                got.iter().collect::<Vec<_>>(),
                expected,
                "scheme {code:?} op {op:?}"
            );
        }
    }
}

#[test]
fn pruned_filter_never_loses_matches() {
    let mut rng = Xorshift::new(0x64);
    for case in 0..CASES {
        let len = rng.gen_range(1..2000usize);
        let values: Vec<i32> = (0..len).map(|_| rng.gen_range(-1000i32..1000)).collect();
        let lit = rng.gen_range(-1000i32..1000);
        let op = OPS[case % OPS.len()];
        let block_size = rng.gen_range(50..500usize);
        let cfg = Config { block_size, ..Config::default() };
        let rel = Relation::new(vec![Column::new("x", ColumnData::Int(values.clone()))]);
        let compressed = btrblocks::compress(&rel, &cfg).unwrap();
        let sidecar = Sidecar::build(&rel, cfg.block_size);
        let (matches, decoded) =
            pruned_filter(&compressed, &sidecar, "x", op, &Literal::Int(lit), &cfg).unwrap();
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| cmp(op, v, &lit).then_some(i as u32))
            .collect();
        assert_eq!(matches.iter().collect::<Vec<_>>(), expected);
        assert!(decoded <= compressed.columns[0].blocks.len());
    }
}

#[test]
fn sidecar_serialization_roundtrips() {
    let mut rng = Xorshift::new(0x65);
    for _ in 0..CASES {
        let n = rng.gen_range(0..500usize);
        let ints: Vec<i32> = (0..n).map(|_| rng.next_u32() as i32).collect();
        let doubles: Vec<f64> = (0..n).map(|_| f64::from_bits(rng.next_u64())).collect();
        let block_size = rng.gen_range(10..200usize);
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int(ints)),
            Column::new("d", ColumnData::Double(doubles)),
        ]);
        let sidecar = Sidecar::build(&rel, block_size);
        let back = Sidecar::from_bytes(&sidecar.to_bytes()).unwrap();
        // NaN-bearing zones break Eq; compare through re-serialization.
        assert_eq!(back.to_bytes(), sidecar.to_bytes());
    }
}
