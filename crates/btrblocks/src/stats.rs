//! Per-block statistics, collected in a single pass (plus one hash map).
//!
//! The selection algorithm uses these to filter out non-viable schemes before
//! any sample compression happens (paper §3, step 1–2): e.g. RLE is excluded
//! when the average run length is below 2 and Frequency when more than half
//! the values are unique.

use crate::fxhash::FxHashMap;
use crate::types::StringArena;

/// Statistics over a block of integers.
#[derive(Debug, Clone)]
pub struct IntegerStats {
    /// Number of values.
    pub count: usize,
    /// Minimum value (0 for empty blocks).
    pub min: i32,
    /// Maximum value (0 for empty blocks).
    pub max: i32,
    /// Number of distinct values.
    pub unique_count: usize,
    /// Average length of equal-value runs.
    pub average_run_length: f64,
    /// Most frequent value and its occurrence count.
    pub top_value: i32,
    /// Occurrences of `top_value`.
    pub top_count: usize,
}

impl IntegerStats {
    /// Collects statistics over `values`.
    pub fn collect(values: &[i32]) -> Self {
        let mut counts: FxHashMap<i32, usize> =
            FxHashMap::with_capacity_and_hasher(values.len() / 4 + 1, Default::default());
        Self::collect_with_map(values, &mut counts)
    }

    /// [`collect`](Self::collect) reusing a caller-owned count map (cleared
    /// first) so the encode scratch arena can pool it across blocks.
    pub fn collect_with_map(values: &[i32], counts: &mut FxHashMap<i32, usize>) -> Self {
        counts.clear();
        let mut min = i32::MAX;
        let mut max = i32::MIN;
        let mut runs = 0usize;
        let mut prev: Option<i32> = None;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            *counts.entry(v).or_insert(0) += 1;
            if prev != Some(v) {
                runs += 1;
            }
            prev = Some(v);
        }
        // Ties on count break toward the larger value: the winner must not
        // depend on hash-map iteration order (and hence map capacity), or
        // pooled maps would make serial and parallel output diverge.
        let (top_value, top_count) = counts
            .iter()
            .max_by_key(|&(&v, &c)| (c, v))
            .map(|(&v, &c)| (v, c))
            .unwrap_or((0, 0));
        IntegerStats {
            count: values.len(),
            min: if values.is_empty() { 0 } else { min },
            max: if values.is_empty() { 0 } else { max },
            unique_count: counts.len(),
            average_run_length: avg_run(values.len(), runs),
            top_value,
            top_count,
        }
    }

    /// Fraction of values that are distinct (0.0 for empty blocks).
    pub fn unique_fraction(&self) -> f64 {
        fraction(self.unique_count, self.count)
    }
}

/// Statistics over a block of doubles. Values are keyed by their raw bits, so
/// `-0.0` and `0.0` count as distinct and every NaN payload is distinct —
/// matching the bitwise-lossless contract of the format.
#[derive(Debug, Clone)]
pub struct DoubleStats {
    /// Number of values.
    pub count: usize,
    /// Number of distinct bit patterns.
    pub unique_count: usize,
    /// Average length of equal-bit-pattern runs.
    pub average_run_length: f64,
    /// Most frequent value (by bit pattern).
    pub top_value: f64,
    /// Occurrences of `top_value`.
    pub top_count: usize,
}

impl DoubleStats {
    /// Collects statistics over `values`.
    pub fn collect(values: &[f64]) -> Self {
        let mut counts: FxHashMap<u64, usize> =
            FxHashMap::with_capacity_and_hasher(values.len() / 4 + 1, Default::default());
        Self::collect_with_map(values, &mut counts)
    }

    /// [`collect`](Self::collect) reusing a caller-owned count map (cleared
    /// first) so the encode scratch arena can pool it across blocks.
    pub fn collect_with_map(values: &[f64], counts: &mut FxHashMap<u64, usize>) -> Self {
        counts.clear();
        let mut runs = 0usize;
        let mut prev: Option<u64> = None;
        for &v in values {
            let bits = v.to_bits();
            *counts.entry(bits).or_insert(0) += 1;
            if prev != Some(bits) {
                runs += 1;
            }
            prev = Some(bits);
        }
        // Deterministic tie-break by bit pattern (see IntegerStats).
        let (top_bits, top_count) = counts
            .iter()
            .max_by_key(|&(&v, &c)| (c, v))
            .map(|(&v, &c)| (v, c))
            .unwrap_or((0, 0));
        DoubleStats {
            count: values.len(),
            unique_count: counts.len(),
            average_run_length: avg_run(values.len(), runs),
            top_value: f64::from_bits(top_bits),
            top_count,
        }
    }

    /// Fraction of values that are distinct (0.0 for empty blocks).
    pub fn unique_fraction(&self) -> f64 {
        fraction(self.unique_count, self.count)
    }
}

/// Statistics over a block of strings.
#[derive(Debug, Clone)]
pub struct StringStats {
    /// Number of strings.
    pub count: usize,
    /// Number of distinct strings.
    pub unique_count: usize,
    /// Average length of equal-string runs.
    pub average_run_length: f64,
    /// Total payload bytes.
    pub total_bytes: usize,
    /// Total payload bytes of the distinct strings only.
    pub unique_bytes: usize,
    /// Index of the most frequent string.
    pub top_index: usize,
    /// Occurrences of the most frequent string.
    pub top_count: usize,
}

impl StringStats {
    /// Collects statistics over `arena`.
    pub fn collect(arena: &StringArena) -> Self {
        let mut counts: FxHashMap<&[u8], (usize, usize)> =
            FxHashMap::with_capacity_and_hasher(arena.len() / 4 + 1, Default::default());
        let mut runs = 0usize;
        let mut prev: Option<&[u8]> = None;
        let mut unique_bytes = 0usize;
        for i in 0..arena.len() {
            let s = arena.get(i);
            let entry = counts.entry(s).or_insert_with(|| {
                unique_bytes += s.len();
                (0, i)
            });
            entry.0 += 1;
            if prev != Some(s) {
                runs += 1;
            }
            prev = Some(s);
        }
        // Deterministic tie-break toward the earliest first occurrence
        // (see IntegerStats for why iteration order must not decide).
        let (top_index, top_count) = counts
            .values()
            .max_by_key(|&&(c, i)| (c, std::cmp::Reverse(i)))
            .map(|&(c, i)| (i, c))
            .unwrap_or((0, 0));
        StringStats {
            count: arena.len(),
            unique_count: counts.len(),
            average_run_length: avg_run(arena.len(), runs),
            total_bytes: arena.total_bytes(),
            unique_bytes,
            top_index,
            top_count,
        }
    }

    /// Fraction of strings that are distinct (0.0 for empty blocks).
    pub fn unique_fraction(&self) -> f64 {
        fraction(self.unique_count, self.count)
    }
}

fn avg_run(count: usize, runs: usize) -> f64 {
    if runs == 0 {
        0.0
    } else {
        count as f64 / runs as f64
    }
}

fn fraction(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_stats_basic() {
        let s = IntegerStats::collect(&[5, 5, 5, 1, 1, 9]);
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.unique_count, 3);
        assert_eq!(s.top_value, 5);
        assert_eq!(s.top_count, 3);
        assert!((s.average_run_length - 2.0).abs() < 1e-12);
    }

    #[test]
    fn integer_stats_empty() {
        let s = IntegerStats::collect(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.unique_count, 0);
        assert_eq!(s.average_run_length, 0.0);
        assert_eq!(s.unique_fraction(), 0.0);
    }

    #[test]
    fn double_stats_bitwise_uniqueness() {
        let s = DoubleStats::collect(&[0.0, -0.0, f64::NAN, f64::NAN]);
        // -0.0 differs from 0.0 bitwise; equal-payload NaNs are one value.
        assert_eq!(s.unique_count, 3);
        assert_eq!(s.top_count, 2);
    }

    #[test]
    fn string_stats_basic() {
        let arena = StringArena::from_strs(&["x", "x", "yy", "x", "zzz"]);
        let s = StringStats::collect(&arena);
        assert_eq!(s.unique_count, 3);
        assert_eq!(s.top_count, 3);
        assert_eq!(arena.get(s.top_index), b"x");
        assert_eq!(s.total_bytes, 8);
        assert_eq!(s.unique_bytes, 6);
    }

    #[test]
    fn top_value_ties_break_deterministically() {
        // 3 and 7 both appear twice; the larger value must win regardless of
        // the count map's capacity (and hence iteration order).
        let values = [7, 3, 3, 7, 1];
        for extra_capacity in [0usize, 16, 1024] {
            let mut map =
                FxHashMap::with_capacity_and_hasher(extra_capacity, Default::default());
            let s = IntegerStats::collect_with_map(&values, &mut map);
            assert_eq!((s.top_value, s.top_count), (7, 2));
        }
        let d = DoubleStats::collect(&[2.0, 8.0, 8.0, 2.0]);
        assert_eq!((d.top_value, d.top_count), (8.0, 2));
        let arena = StringArena::from_strs(&["b", "a", "a", "b"]);
        let st = StringStats::collect(&arena);
        // Equal counts: earliest first occurrence wins.
        assert_eq!((st.top_index, st.top_count), (0, 2));
    }

    #[test]
    fn collect_with_map_matches_collect() {
        let values: Vec<i32> = (0..500).map(|i| i % 37).collect();
        let fresh = IntegerStats::collect(&values);
        let mut map = FxHashMap::default();
        map.insert(999, 999); // dirty map must be cleared
        let pooled = IntegerStats::collect_with_map(&values, &mut map);
        assert_eq!(
            (fresh.unique_count, fresh.top_value, fresh.top_count, fresh.min, fresh.max),
            (pooled.unique_count, pooled.top_value, pooled.top_count, pooled.min, pooled.max)
        );
    }

    #[test]
    fn run_length_of_constant_column() {
        let s = IntegerStats::collect(&[7; 1000]);
        assert_eq!(s.average_run_length, 1000.0);
        assert_eq!(s.unique_count, 1);
    }
}
