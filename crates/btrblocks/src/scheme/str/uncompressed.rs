//! Raw string storage: offsets + byte pool.

use crate::config::Config;
use crate::scratch::DecodeScratch;
use crate::types::{StringArena, StringViews};
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};

/// Payload: `[pool_len: u32][pool bytes][offsets: (count + 1) × u32]`.
pub fn compress(arena: &StringArena, out: &mut Vec<u8>) {
    // lint: allow(cast) encode side: arena pools are far smaller than 4 GiB
    out.put_u32(arena.bytes.len() as u32);
    out.extend_from_slice(&arena.bytes);
    out.put_u32_slice(&arena.offsets);
}

/// Reads `count` raw strings as views over the embedded pool.
pub fn decompress(r: &mut Reader<'_>, count: usize) -> Result<StringViews> {
    let mut scratch = DecodeScratch::new();
    let mut out = StringViews::default();
    decompress_into(r, count, &Config::default(), &mut scratch, &mut out)?;
    Ok(out)
}

/// Reads `count` raw strings into `out`, reusing its pool and view buffers
/// and leasing the offset temporary from `scratch`.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    _cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut StringViews,
) -> Result<()> {
    let pool_len = r.u32()? as usize;
    let pool_bytes = r.take(pool_len)?;
    out.pool.clear();
    out.pool.extend_from_slice(pool_bytes);
    let mut offsets = scratch.lease_u32(count + 1);
    let result = (|| -> Result<()> {
        r.u32_vec_into(count + 1, &mut offsets)?;
        out.views.clear();
        out.views.reserve(count);
        for w in offsets.windows(2) {
            // lint: allow(indexing) windows(2) yields exactly 2 elements
            let (start, end) = (w[0], w[1]);
            if end < start || end as usize > pool_len {
                return Err(Error::Corrupt("string offsets not monotone"));
            }
            out.views.push(StringViews::pack(start, end - start));
        }
        Ok(())
    })();
    scratch.release_u32(offsets);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let arena = StringArena::from_strs(&["hello", "", "wörld"]);
        let mut buf = Vec::new();
        compress(&arena, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress(&mut r, 3).unwrap();
        assert_eq!(out.get(0), b"hello");
        assert_eq!(out.get(1), b"");
        assert_eq!(out.get(2), "wörld".as_bytes());
    }

    #[test]
    fn corrupt_offsets_error() {
        let arena = StringArena::from_strs(&["ab", "cd"]);
        let mut buf = Vec::new();
        compress(&arena, &mut buf);
        // offsets live at the end; make them non-monotone.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&1u32.to_le_bytes());
        let mut r = Reader::new(&buf);
        assert!(decompress(&mut r, 2).is_err());
    }
}
