//! One Value for strings: the whole block is one repeated string.

use crate::config::Config;
use crate::scratch::DecodeScratch;
use crate::types::{StringArena, StringViews};
use crate::writer::{Reader, WriteLe};
use crate::Result;

/// Payload: `[len: u32][bytes]`.
pub fn compress(arena: &StringArena, out: &mut Vec<u8>) {
    let s: &[u8] = if arena.is_empty() { b"" } else { arena.get(0) };
    debug_assert!((0..arena.len()).all(|i| arena.get(i) == s));
    // lint: allow(cast) encode side: a single string is far smaller than 4 GiB
    out.put_u32(s.len() as u32);
    out.extend_from_slice(s);
}

/// Expands the stored string `count` times (all views share one pool entry).
pub fn decompress(r: &mut Reader<'_>, count: usize) -> Result<StringViews> {
    let mut scratch = DecodeScratch::new();
    let mut out = StringViews::default();
    decompress_into(r, count, &Config::default(), &mut scratch, &mut out)?;
    Ok(out)
}

/// Expands the stored string `count` times into `out`, reusing its buffers.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    _cfg: &Config,
    _scratch: &mut DecodeScratch,
    out: &mut StringViews,
) -> Result<()> {
    let len = r.u32()?;
    let bytes = r.take(len as usize)?;
    out.pool.clear();
    out.pool.extend_from_slice(bytes);
    out.views.clear();
    out.views.resize(count, StringViews::pack(0, len));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let arena = StringArena::from_strs(&["CABLE"; 100]);
        let mut buf = Vec::new();
        compress(&arena, &mut buf);
        assert_eq!(buf.len(), 4 + 5);
        let mut r = Reader::new(&buf);
        let out = decompress(&mut r, 100).unwrap();
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|s| s == b"CABLE"));
    }

    #[test]
    fn empty_string_block() {
        let arena = StringArena::from_strs(&["", ""]);
        let mut buf = Vec::new();
        compress(&arena, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress(&mut r, 2).unwrap();
        assert!(out.iter().all(|s| s.is_empty()));
    }
}
