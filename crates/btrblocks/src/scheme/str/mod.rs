//! String encoding schemes.

pub mod dict;
pub mod dict_fsst;
pub mod fsst;
pub mod onevalue;
pub mod uncompressed;

use crate::config::Config;
use crate::scheme::SchemeCode;
use crate::stats::StringStats;

/// Minimum dictionary-pool size (bytes) before FSST on the dictionary can
/// pay for its symbol table (a serialized table alone costs up to ~2.3 KB).
pub const DICT_FSST_MIN_POOL: usize = 2048;

/// Statistics-based viability filter for string schemes.
pub fn viable(code: SchemeCode, stats: &StringStats, _cfg: &Config) -> bool {
    match code {
        SchemeCode::OneValue => stats.unique_count <= 1,
        // A dictionary needs repetition to pay for itself.
        SchemeCode::Dict => stats.unique_count < stats.count,
        // FSST on the dictionary additionally needs a pool big enough to
        // amortize the symbol table ("applies it to a dictionary when
        // beneficial", paper §2.2).
        SchemeCode::DictFsst => {
            stats.unique_count < stats.count && stats.unique_bytes >= DICT_FSST_MIN_POOL
        }
        // FSST needs actual bytes to find symbols in.
        SchemeCode::Fsst => stats.total_bytes > 0,
        SchemeCode::Uncompressed => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StringArena;

    #[test]
    fn dict_needs_repetition() {
        let cfg = Config::default();
        let unique = StringArena::from_strs(&["a", "b", "c"]);
        assert!(!viable(SchemeCode::Dict, &StringStats::collect(&unique), &cfg));
        let repeated = StringArena::from_strs(&["a", "a", "b"]);
        assert!(viable(SchemeCode::Dict, &StringStats::collect(&repeated), &cfg));
    }

    #[test]
    fn fsst_needs_bytes() {
        let cfg = Config::default();
        let empties = StringArena::from_strs(&["", "", ""]);
        assert!(!viable(SchemeCode::Fsst, &StringStats::collect(&empties), &cfg));
        let real = StringArena::from_strs(&["abc", "", "def"]);
        assert!(viable(SchemeCode::Fsst, &StringStats::collect(&real), &cfg));
    }
}
