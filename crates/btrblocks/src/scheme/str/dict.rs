//! Dictionary encoding for strings, with copy-free decode and the fused
//! RLE+Dict fast path (paper §5).
//!
//! Payload: `[dict_n: u32][pool_len: u32][dict pool bytes][dict offsets:
//! (dict_n + 1) × u32][child block: code sequence]`.
//!
//! Decompression never copies string bytes: each code becomes a fixed-size
//! 64-bit `(offset, len)` view into the dictionary pool, gathered with AVX2.
//! When the code sequence was itself RLE-compressed and runs are long enough
//! (average > `cfg.fused_rle_dict_min_run`), the two decode steps are fused:
//! the dictionary lookup happens per *run* and the view is splat-stored,
//! skipping the intermediate code array entirely.

use crate::config::Config;
use crate::scheme::{self, SchemeCode};
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::simd;
use crate::types::{StringArena, StringViews};
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use crate::fxhash::FxHashMap;

/// Builds `(dictionary arena, codes)` in first-occurrence order.
pub fn encode_dict(arena: &StringArena) -> (StringArena, Vec<i32>) {
    let mut dict = StringArena::new();
    let mut codes = Vec::with_capacity(arena.len());
    encode_dict_into(arena, &mut dict, &mut codes);
    (dict, codes)
}

/// [`encode_dict`] into caller-owned buffers (cleared first). The lookup map
/// keys borrow from `arena`, so it stays function-local — the one allocation
/// the string dictionary keeps on the encode path.
pub fn encode_dict_into(arena: &StringArena, dict: &mut StringArena, codes: &mut Vec<i32>) {
    let mut map: FxHashMap<&[u8], i32> =
        FxHashMap::with_capacity_and_hasher(arena.len() / 4 + 1, Default::default());
    dict.clear();
    codes.clear();
    for i in 0..arena.len() {
        let s = arena.get(i);
        let code = *map.entry(s).or_insert_with(|| {
            dict.push(s);
            // lint: allow(cast) encode side: dictionary sizes fit i32
            (dict.len() - 1) as i32
        });
        codes.push(code);
    }
}

/// Compresses `arena` as a dictionary with a cascaded code sequence, leasing
/// the dictionary arena and code array from `scratch`.
pub fn compress(
    arena: &StringArena,
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let mut dict = scratch.lease_arena();
    let mut codes = scratch.lease_i32(arena.len());
    encode_dict_into(arena, &mut dict, &mut codes);
    write_dict(&dict, out);
    scheme::compress_int_excluding_into(&codes, child_depth, cfg, scratch, out, Some(SchemeCode::Dict));
    scratch.release_arena(dict);
    scratch.release_i32(codes);
}

pub(crate) fn write_dict(dict: &StringArena, out: &mut Vec<u8>) {
    // lint: allow(cast) encode side: dictionary entry count fits u32
    out.put_u32(dict.len() as u32);
    // lint: allow(cast) encode side: dictionary pool is far smaller than 4 GiB
    out.put_u32(dict.bytes.len() as u32);
    out.extend_from_slice(&dict.bytes);
    out.put_u32_slice(&dict.offsets);
}

pub(crate) fn read_dict(r: &mut Reader<'_>) -> Result<(Vec<u8>, Vec<u64>)> {
    let mut scratch = DecodeScratch::new();
    let mut pool = Vec::new();
    let mut views = Vec::new();
    read_dict_into(r, &mut scratch, &mut pool, &mut views)?;
    Ok((pool, views))
}

/// Reads a serialized dictionary into reusable `pool`/`views` buffers,
/// leasing the offset temporary from `scratch`.
pub(crate) fn read_dict_into(
    r: &mut Reader<'_>,
    scratch: &mut DecodeScratch,
    pool: &mut Vec<u8>,
    views: &mut Vec<u64>,
) -> Result<()> {
    let dict_n = r.u32()? as usize;
    let pool_len = r.u32()? as usize;
    let pool_bytes = r.take(pool_len)?;
    pool.clear();
    pool.extend_from_slice(pool_bytes);
    let mut offsets = scratch.lease_u32(dict_n.min(r.remaining() / 4) + 1);
    let result = (|| -> Result<()> {
        r.u32_vec_into(dict_n + 1, &mut offsets)?;
        views.clear();
        views.reserve(dict_n);
        for w in offsets.windows(2) {
            // lint: allow(indexing) windows(2) yields exactly 2 elements
            if w[1] < w[0] || w[1] as usize > pool_len {
                return Err(Error::Corrupt("dict offsets not monotone"));
            }
            // lint: allow(indexing) windows(2) yields exactly 2 elements
            views.push(StringViews::pack(w[0], w[1] - w[0]));
        }
        Ok(())
    })();
    scratch.release_u32(offsets);
    result
}

/// Decodes a cascaded code sequence into views, fusing RLE+Dict when the
/// child block is RLE with long runs.
pub(crate) fn decode_codes_to_views(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    dict_views: &[u64],
) -> Result<Vec<u64>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decode_codes_to_views_into(r, count, cfg, dict_views, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`decode_codes_to_views`] decoding into `out` with scratch-leased
/// temporaries (the fused path's run arrays, the generic path's code arrays).
pub(crate) fn decode_codes_to_views_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    dict_views: &[u64],
    scratch: &mut DecodeScratch,
    out: &mut Vec<u64>,
) -> Result<()> {
    // Peek the child frame to detect the RLE fusion opportunity.
    let mut peek = r.clone();
    let (child_code, child_count) = scheme::read_frame_header(&mut peek, cfg)?;
    if child_code == SchemeCode::Rle {
        let run_count = peek.u32()? as usize;
        if child_count == count
            && run_count > 0
            && count as f64 / run_count as f64 > cfg.fused_rle_dict_min_run
        {
            let hint = run_count.min(count);
            let mut run_values = scratch.lease_i32(hint);
            let mut run_lengths = scratch.lease_i32(hint);
            let mut run_views = scratch.lease_u64(hint);
            let mut lengths = scratch.lease_u32(hint);
            let result = (|| -> Result<()> {
                scheme::decompress_int_into(&mut peek, cfg, scratch, &mut run_values)?;
                scheme::decompress_int_into(&mut peek, cfg, scratch, &mut run_lengths)?;
                if run_values.len() != run_count || run_lengths.len() != run_count {
                    return Err(Error::Corrupt("fused RLE run array mismatch"));
                }
                // Dictionary lookup per run, then splat-store the views.
                let mut total = 0usize;
                run_views.clear();
                lengths.clear();
                for (&code, &len) in run_values.iter().zip(run_lengths.iter()) {
                    if code < 0 || code as usize >= dict_views.len() || len < 0 {
                        return Err(Error::Corrupt("fused RLE dict code out of range"));
                    }
                    // lint: allow(indexing) code was range-checked against dict_views.len() above
                    run_views.push(dict_views[code as usize]);
                    // lint: allow(cast) len was checked non-negative above
                    lengths.push(len as u32);
                    total += len as usize;
                }
                if total != count {
                    return Err(Error::Corrupt("fused RLE total mismatch"));
                }
                *r = peek;
                simd::rle_decode_u64_into(&run_views, &lengths, total, cfg.simd, out);
                Ok(())
            })();
            scratch.release_i32(run_values);
            scratch.release_i32(run_lengths);
            scratch.release_u64(run_views);
            scratch.release_u32(lengths);
            return result;
        }
    }
    // Generic path: decode codes, then gather views.
    let mut codes = scratch.lease_i32(count);
    let mut codes_u32 = scratch.lease_u32(count);
    let result = (|| -> Result<()> {
        scheme::decompress_int_into(r, cfg, scratch, &mut codes)?;
        if codes.len() != count {
            return Err(Error::Corrupt("string dict code count mismatch"));
        }
        codes_u32.clear();
        for &c in codes.iter() {
            if c < 0 || c as usize >= dict_views.len() {
                return Err(Error::Corrupt("string dict code out of range"));
            }
            // lint: allow(cast) c was range-checked non-negative and < dict len above
            codes_u32.push(c as u32);
        }
        simd::dict_decode_u64_into(&codes_u32, dict_views, cfg.simd, out);
        Ok(())
    })();
    scratch.release_i32(codes);
    scratch.release_u32(codes_u32);
    result
}

/// Decompresses a dictionary block of `count` strings.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<StringViews> {
    let (pool, dict_views) = read_dict(r)?;
    let views = decode_codes_to_views(r, count, cfg, &dict_views)?;
    Ok(StringViews { pool, views })
}

/// Decompresses a dictionary block of `count` strings into `out`, reusing
/// its pool/view buffers and leasing the dictionary views from `scratch`.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut StringViews,
) -> Result<()> {
    // Peek the entry count for a sized lease (a 0-cap lease would grab the
    // largest pooled u64 buffer, starving the fused path's run views).
    let dict_n = r.clone().u32()? as usize;
    let mut dict_views = scratch.lease_u64(dict_n.min(r.remaining() / 4));
    let result = (|| -> Result<()> {
        read_dict_into(r, scratch, &mut out.pool, &mut dict_views)?;
        decode_codes_to_views_into(r, count, cfg, &dict_views, scratch, &mut out.views)
    })();
    scratch.release_u64(dict_views);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{compress_str_with, decompress_str};

    fn roundtrip(strings: &[&str]) {
        let arena = StringArena::from_strs(strings);
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_str_with(SchemeCode::Dict, &arena, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress_str(&mut r, &cfg).unwrap();
        assert_eq!(out.len(), strings.len());
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(out.get(i), s.as_bytes(), "string {i}");
        }
    }

    #[test]
    fn roundtrip_low_cardinality() {
        let strings: Vec<&str> = (0..1000)
            .map(|i| ["All Residential", "Condo", "Townhouse"][i % 3])
            .collect();
        roundtrip(&strings);
    }

    #[test]
    fn roundtrip_with_long_runs_exercises_fusion() {
        // Long runs of equal values: the code child becomes RLE and the
        // fused path kicks in (avg run length 250 > 3).
        let strings: Vec<&str> = (0..1000)
            .map(|i| ["AAAA", "BBBB", "CCCC", "DDDD"][i / 250])
            .collect();
        roundtrip(&strings);
    }

    #[test]
    fn fused_and_scalar_agree() {
        let strings: Vec<&str> = (0..2000).map(|i| ["x", "yy", "zzz"][(i / 100) % 3]).collect();
        let arena = StringArena::from_strs(&strings);
        let mut buf = Vec::new();
        let cfg = Config::default();
        compress_str_with(SchemeCode::Dict, &arena, 3, &cfg, &mut buf);
        // Fusion enabled (default threshold 3).
        let mut r = Reader::new(&buf);
        let fused = decompress_str(&mut r, &cfg).unwrap();
        // Fusion disabled via an impossible threshold.
        let no_fuse = Config { fused_rle_dict_min_run: f64::INFINITY, ..Config::default() };
        let mut r = Reader::new(&buf);
        let plain = decompress_str(&mut r, &no_fuse).unwrap();
        assert_eq!(fused.iter().collect::<Vec<_>>(), plain.iter().collect::<Vec<_>>());
    }

    #[test]
    fn roundtrip_empty_strings_and_unicode() {
        roundtrip(&["", "", "Maceió", "", "Maceió", "東京"]);
    }

    #[test]
    fn dict_smaller_than_raw_on_repetition() {
        let strings: Vec<&str> = (0..10_000).map(|_| "a rather long repeated string value").collect();
        let arena = StringArena::from_strs(&strings);
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_str_with(SchemeCode::Dict, &arena, 3, &cfg, &mut buf);
        assert!(buf.len() * 100 < arena.heap_size(), "got {} bytes", buf.len());
    }
}
