//! FSST over the raw string concatenation (paper §5's block-decode variant).
//!
//! The whole block's strings are FSST-compressed back-to-back into one
//! buffer. Compressed per-string offsets are *not* stored: because FSST
//! decoding is stateless, decompressing the entire concatenation with a
//! single call and splitting it by the (cascade-compressed) *uncompressed*
//! string lengths reconstructs every boundary — the "50 instructions per
//! string" saving the paper describes.
//!
//! Payload: `[table_len: u32][symbol table][comp_len: u32][compressed
//! bytes][child block: uncompressed lengths (integer)]`.

use crate::config::Config;
use crate::scheme;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::types::{StringArena, StringViews};
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use btr_fsst::SymbolTable;

/// Compresses `arena` with FSST, leasing the compressed-bytes and length
/// buffers from `scratch`. (Symbol-table training still allocates its own
/// storage — the allocations this scheme keeps.)
pub fn compress(
    arena: &StringArena,
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let strings: Vec<&[u8]> = arena.iter().collect();
    let table = SymbolTable::train(&strings);
    let table_bytes = table.serialize();
    let mut compressed = scratch.lease_u8(arena.total_bytes() / 2 + 16);
    let mut lengths = scratch.lease_i32(arena.len());
    for s in &strings {
        table.compress(s, &mut compressed);
        // lint: allow(cast) encode side: a single string is far smaller than 2 GiB
        lengths.push(s.len() as i32);
    }
    // lint: allow(cast) encode side: symbol table serialization is small
    out.put_u32(table_bytes.len() as u32);
    out.extend_from_slice(&table_bytes);
    // lint: allow(cast) encode side: compressed pool is far smaller than 4 GiB
    out.put_u32(compressed.len() as u32);
    out.extend_from_slice(&compressed);
    scheme::compress_int_into(&lengths, child_depth, cfg, scratch, out);
    scratch.release_u8(compressed);
    scratch.release_i32(lengths);
}

/// Decompresses an FSST block of `count` strings.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<StringViews> {
    let mut scratch = DecodeScratch::new();
    let mut out = StringViews::default();
    decompress_into(r, count, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses an FSST block of `count` strings into `out`, reusing its
/// pool/view buffers and leasing the length temporary from `scratch`. The
/// symbol table itself still deserializes into fresh storage — the one
/// allocation this scheme keeps.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut StringViews,
) -> Result<()> {
    let table_len = r.u32()? as usize;
    let table = SymbolTable::deserialize(r.take(table_len)?)?;
    let comp_len = r.u32()? as usize;
    let compressed = r.take(comp_len)?;
    let mut lengths = scratch.lease_i32(count);
    let result = (|| -> Result<()> {
        scheme::decompress_int_into(r, cfg, scratch, &mut lengths)?;
        if lengths.len() != count {
            return Err(Error::Corrupt("fsst length count mismatch"));
        }
        // One decompression call for the whole block (decompress appends).
        out.pool.clear();
        table.decompress(compressed, &mut out.pool)?;
        out.views.clear();
        out.views.reserve(count);
        // Accumulate in u32 with checked adds: hostile lengths summing past
        // u32::MAX must be a corruption error, not a silently truncated view.
        let mut off = 0u32;
        for &l in lengths.iter() {
            let len =
                u32::try_from(l).map_err(|_| Error::Corrupt("negative fsst string length"))?;
            out.views.push(StringViews::pack(off, len));
            off = off
                .checked_add(len)
                .ok_or(Error::Corrupt("fsst pool length overflow"))?;
        }
        if off as usize != out.pool.len() {
            return Err(Error::Corrupt("fsst pool length mismatch"));
        }
        Ok(())
    })();
    scratch.release_i32(lengths);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{compress_str_with, decompress_str, SchemeCode};

    fn roundtrip(strings: &[&str]) -> usize {
        let arena = StringArena::from_strs(strings);
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_str_with(SchemeCode::Fsst, &arena, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress_str(&mut r, &cfg).unwrap();
        assert_eq!(out.len(), strings.len());
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(out.get(i), s.as_bytes(), "string {i}");
        }
        buf.len()
    }

    #[test]
    fn roundtrip_urls() {
        let strings: Vec<String> = (0..2000)
            .map(|i| format!("https://example.com/products/category-{}/item-{}", i % 7, i))
            .collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let size = roundtrip(&refs);
        let raw: usize = strings.iter().map(|s| s.len() + 4).sum();
        assert!(size * 2 < raw, "FSST should halve URLs: {size} vs {raw}");
    }

    #[test]
    fn roundtrip_empty_and_mixed() {
        roundtrip(&["", "one", "", "two", ""]);
        roundtrip(&[""]);
    }

    #[test]
    fn roundtrip_binary_strings() {
        let strings = ["\u{0}\u{1}", "ÿþý", "normal"];
        roundtrip(&strings);
    }
}
