//! Dictionary with an FSST-compressed string pool (paper Figure 4: "+ FSST
//! on dictionary", a 51 % ratio improvement over plain dictionaries on
//! Public BI strings).
//!
//! Payload: `[dict_n: u32][table_len: u32][symbol table][comp_len: u32]
//! [compressed dict pool][dict lengths: dict_n × u32][child block: code
//! sequence]`.
//!
//! Decompression decodes the dictionary pool with a single FSST call, builds
//! `(offset, len)` views from the stored uncompressed lengths, then decodes
//! the code sequence exactly like [`super::dict`] (including the fused
//! RLE+Dict fast path).

use crate::config::Config;
use crate::scheme;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::types::{StringArena, StringViews};
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use btr_fsst::SymbolTable;

/// Compresses `arena` as Dict+FSST, leasing the dictionary arena, code
/// array, compressed-pool, and length buffers from `scratch`. (Symbol-table
/// training still allocates its own storage.)
pub fn compress(
    arena: &StringArena,
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let mut dict = scratch.lease_arena();
    let mut codes = scratch.lease_i32(arena.len());
    super::dict::encode_dict_into(arena, &mut dict, &mut codes);
    let mut compressed = scratch.lease_u8(dict.total_bytes() / 2 + 16);
    let mut lengths = scratch.lease_u32(dict.len());
    let dict_strings: Vec<&[u8]> = dict.iter().collect();
    let table = SymbolTable::train(&dict_strings);
    let table_bytes = table.serialize();
    for s in &dict_strings {
        table.compress(s, &mut compressed);
        // lint: allow(cast) encode side: a single string is far smaller than 4 GiB
        lengths.push(s.len() as u32);
    }
    // lint: allow(cast) encode side: dictionary entry count fits u32
    out.put_u32(dict.len() as u32);
    // lint: allow(cast) encode side: symbol table serialization is small
    out.put_u32(table_bytes.len() as u32);
    out.extend_from_slice(&table_bytes);
    // lint: allow(cast) encode side: compressed pool is far smaller than 4 GiB
    out.put_u32(compressed.len() as u32);
    out.extend_from_slice(&compressed);
    out.put_u32_slice(&lengths);
    scheme::compress_int_excluding_into(
        &codes,
        child_depth,
        cfg,
        scratch,
        out,
        Some(crate::scheme::SchemeCode::Dict),
    );
    drop(dict_strings);
    scratch.release_arena(dict);
    scratch.release_i32(codes);
    scratch.release_u8(compressed);
    scratch.release_u32(lengths);
}

/// Decompresses a Dict+FSST block of `count` strings.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<StringViews> {
    let mut scratch = DecodeScratch::new();
    let mut out = StringViews::default();
    decompress_into(r, count, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses a Dict+FSST block of `count` strings into `out`, reusing its
/// pool/view buffers and leasing the length and dictionary-view temporaries
/// from `scratch`. The symbol table itself still deserializes into fresh
/// storage — the one allocation this scheme keeps.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut StringViews,
) -> Result<()> {
    let dict_n = r.u32()? as usize;
    let table_len = r.u32()? as usize;
    let table = SymbolTable::deserialize(r.take(table_len)?)?;
    let comp_len = r.u32()? as usize;
    let compressed = r.take(comp_len)?;
    // Capacity hints only — clamp so a hostile dict_n can't force a huge
    // lease before `take` inside `u32_vec_into` rejects the stream.
    let hint = dict_n.min(r.remaining() / 4);
    let mut lengths = scratch.lease_u32(hint);
    let mut dict_views = scratch.lease_u64(hint);
    let result = (|| -> Result<()> {
        r.u32_vec_into(dict_n, &mut lengths)?;
        // Single FSST call for the whole dictionary pool (decompress appends).
        out.pool.clear();
        table.decompress(compressed, &mut out.pool)?;
        dict_views.clear();
        dict_views.reserve(dict_n);
        // Accumulate in u32 with checked adds: hostile lengths summing past
        // u32::MAX must be a corruption error, not a silently truncated view.
        let mut off = 0u32;
        for &l in lengths.iter() {
            dict_views.push(StringViews::pack(off, l));
            off = off
                .checked_add(l)
                .ok_or(Error::Corrupt("dict+fsst pool length overflow"))?;
        }
        if off as usize != out.pool.len() {
            return Err(Error::Corrupt("dict+fsst pool length mismatch"));
        }
        super::dict::decode_codes_to_views_into(r, count, cfg, &dict_views, scratch, &mut out.views)
    })();
    scratch.release_u32(lengths);
    scratch.release_u64(dict_views);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{compress_str_with, decompress_str, SchemeCode};

    fn roundtrip(strings: &[&str]) -> usize {
        let arena = StringArena::from_strs(strings);
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_str_with(SchemeCode::DictFsst, &arena, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress_str(&mut r, &cfg).unwrap();
        assert_eq!(out.len(), strings.len());
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(out.get(i), s.as_bytes(), "string {i}");
        }
        buf.len()
    }

    #[test]
    fn roundtrip_city_names() {
        // The paper's Dict+FSST examples: city/street columns with shared
        // substrings and moderate cardinality.
        let cities = ["01 BRONX", "04 BRONX", "05 QUEENS", "12 QUEENS", "03 BROOKLYN"];
        let strings: Vec<&str> = (0..5_000).map(|i| cities[(i * 7) % 5]).collect();
        let size = roundtrip(&strings);
        let arena = StringArena::from_strs(&strings);
        assert!(size * 20 < arena.heap_size(), "got {size} bytes");
    }

    #[test]
    fn beats_plain_dict_on_substring_rich_dictionaries() {
        // High-cardinality strings that share long substrings: the dictionary
        // pool itself is compressible, which is exactly DictFsst's case.
        let strings: Vec<String> = (0..4_000)
            .map(|i| format!("5777 E MAYO BLVD BUILDING {} PHOENIX ARIZONA", i % 2000))
            .collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let arena = StringArena::from_strs(&refs);
        let cfg = Config::default();
        let mut plain = Vec::new();
        compress_str_with(SchemeCode::Dict, &arena, 3, &cfg, &mut plain);
        let mut fsst = Vec::new();
        compress_str_with(SchemeCode::DictFsst, &arena, 3, &cfg, &mut fsst);
        assert!(
            fsst.len() < plain.len(),
            "dict+fsst ({}) should beat dict ({})",
            fsst.len(),
            plain.len()
        );
    }

    #[test]
    fn roundtrip_edge_cases() {
        roundtrip(&["", "a", "", "a"]);
        roundtrip(&["solo"]);
    }
}
