//! Run-length encoding for doubles (runs compare by bit pattern).
//!
//! Payload: `[run_count: u32][child: run values (double)][child: run lengths
//! (integer)]` — the exact structure of the paper's cascading example in
//! §3.2. Decompression uses the 4-wide AVX2 splat-store kernel.

use crate::config::Config;
use crate::scheme;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::simd;
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};

/// Splits `values` into `(run_values, run_lengths)` comparing bit patterns,
/// so NaN runs and `-0.0` vs `0.0` behave losslessly.
pub fn runs_of(values: &[f64]) -> (Vec<f64>, Vec<i32>) {
    let mut run_values = Vec::new();
    let mut run_lengths = Vec::new();
    runs_of_into(values, &mut run_values, &mut run_lengths);
    (run_values, run_lengths)
}

/// [`runs_of`] into caller-owned buffers (cleared first), so the encode path
/// can lease the run arrays instead of allocating per block.
pub fn runs_of_into(values: &[f64], run_values: &mut Vec<f64>, run_lengths: &mut Vec<i32>) {
    run_values.clear();
    run_lengths.clear();
    for &v in values {
        match run_values.last() {
            Some(last) if last.to_bits() == v.to_bits() => {
                *run_lengths.last_mut().expect("parallel arrays") += 1;
            }
            _ => {
                run_values.push(v);
                run_lengths.push(1);
            }
        }
    }
}

/// Compresses `values` as RLE with cascaded children, leasing the run arrays
/// from `scratch`.
pub fn compress(
    values: &[f64],
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let mut run_values = scratch.lease_f64(values.len());
    let mut run_lengths = scratch.lease_i32(values.len());
    runs_of_into(values, &mut run_values, &mut run_lengths);
    // lint: allow(cast) encode side: run count fits u32
    out.put_u32(run_values.len() as u32);
    scheme::compress_double_into(&run_values, child_depth, cfg, scratch, out);
    scheme::compress_int_into(&run_lengths, child_depth, cfg, scratch, out);
    scratch.release_f64(run_values);
    scratch.release_i32(run_lengths);
}

/// Decompresses an RLE block of `count` doubles.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<Vec<f64>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_into(r, count, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses an RLE block of `count` doubles into `out`, leasing the run
/// arrays from `scratch` and returning them on every exit path.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    let run_count = r.u32()? as usize;
    // Capacity hints only — the cascade fills to whatever the child frames
    // say. Clamp so a hostile run_count can't force a huge lease.
    let hint = run_count.min(count);
    let mut run_values = scratch.lease_f64(hint);
    let mut run_lengths = scratch.lease_i32(hint);
    let mut lengths = scratch.lease_u32(hint);
    let result = (|| -> Result<()> {
        scheme::decompress_double_into(r, cfg, scratch, &mut run_values)?;
        scheme::decompress_int_into(r, cfg, scratch, &mut run_lengths)?;
        if run_values.len() != run_count || run_lengths.len() != run_count {
            return Err(Error::Corrupt("double RLE run array length mismatch"));
        }
        let mut total = 0usize;
        lengths.clear();
        for &l in run_lengths.iter() {
            if l < 0 {
                return Err(Error::Corrupt("negative double RLE run length"));
            }
            total += l as usize;
            // lint: allow(cast) l was checked non-negative above
            lengths.push(l as u32);
        }
        if total != count {
            return Err(Error::Corrupt("double RLE total length mismatch"));
        }
        simd::rle_decode_f64_into(&run_values, &lengths, total, cfg.simd, out);
        Ok(())
    })();
    scratch.release_f64(run_values);
    scratch.release_i32(run_lengths);
    scratch.release_u32(lengths);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{compress_double_with, decompress_double, SchemeCode};

    fn roundtrip(values: &[f64]) {
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_double_with(SchemeCode::Rle, values, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress_double(&mut r, &cfg).unwrap();
        assert_eq!(out.len(), values.len());
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrip_paper_example() {
        // The §3.2 worked example: [3.5, 3.5, 18, 18, 3.5, 3.5].
        roundtrip(&[3.5, 3.5, 18.0, 18.0, 3.5, 3.5]);
    }

    #[test]
    fn roundtrip_nan_runs() {
        roundtrip(&[f64::NAN, f64::NAN, 1.0, -0.0, -0.0, 0.0]);
    }

    #[test]
    fn roundtrip_long_runs() {
        let values: Vec<f64> = (0..64_000).map(|i| (i / 8000) as f64 * 0.5).collect();
        roundtrip(&values);
    }
}
