//! Double (f64) encoding schemes.

pub mod decimal;
pub mod dict;
pub mod frequency;
pub mod onevalue;
pub mod rle;
pub mod uncompressed;

use crate::config::Config;
use crate::scheme::SchemeCode;
use crate::stats::DoubleStats;

/// Statistics-based viability filter. Pseudodecimal additionally checks the
/// *sample's* exception rate, because "fraction of non-encodable values" is
/// not derivable from simple statistics (paper §4.2).
pub fn viable(code: SchemeCode, stats: &DoubleStats, sample: &[f64], cfg: &Config) -> bool {
    match code {
        SchemeCode::OneValue => stats.unique_count <= 1,
        SchemeCode::Rle => stats.average_run_length >= cfg.rle_min_avg_run,
        SchemeCode::Frequency => {
            stats.unique_fraction() <= cfg.frequency_unique_max
                && stats.top_count * 2 >= stats.count
        }
        SchemeCode::Dict => stats.unique_count < stats.count,
        SchemeCode::Pseudodecimal => {
            if stats.unique_fraction() < cfg.pde_unique_min {
                return false;
            }
            let exceptions = sample
                .iter()
                .filter(|&&v| decimal::encode_single(v).is_none())
                .count();
            (exceptions as f64) <= cfg.pde_exception_max * sample.len().max(1) as f64
        }
        SchemeCode::Uncompressed => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pde_excluded_for_low_uniqueness() {
        let cfg = Config::default();
        let values: Vec<f64> = (0..1000).map(|i| (i % 5) as f64 * 0.25).collect();
        let stats = DoubleStats::collect(&values);
        assert!(!viable(SchemeCode::Pseudodecimal, &stats, &values, &cfg));
    }

    #[test]
    fn pde_excluded_for_many_exceptions() {
        let cfg = Config::default();
        // High-precision values (longitude-like): mostly non-encodable.
        let values: Vec<f64> = (0..1000).map(|i| -73.0 - (i as f64).sin() / 1e7).collect();
        let stats = DoubleStats::collect(&values);
        assert!(!viable(SchemeCode::Pseudodecimal, &stats, &values, &cfg));
    }

    #[test]
    fn pde_viable_for_prices() {
        let cfg = Config::default();
        let values: Vec<f64> = (0..1000).map(|i| (i % 800) as f64 * 0.01 + 0.99).collect();
        let stats = DoubleStats::collect(&values);
        assert!(viable(SchemeCode::Pseudodecimal, &stats, &values, &cfg));
    }

    #[test]
    fn frequency_needs_dominant_top() {
        let cfg = Config::default();
        let mut values = vec![0.0; 900];
        values.extend((0..100).map(|i| i as f64));
        let stats = DoubleStats::collect(&values);
        assert!(viable(SchemeCode::Frequency, &stats, &values, &cfg));
    }
}
