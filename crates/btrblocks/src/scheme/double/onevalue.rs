//! One Value for doubles: the whole block is a single bit pattern.

use crate::config::Config;
use crate::scratch::DecodeScratch;
use crate::writer::{Reader, WriteLe};
use crate::Result;

/// Payload: one `f64`.
pub fn compress(values: &[f64], out: &mut Vec<u8>) {
    // lint: allow(indexing) windows(2) yields exactly 2 elements
    debug_assert!(values.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
    out.put_f64(values.first().copied().unwrap_or(0.0));
}

/// Expands the stored value `count` times.
pub fn decompress(r: &mut Reader<'_>, count: usize) -> Result<Vec<f64>> {
    let v = r.f64()?;
    Ok(vec![v; count])
}

/// Expands the stored value `count` times into `out`, reusing its capacity.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    _cfg: &Config,
    _scratch: &mut DecodeScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    let v = r.f64()?;
    out.clear();
    out.resize(count, v);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_including_nan() {
        for v in [0.0f64, -0.0, f64::NAN, 123.456] {
            let values = vec![v; 1000];
            let mut buf = Vec::new();
            compress(&values, &mut buf);
            assert_eq!(buf.len(), 8);
            let mut r = Reader::new(&buf);
            let out = decompress(&mut r, 1000).unwrap();
            assert!(out.iter().all(|x| x.to_bits() == v.to_bits()));
        }
    }
}
