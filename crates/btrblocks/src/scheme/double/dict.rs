//! Dictionary encoding for doubles (keys compare by bit pattern).
//!
//! Payload: `[dict_len: u32][dict: dict_len × f64][child: code sequence]`.
//! Decompression uses the 4-wide AVX2 gather kernel.

use crate::config::Config;
use crate::scheme;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::simd;
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use crate::fxhash::FxHashMap;

/// Builds `(dictionary, codes)` in first-occurrence order, keyed by bits.
pub fn encode_dict(values: &[f64]) -> (Vec<f64>, Vec<i32>) {
    let mut map = FxHashMap::with_capacity_and_hasher(values.len() / 4 + 1, Default::default());
    let mut dict = Vec::new();
    let mut codes = Vec::with_capacity(values.len());
    encode_dict_into(values, &mut map, &mut dict, &mut codes);
    (dict, codes)
}

/// [`encode_dict`] into caller-owned buffers (all cleared first), so the
/// encode path can lease the map and both arrays instead of allocating.
pub fn encode_dict_into(
    values: &[f64],
    map: &mut FxHashMap<u64, usize>,
    dict: &mut Vec<f64>,
    codes: &mut Vec<i32>,
) {
    map.clear();
    dict.clear();
    codes.clear();
    for &v in values {
        let idx = *map.entry(v.to_bits()).or_insert_with(|| {
            dict.push(v);
            dict.len() - 1
        });
        // lint: allow(cast) encode side: dictionary sizes fit i32
        codes.push(idx as i32);
    }
}

/// Compresses `values` as a dictionary with a cascaded code sequence,
/// leasing the dictionary map and side-arrays from `scratch`.
pub fn compress(
    values: &[f64],
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let mut map = scratch.lease_bits_map();
    let mut dict = scratch.lease_f64(values.len());
    let mut codes = scratch.lease_i32(values.len());
    encode_dict_into(values, &mut map, &mut dict, &mut codes);
    scratch.release_bits_map(map);
    // lint: allow(cast) encode side: dictionary entry count fits u32
    out.put_u32(dict.len() as u32);
    out.put_f64_slice(&dict);
    scheme::compress_int_excluding_into(
        &codes,
        child_depth,
        cfg,
        scratch,
        out,
        Some(crate::scheme::SchemeCode::Dict),
    );
    scratch.release_f64(dict);
    scratch.release_i32(codes);
}

/// Decompresses a dictionary block of `count` doubles.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<Vec<f64>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_into(r, count, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses a dictionary block of `count` doubles into `out`, leasing
/// the dictionary and code buffers from `scratch`.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    let dict_len = r.u32()? as usize;
    let mut dict = scratch.lease_f64(dict_len.min(cfg.max_block_values));
    let mut codes = scratch.lease_i32(count);
    let mut codes_u32 = scratch.lease_u32(count);
    let result = (|| -> Result<()> {
        r.f64_vec_into(dict_len, &mut dict)?;
        scheme::decompress_int_into(r, cfg, scratch, &mut codes)?;
        if codes.len() != count {
            return Err(Error::Corrupt("double dict code count mismatch"));
        }
        codes_u32.clear();
        for &c in codes.iter() {
            if c < 0 || c as usize >= dict_len {
                return Err(Error::Corrupt("double dict code out of range"));
            }
            // lint: allow(cast) c was range-checked non-negative and < dict len above
            codes_u32.push(c as u32);
        }
        simd::dict_decode_f64_into(&codes_u32, &dict, cfg.simd, out);
        Ok(())
    })();
    scratch.release_f64(dict);
    scratch.release_i32(codes);
    scratch.release_u32(codes_u32);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{compress_double_with, decompress_double, SchemeCode};

    fn roundtrip(values: &[f64]) {
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_double_with(SchemeCode::Dict, values, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress_double(&mut r, &cfg).unwrap();
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrip_low_cardinality() {
        let values: Vec<f64> = (0..10_000)
            .map(|i| [0.0, 83.2833, 3.05, 9.5999][i % 4])
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn distinguishes_zero_signs_and_nans() {
        roundtrip(&[0.0, -0.0, f64::NAN, 0.0, -0.0]);
    }

    #[test]
    fn roundtrip_empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[1.5]);
    }
}
