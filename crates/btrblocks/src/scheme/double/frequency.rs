//! Frequency encoding for doubles: dominant top value + Roaring exceptions.
//!
//! Payload: `[top: f64][bitmap_len: u32][roaring bitmap][child: exceptions
//! (double)]`.

use crate::config::Config;
use crate::scheme;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::stats::DoubleStats;
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use btr_roaring::RoaringBitmap;

/// Compresses `values` as Frequency encoding.
///
/// Takes the selection layer's one-pass `stats` by reference (the dominant
/// value was already found there) instead of re-collecting them, and leases
/// the exception array from `scratch`.
pub fn compress(
    values: &[f64],
    stats: &DoubleStats,
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let top_bits = stats.top_value.to_bits();
    let mut exceptions = scratch.lease_f64(values.len().saturating_sub(stats.top_count));
    let bitmap = RoaringBitmap::from_sorted_iter(values.iter().enumerate().filter_map(|(i, &v)| {
        if v.to_bits() != top_bits {
            exceptions.push(v);
            // lint: allow(cast) encode side: block row index fits u32
            Some(i as u32)
        } else {
            None
        }
    }));
    let bitmap_bytes = bitmap.serialize();
    out.put_f64(stats.top_value);
    // lint: allow(cast) encode side: serialized bitmap is far smaller than 4 GiB
    out.put_u32(bitmap_bytes.len() as u32);
    out.extend_from_slice(&bitmap_bytes);
    scheme::compress_double_into(&exceptions, child_depth, cfg, scratch, out);
    scratch.release_f64(exceptions);
}

/// Decompresses a Frequency block of `count` doubles.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<Vec<f64>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_into(r, count, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses a Frequency block of `count` doubles into `out`, leasing the
/// exception buffer from `scratch`. The Roaring bitmap itself still
/// deserializes into fresh containers — the one allocation this scheme keeps.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    let top = r.f64()?;
    let bitmap_len = r.u32()? as usize;
    let bitmap = RoaringBitmap::deserialize(r.take(bitmap_len)?)?;
    let mut exceptions = scratch.lease_f64(0);
    let mut positions = scratch.lease_u32(bitmap.cardinality() as usize);
    let result = (|| -> Result<()> {
        scheme::decompress_double_into(r, cfg, scratch, &mut exceptions)?;
        if bitmap.cardinality() as usize != exceptions.len() {
            return Err(Error::Corrupt("double frequency exception count mismatch"));
        }
        positions.extend(bitmap.iter());
        // Splat the top value, then patch the exceptions in: both steps are
        // vectorized, with one range check over all positions up front.
        crate::simd::fill_f64(top, count, cfg.simd, out);
        if !crate::simd::patch_f64(out, &positions, &exceptions, cfg.simd) {
            return Err(Error::Corrupt("double frequency position out of range"));
        }
        Ok(())
    })();
    scratch.release_u32(positions);
    scratch.release_f64(exceptions);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{compress_double_with, decompress_double, SchemeCode};

    fn roundtrip(values: &[f64]) -> usize {
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_double_with(SchemeCode::Frequency, values, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress_double(&mut r, &cfg).unwrap();
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        buf.len()
    }

    #[test]
    fn roundtrip_dominant_zero() {
        let mut values = vec![0.0; 10_000];
        for i in (0..10_000).step_by(53) {
            values[i] = i as f64 * 0.1;
        }
        let size = roundtrip(&values);
        assert!(size * 8 < values.len() * 8, "got {size} bytes");
    }

    #[test]
    fn roundtrip_edge_cases() {
        roundtrip(&[]);
        roundtrip(&[1.0]);
        roundtrip(&[f64::NAN, f64::NAN, 2.0]);
    }
}
