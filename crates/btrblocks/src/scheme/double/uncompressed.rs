//! Raw double storage — the depth-0 fallback.

use crate::config::Config;
use crate::scratch::DecodeScratch;
use crate::writer::{Reader, WriteLe};
use crate::Result;

/// Payload: `count × f64` little-endian.
pub fn compress(values: &[f64], out: &mut Vec<u8>) {
    out.put_f64_slice(values);
}

/// Reads `count` raw doubles.
pub fn decompress(r: &mut Reader<'_>, count: usize) -> Result<Vec<f64>> {
    r.f64_vec(count)
}

/// Reads `count` raw doubles into `out`, reusing its capacity.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    _cfg: &Config,
    _scratch: &mut DecodeScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    r.f64_vec_into(count, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bitwise() {
        let values = vec![0.0, -0.0, f64::NAN, f64::INFINITY, 1.25e-300];
        let mut buf = Vec::new();
        compress(&values, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress(&mut r, values.len()).unwrap();
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
