//! Pseudodecimal Encoding (paper §4) — the novel double scheme.
//!
//! Each double is decomposed into two integers: signed significant digits and
//! a decimal exponent, such that `digits × 10^-exp` reproduces the original
//! *bit pattern* exactly. `3.25` becomes `(325, 2)`; surprisingly, the double
//! closest to `0.99` (mantissa `0xfae147ae147ae`) also round-trips from
//! `(99, 2)` because encoding verifies `round(d / 10^-e) * 10^-e == d` with
//! the very multiplication decompression will perform.
//!
//! Values that cannot be represented — `-0.0`, ±Inf, NaN, digits beyond
//! 32 bits, or exponents beyond [`MAX_EXPONENT`] — are *patches*: their
//! positions go into a Roaring bitmap and their raw bits are stored
//! separately (the digit/exponent columns carry `(0, 23)` placeholders so the
//! cascaded integer columns stay aligned).
//!
//! Payload: `[bitmap_len: u32][roaring patch bitmap][child: digits
//! (integer)][child: exponents (integer)][patch_count: u32][patches: raw
//! f64]`.
//!
//! Decompression (§5) multiplies digits by a table of inverse powers of ten,
//! 4 values per AVX2 vector; any 4-window containing a patch position falls
//! back to a scalar loop that splices patch values in.

use crate::config::Config;
use crate::scheme;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use btr_roaring::RoaringBitmap;

/// Largest decimal exponent tried (paper Listing 2: `max_exp = 22`).
pub const MAX_EXPONENT: u32 = 22;

/// Exponent placeholder marking a patched (non-encodable) position.
pub const EXCEPTION_EXPONENT: i32 = 23;

/// `FRAC10[e] == 10^-e`, the table both encode and decode multiply with.
/// Sharing one table is what makes the round-trip bitwise exact.
pub const FRAC10: [f64; 23] = [
    1.0, 0.1, 0.01, 0.001, 0.0001, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12, 1e-13,
    1e-14, 1e-15, 1e-16, 1e-17, 1e-18, 1e-19, 1e-20, 1e-21, 1e-22,
];

/// Tries to encode one double as `(digits, exponent)`; `None` means the value
/// must be stored as a patch. Mirrors Listing 2 of the paper.
#[inline]
pub fn encode_single(input: f64) -> Option<(i32, u8)> {
    if input == 0.0 && input.is_sign_negative() {
        return None; // -0.0: sign is folded into digits, which cannot hold it
    }
    if !input.is_finite() {
        return None; // ±Inf, NaN
    }
    for exp in 0..=MAX_EXPONENT {
        // lint: allow(indexing) exp <= MAX_EXPONENT = 22 < FRAC10.len() = 23
        let cd = input / FRAC10[exp as usize];
        let digits = cd.round();
        if digits.abs() > i32::MAX as f64 {
            // Larger exponents only grow the digits further.
            return None;
        }
        // lint: allow(indexing) exp <= MAX_EXPONENT = 22 < FRAC10.len() = 23
        let orig = digits * FRAC10[exp as usize];
        if orig.to_bits() == input.to_bits() {
            // lint: allow(cast) digits.abs() <= i32::MAX checked above; exp <= 22 fits u8
            return Some((digits as i32, exp as u8));
        }
    }
    None
}

/// Reconstructs a double from `(digits, exponent)`.
#[inline]
pub fn decode_single(digits: i32, exp: u8) -> f64 {
    // lint: allow(indexing) all callers validate exp <= 22 before decoding
    f64::from(digits) * FRAC10[usize::from(exp)]
}

/// Compresses `values` with Pseudodecimal Encoding, leasing the digit,
/// exponent, and patch arrays from `scratch`.
pub fn compress(
    values: &[f64],
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let mut digits = scratch.lease_i32(values.len());
    let mut exponents = scratch.lease_i32(values.len());
    let mut patches = scratch.lease_f64(values.len());
    let bitmap = RoaringBitmap::from_sorted_iter(values.iter().enumerate().filter_map(|(i, &v)| {
        match encode_single(v) {
            Some((d, e)) => {
                digits.push(d);
                exponents.push(i32::from(e));
                None
            }
            None => {
                digits.push(0);
                exponents.push(EXCEPTION_EXPONENT);
                patches.push(v);
                // lint: allow(cast) encode side; block row counts are bounded far below u32::MAX
                Some(i as u32)
            }
        }
    }));
    let bitmap_bytes = bitmap.serialize();
    // lint: allow(cast) encode side; serialized bitmap of one block fits u32
    out.put_u32(bitmap_bytes.len() as u32);
    out.extend_from_slice(&bitmap_bytes);
    scheme::compress_int_into(&digits, child_depth, cfg, scratch, out);
    scheme::compress_int_into(&exponents, child_depth, cfg, scratch, out);
    // lint: allow(cast) encode side; patches.len() <= block row count
    out.put_u32(patches.len() as u32);
    out.put_f64_slice(&patches);
    scratch.release_i32(digits);
    scratch.release_i32(exponents);
    scratch.release_f64(patches);
}

/// Decompresses a Pseudodecimal block of `count` doubles.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<Vec<f64>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_into(r, count, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses a Pseudodecimal block of `count` doubles into `out`, leasing
/// the digit/exponent/patch buffers from `scratch`. The Roaring patch bitmap
/// still deserializes into fresh containers — the one allocation this scheme
/// keeps.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    let bitmap_len = r.u32()? as usize;
    let bitmap = RoaringBitmap::deserialize(r.take(bitmap_len)?)?;
    let mut digits = scratch.lease_i32(count);
    let mut exponents = scratch.lease_i32(count);
    let mut patches = scratch.lease_f64(0);
    let result = (|| -> Result<()> {
        scheme::decompress_int_into(r, cfg, scratch, &mut digits)?;
        scheme::decompress_int_into(r, cfg, scratch, &mut exponents)?;
        let patch_count = r.u32()? as usize;
        r.f64_vec_into(patch_count, &mut patches)?;
        if digits.len() != count || exponents.len() != count {
            return Err(Error::Corrupt("pseudodecimal column length mismatch"));
        }
        if bitmap.cardinality() as usize != patch_count {
            return Err(Error::Corrupt("pseudodecimal patch count mismatch"));
        }
        let mut placeholder_count = 0usize;
        for &e in exponents.iter() {
            if !(0..=EXCEPTION_EXPONENT).contains(&e) {
                return Err(Error::Corrupt("pseudodecimal exponent out of range"));
            }
            if e == EXCEPTION_EXPONENT {
                placeholder_count += 1;
            }
        }
        if placeholder_count != patch_count {
            return Err(Error::Corrupt("pseudodecimal placeholder/patch mismatch"));
        }
        out.clear();
        out.reserve(count + crate::simd::DECODE_SLACK);
        #[cfg(target_arch = "x86_64")]
        if crate::simd::use_avx2(cfg.simd) && patch_count == 0 {
            // Fast path: no patches anywhere, vectorize the whole block.
            // SAFETY: exponents validated to 0..=23 above; FRAC10 is padded
            // via the gather table below; capacity reserved.
            unsafe {
                decode_avx2(&digits, &exponents, out.as_mut_ptr());
                out.set_len(count);
            }
            return Ok(());
        }
        decode_with_patches(&digits, &exponents, &bitmap, &patches, cfg, out)?;
        Ok(())
    })();
    scratch.release_i32(digits);
    scratch.release_i32(exponents);
    scratch.release_f64(patches);
    result
}

/// Mixed path: vectorize 4-windows without patches, scalar for the rest.
fn decode_with_patches(
    digits: &[i32],
    exponents: &[i32],
    bitmap: &RoaringBitmap,
    patches: &[f64],
    cfg: &Config,
    out: &mut Vec<f64>,
) -> Result<()> {
    let count = digits.len();
    let mut patch_iter = patches.iter();
    let mut i = 0usize;
    #[cfg(target_arch = "x86_64")]
    let vectorize = crate::simd::use_avx2(cfg.simd);
    #[cfg(not(target_arch = "x86_64"))]
    let vectorize = false;
    let _ = cfg;
    while i < count {
        let window = (count - i).min(4);
        // lint: allow(cast) i < count = digits.len(), which decompress capped to the block size
        if vectorize && window == 4 && !bitmap.intersects_range(i as u32, 4) {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: window bounds checked; capacity reserved with slack.
            unsafe {
                // lint: allow(indexing) i + 4 <= count = digits.len() = exponents.len(), window == 4
                decode4_avx2(&digits[i..i + 4], &exponents[i..i + 4], out.as_mut_ptr().add(i));
                out.set_len(i + 4);
            }
            i += 4;
            continue;
        }
        for j in i..i + window {
            // lint: allow(cast) j < count, bounded by the block size
            if bitmap.contains(j as u32) {
                let &p = patch_iter
                    .next()
                    .ok_or(Error::Corrupt("pseudodecimal ran out of patches"))?;
                out.push(p);
            } else {
                // lint: allow(indexing) j < i + window <= count = exponents.len()
                if exponents[j] == EXCEPTION_EXPONENT {
                    return Err(Error::Corrupt("pseudodecimal placeholder outside patch bitmap"));
                }
                // lint: allow(indexing) j < count = digits.len() = exponents.len()
                // lint: allow(cast) exponent range-checked to 0..=23 by decompress
                out.push(decode_single(digits[j], exponents[j] as u8));
            }
        }
        i += window;
    }
    Ok(())
}

/// Gather table padded to 24 entries so exponent 23 (the patch placeholder)
/// gathers a harmless constant instead of reading out of bounds.
#[cfg(target_arch = "x86_64")]
static FRAC10_PADDED: [f64; 24] = {
    let mut t = [0.0; 24];
    let mut i = 0;
    while i < 23 {
        // lint: allow(indexing) i < 23 <= both table lengths (const-evaluated anyway)
        t[i] = FRAC10[i];
        i += 1;
    }
    t
};

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available, `digits.len() ==
// exponents.len()`, every exponent is in 0..=23 (the gather table is padded
// to 24 entries), and `out` has capacity for `digits.len()` doubles.
unsafe fn decode_avx2(digits: &[i32], exponents: &[i32], out: *mut f64) {
    let n = digits.len();
    let mut i = 0usize;
    while i + 4 <= n {
        // lint: allow(indexing) i + 4 <= n = digits.len() = exponents.len()
        decode4_avx2(&digits[i..i + 4], &exponents[i..i + 4], out.add(i));
        i += 4;
    }
    while i < n {
        // lint: allow(indexing) i < n = digits.len() = exponents.len()
        // lint: allow(cast) exponent range-checked to 0..=23 by decompress
        *out.add(i) = decode_single(digits[i], exponents[i] as u8);
        i += 1;
    }
}

/// Decodes exactly 4 values: `cvtepi32_pd` then `mul_pd` with gathered
/// inverse powers of ten — the vectorization described in §5.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available, both slices hold at least 4
// values, exponents are in 0..=23 (FRAC10_PADDED has 24 entries), and `out`
// has room for 4 doubles.
unsafe fn decode4_avx2(digits: &[i32], exponents: &[i32], out: *mut f64) {
    use std::arch::x86_64::*;
    let d = _mm_loadu_si128(digits.as_ptr() as *const __m128i);
    let e = _mm_loadu_si128(exponents.as_ptr() as *const __m128i);
    let dv = _mm256_cvtepi32_pd(d);
    let fv = _mm256_i32gather_pd::<8>(FRAC10_PADDED.as_ptr(), e);
    _mm256_storeu_pd(out, _mm256_mul_pd(dv, fv));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimdMode;
    use crate::scheme::{compress_double_with, decompress_double, SchemeCode};

    fn roundtrip_with(values: &[f64], simd: SimdMode) {
        let cfg = Config { simd, ..Config::default() };
        let mut buf = Vec::new();
        compress_double_with(SchemeCode::Pseudodecimal, values, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        let out = decompress_double(&mut r, &cfg).unwrap();
        assert_eq!(out.len(), values.len());
        for (i, (a, b)) in values.iter().zip(&out).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "index {i}: {a} vs {b}");
        }
    }

    fn roundtrip(values: &[f64]) {
        roundtrip_with(values, SimdMode::Auto);
        roundtrip_with(values, SimdMode::ForceScalar);
    }

    #[test]
    fn paper_examples() {
        assert_eq!(encode_single(3.25), Some((325, 2)));
        assert_eq!(encode_single(0.99), Some((99, 2)));
        assert_eq!(encode_single(-6.425), Some((-6425, 3)));
        assert_eq!(encode_single(0.0), Some((0, 0)));
        assert_eq!(encode_single(5.5e-42), None);
        assert_eq!(encode_single(-0.0), None);
        assert_eq!(encode_single(f64::NAN), None);
        assert_eq!(encode_single(f64::INFINITY), None);
    }

    #[test]
    fn bitwise_identity_of_decode() {
        for v in [3.25, 0.99, 0.1, 123.456, -0.001, 2_000_000_000.0] {
            let (d, e) = encode_single(v).unwrap();
            assert_eq!(decode_single(d, e).to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn digits_overflow_is_patch() {
        // Needs more than 31 bits of significant digits.
        assert_eq!(encode_single(3_000_000_000.5), None);
        assert!(encode_single(2_000_000_000.0).is_some());
    }

    #[test]
    fn roundtrip_prices() {
        let values: Vec<f64> = (0..10_000).map(|i| (i % 3000) as f64 * 0.01).collect();
        roundtrip(&values);
    }

    #[test]
    fn roundtrip_with_patches() {
        let mut values: Vec<f64> = (0..1000).map(|i| i as f64 * 0.25).collect();
        values[3] = f64::NAN;
        values[500] = 5.5e-42;
        values[999] = -0.0;
        values[4] = f64::NEG_INFINITY;
        roundtrip(&values);
    }

    #[test]
    fn roundtrip_all_patches() {
        roundtrip(&[f64::NAN, f64::INFINITY, -0.0, 5.5e-42]);
    }

    #[test]
    fn roundtrip_paper_cascade_example() {
        // §4.2: [0.989…, 3.25, -6.425, 5.5e-42] with the last as a patch.
        roundtrip(&[0.989, 3.25, -6.425, 5.5e-42]);
    }

    #[test]
    fn roundtrip_empty_and_misaligned_tails() {
        roundtrip(&[]);
        roundtrip(&[1.5]);
        roundtrip(&[1.5, 2.5, 3.5]);
        roundtrip(&[1.5, 2.5, 3.5, 4.5, 5.5]);
    }

    #[test]
    fn compresses_price_data_well() {
        let cfg = Config::default();
        let values: Vec<f64> = (0..64_000).map(|i| (i % 100) as f64 * 0.05 + 0.99).collect();
        let mut buf = Vec::new();
        compress_double_with(SchemeCode::Pseudodecimal, &values, 3, &cfg, &mut buf);
        assert!(
            buf.len() * 4 < values.len() * 8,
            "PDE should beat raw doubles 4x on prices, got {} bytes",
            buf.len()
        );
    }
}
