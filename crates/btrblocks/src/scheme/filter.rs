//! Predicate evaluation on compressed blocks.
//!
//! The paper's related-work discussion (§7) notes that while BtrBlocks
//! optimizes for raw decompression speed, it "can, in principle, also support
//! processing compressed data if the used schemes support it". This module
//! implements that extension for the schemes where it pays off:
//!
//! * **OneValue** — the predicate is decided once for the whole block.
//! * **RLE** — the predicate runs per *run* and the verdict is replicated.
//! * **Dictionary / Dict+FSST** — the predicate runs once per *distinct*
//!   value; the code sequence is then mapped through a verdict table.
//! * **Frequency** — decided once for the top value, per-value only for the
//!   exceptions.
//! * everything else — falls back to decompress-then-filter, so the API is
//!   total over all blocks.
//!
//! The entry points evaluate an equality or range predicate against one
//! compressed block and return the matching row positions as a Roaring
//! bitmap, without materializing the decompressed column when a fast path
//! applies. The expression engine (crate `btr-expr`) builds its leaf kernels
//! on top of these entry points; `btrblocks::query` re-exports them for
//! back-compat.

use crate::config::Config;
use crate::scheme::{self, SchemeCode};
use crate::types::{CmpOp, ColumnType, DecodedColumn, Literal};
use crate::writer::Reader;
use crate::{Error, Result};
use btr_roaring::RoaringBitmap;

/// Whether [`filter_block`] has a compressed-domain fast path for this
/// `(type, scheme)` pair, i.e. evaluates the predicate without materializing
/// the full block. Scan planners use this to report how much of a scan ran
/// on compressed data versus the decompress-then-filter fallback.
pub fn has_fast_path(ty: ColumnType, code: SchemeCode) -> bool {
    match ty {
        ColumnType::Integer | ColumnType::Double => matches!(
            code,
            SchemeCode::OneValue | SchemeCode::Rle | SchemeCode::Dict | SchemeCode::Frequency
        ),
        ColumnType::String => matches!(
            code,
            SchemeCode::OneValue | SchemeCode::Dict | SchemeCode::DictFsst
        ),
    }
}

/// Evaluates `op(literal)` over an already-decoded block (e.g. one served
/// from a decoded-block cache), returning matching block-relative positions.
/// The decoded-data counterpart of [`filter_block`].
pub fn filter_decoded(col: &DecodedColumn, op: CmpOp, literal: &Literal) -> Result<RoaringBitmap> {
    match (col, literal) {
        (DecodedColumn::Int(v), Literal::Int(l)) => {
            Ok(positions_where(v.iter().map(|x| op.matches(x, l))))
        }
        (DecodedColumn::Double(v), Literal::Double(l)) => {
            Ok(positions_where(v.iter().map(|x| op.matches(x, l))))
        }
        (DecodedColumn::Str(views), Literal::Str(l)) => Ok(positions_where(
            (0..views.len()).map(|i| op.matches(&views.get(i), &l.as_slice())),
        )),
        _ => Err(Error::Corrupt("predicate literal type mismatch")),
    }
}

/// Evaluates `op(literal)` over one compressed block, returning matching row
/// positions (block-relative).
pub fn filter_block(
    bytes: &[u8],
    ty: ColumnType,
    op: CmpOp,
    literal: &Literal,
    cfg: &Config,
) -> Result<RoaringBitmap> {
    let mut r = Reader::new(bytes);
    let code = SchemeCode::from_u8(r.u8()?)?;
    let count = r.u32()? as usize;
    match (ty, literal) {
        (ColumnType::Integer, Literal::Int(lit)) => filter_int(&mut r, code, count, op, *lit, cfg),
        (ColumnType::Double, Literal::Double(lit)) => {
            filter_double(&mut r, code, count, op, *lit, cfg)
        }
        (ColumnType::String, Literal::Str(lit)) => filter_str(&mut r, code, count, op, lit, cfg),
        _ => Err(Error::Corrupt("predicate literal type mismatch")),
    }
}

fn positions_where(verdicts: impl Iterator<Item = bool>) -> RoaringBitmap {
    RoaringBitmap::from_sorted_iter(
        verdicts
            .enumerate()
            // lint: allow(cast) row positions are < count, which came off a u32 frame header
            .filter_map(|(i, m)| m.then_some(i as u32)),
    )
}

fn all_or_none(count: usize, matched: bool) -> RoaringBitmap {
    if matched {
        // lint: allow(cast) count came off a u32 frame header and is capped by max_block_values
        RoaringBitmap::from_sorted_iter(0..count as u32)
    } else {
        RoaringBitmap::new()
    }
}

/// Expands per-run verdicts to per-row positions in O(runs): matching runs
/// become Roaring run-container ranges directly — the whole point of
/// evaluating on compressed data.
///
/// Run lengths are decoded from untrusted bytes: a negative length or a total
/// exceeding `u32::MAX` is a corruption, not a wrap-around.
fn expand_runs(verdicts: &[bool], lengths: &[i32]) -> Result<RoaringBitmap> {
    let mut pos = 0u32;
    let mut ranges = Vec::new();
    for (&v, &l) in verdicts.iter().zip(lengths) {
        let len = u32::try_from(l).map_err(|_| Error::Corrupt("negative RLE run length"))?;
        let end = pos
            .checked_add(len)
            .ok_or(Error::Corrupt("RLE run lengths overflow the row space"))?;
        if v {
            ranges.push(pos..end);
        }
        pos = end;
    }
    Ok(RoaringBitmap::from_sorted_ranges(ranges))
}

fn filter_int(
    r: &mut Reader<'_>,
    code: SchemeCode,
    count: usize,
    op: CmpOp,
    lit: i32,
    cfg: &Config,
) -> Result<RoaringBitmap> {
    match code {
        SchemeCode::OneValue => {
            let v = r.i32()?;
            Ok(all_or_none(count, op.matches(&v, &lit)))
        }
        SchemeCode::Rle => {
            let _run_count = r.u32()?;
            let values = scheme::decompress_int(r, cfg)?;
            let lengths = scheme::decompress_int(r, cfg)?;
            let verdicts: Vec<bool> = values.iter().map(|v| op.matches(v, &lit)).collect();
            expand_runs(&verdicts, &lengths)
        }
        SchemeCode::Dict => {
            let dict_len = r.u32()? as usize;
            let dict = r.i32_vec(dict_len)?;
            let verdict: Vec<bool> = dict.iter().map(|v| op.matches(v, &lit)).collect();
            let codes = scheme::decompress_int(r, cfg)?;
            Ok(positions_where(codes.iter().map(|&c| {
                verdict.get(c as usize).copied().unwrap_or(false)
            })))
        }
        SchemeCode::Frequency => {
            let top = r.i32()?;
            let bitmap_len = r.u32()? as usize;
            let bitmap = RoaringBitmap::deserialize(r.take(bitmap_len)?)?;
            let exceptions = scheme::decompress_int(r, cfg)?;
            let top_matches = op.matches(&top, &lit);
            let mut out = if top_matches {
                // Everything matches except exceptions that fail.
                // lint: allow(cast) count came off a u32 frame header
                let mut out = RoaringBitmap::from_sorted_iter(0..count as u32);
                for (pos, v) in bitmap.iter().zip(&exceptions) {
                    if !op.matches(v, &lit) {
                        out.remove(pos);
                    }
                }
                out
            } else {
                RoaringBitmap::new()
            };
            if !top_matches {
                for (pos, v) in bitmap.iter().zip(&exceptions) {
                    if op.matches(v, &lit) {
                        out.insert(pos);
                    }
                }
            }
            Ok(out)
        }
        // Bit-packed and uncompressed blocks: decompress then filter.
        _ => {
            let values = dispatch_int(r, code, count, cfg)?;
            Ok(positions_where(values.iter().map(|v| op.matches(v, &lit))))
        }
    }
}

fn dispatch_int(
    r: &mut Reader<'_>,
    code: SchemeCode,
    count: usize,
    _cfg: &Config,
) -> Result<Vec<i32>> {
    use crate::scheme::int;
    match code {
        SchemeCode::Uncompressed => int::uncompressed::decompress(r, count),
        SchemeCode::FastPfor => int::pfor::decompress(r, count),
        SchemeCode::FastBp128 => int::bp::decompress(r, count),
        other => Err(Error::InvalidScheme(other.as_u8())),
    }
}

fn filter_double(
    r: &mut Reader<'_>,
    code: SchemeCode,
    count: usize,
    op: CmpOp,
    lit: f64,
    cfg: &Config,
) -> Result<RoaringBitmap> {
    match code {
        SchemeCode::OneValue => {
            let v = r.f64()?;
            Ok(all_or_none(count, op.matches(&v, &lit)))
        }
        SchemeCode::Rle => {
            let _run_count = r.u32()?;
            let values = scheme::decompress_double(r, cfg)?;
            let lengths = scheme::decompress_int(r, cfg)?;
            let verdicts: Vec<bool> = values.iter().map(|v| op.matches(v, &lit)).collect();
            expand_runs(&verdicts, &lengths)
        }
        SchemeCode::Dict => {
            let dict_len = r.u32()? as usize;
            let dict = r.f64_vec(dict_len)?;
            let verdict: Vec<bool> = dict.iter().map(|v| op.matches(v, &lit)).collect();
            let codes = scheme::decompress_int(r, cfg)?;
            Ok(positions_where(codes.iter().map(|&c| {
                verdict.get(c as usize).copied().unwrap_or(false)
            })))
        }
        SchemeCode::Frequency => {
            let top = r.f64()?;
            let bitmap_len = r.u32()? as usize;
            let bitmap = RoaringBitmap::deserialize(r.take(bitmap_len)?)?;
            let exceptions = scheme::decompress_double(r, cfg)?;
            let top_matches = op.matches(&top, &lit);
            let mut out = all_or_none(count, top_matches);
            for (pos, v) in bitmap.iter().zip(&exceptions) {
                if op.matches(v, &lit) != top_matches {
                    if top_matches {
                        out.remove(pos);
                    } else {
                        out.insert(pos);
                    }
                }
            }
            Ok(out)
        }
        // Pseudodecimal / Uncompressed: decompress then filter.
        other => {
            use crate::scheme::double;
            let values = match other {
                SchemeCode::Uncompressed => double::uncompressed::decompress(r, count)?,
                SchemeCode::Pseudodecimal => double::decimal::decompress(r, count, cfg)?,
                other => return Err(Error::InvalidScheme(other.as_u8())),
            };
            Ok(positions_where(values.iter().map(|v| op.matches(v, &lit))))
        }
    }
}

fn filter_str(
    r: &mut Reader<'_>,
    code: SchemeCode,
    count: usize,
    op: CmpOp,
    lit: &[u8],
    cfg: &Config,
) -> Result<RoaringBitmap> {
    use crate::scheme::str as sstr;
    match code {
        SchemeCode::OneValue => {
            let views = sstr::onevalue::decompress(r, count)?;
            let matched = count > 0 && op.matches(&views.get(0), &lit);
            Ok(all_or_none(count, matched))
        }
        SchemeCode::Dict | SchemeCode::DictFsst => {
            // Decode the dictionary (tiny) and evaluate per distinct value;
            // the code sequence maps through the verdict table.
            let views = match code {
                SchemeCode::Dict => sstr::dict::decompress(r, count, cfg)?,
                _ => sstr::dict_fsst::decompress(r, count, cfg)?,
            };
            // The views share the dict pool; evaluate each row's view. Rows
            // with equal views hit the same bytes, so this is cache-friendly
            // even without an explicit verdict table.
            Ok(positions_where(
                (0..views.len()).map(|i| op.matches(&views.get(i), &lit)),
            ))
        }
        SchemeCode::Uncompressed | SchemeCode::Fsst => {
            let views = match code {
                SchemeCode::Uncompressed => sstr::uncompressed::decompress(r, count)?,
                _ => sstr::fsst::decompress(r, count, cfg)?,
            };
            Ok(positions_where(
                (0..views.len()).map(|i| op.matches(&views.get(i), &lit)),
            ))
        }
        other => Err(Error::InvalidScheme(other.as_u8())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{compress_block_with, BlockRef};
    use crate::types::{ColumnData, StringArena};

    fn reference_filter(data: &ColumnData, op: CmpOp, lit: &Literal) -> Vec<u32> {
        match (data, lit) {
            (ColumnData::Int(v), Literal::Int(l)) => v
                .iter()
                .enumerate()
                .filter_map(|(i, x)| op.matches(x, l).then_some(i as u32))
                .collect(),
            (ColumnData::Double(v), Literal::Double(l)) => v
                .iter()
                .enumerate()
                .filter_map(|(i, x)| op.matches(x, l).then_some(i as u32))
                .collect(),
            (ColumnData::Str(a), Literal::Str(l)) => (0..a.len())
                .filter_map(|i| op.matches(&a.get(i), &l.as_slice()).then_some(i as u32))
                .collect(),
            _ => panic!("type mismatch"),
        }
    }

    fn check_all_schemes(data: ColumnData, schemes: &[SchemeCode], op: CmpOp, lit: Literal) {
        let cfg = Config::default();
        let expected = reference_filter(&data, op, &lit);
        for &code in schemes {
            let bytes = match &data {
                ColumnData::Int(v) => compress_block_with(code, BlockRef::Int(v), &cfg),
                ColumnData::Double(v) => compress_block_with(code, BlockRef::Double(v), &cfg),
                ColumnData::Str(a) => compress_block_with(code, BlockRef::Str(a), &cfg),
            };
            let got = filter_block(&bytes, data.column_type(), op, &lit, &cfg).unwrap();
            assert_eq!(
                got.iter().collect::<Vec<_>>(),
                expected,
                "scheme {code:?}, op {op:?}"
            );
        }
    }

    #[test]
    fn int_predicates_across_schemes() {
        let values: Vec<i32> = (0..5_000).map(|i| (i / 100) % 7).collect();
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
            check_all_schemes(
                ColumnData::Int(values.clone()),
                &[
                    SchemeCode::Uncompressed,
                    SchemeCode::Rle,
                    SchemeCode::Dict,
                    SchemeCode::Frequency,
                    SchemeCode::FastPfor,
                    SchemeCode::FastBp128,
                ],
                op,
                Literal::Int(3),
            );
        }
    }

    #[test]
    fn int_onevalue_block() {
        check_all_schemes(
            ColumnData::Int(vec![5; 1000]),
            &[SchemeCode::OneValue],
            CmpOp::Eq,
            Literal::Int(5),
        );
        check_all_schemes(
            ColumnData::Int(vec![5; 1000]),
            &[SchemeCode::OneValue],
            CmpOp::Gt,
            Literal::Int(5),
        );
    }

    #[test]
    fn double_predicates_across_schemes() {
        let values: Vec<f64> = (0..4_000).map(|i| ((i * 3) % 50) as f64 * 0.25).collect();
        for op in [CmpOp::Eq, CmpOp::Le, CmpOp::Gt] {
            check_all_schemes(
                ColumnData::Double(values.clone()),
                &[
                    SchemeCode::Uncompressed,
                    SchemeCode::Rle,
                    SchemeCode::Dict,
                    SchemeCode::Frequency,
                    SchemeCode::Pseudodecimal,
                ],
                op,
                Literal::Double(5.25),
            );
        }
    }

    #[test]
    fn nan_never_matches() {
        let values = vec![f64::NAN, 1.0, f64::NAN];
        check_all_schemes(
            ColumnData::Double(values),
            &[SchemeCode::Uncompressed],
            CmpOp::Eq,
            Literal::Double(f64::NAN),
        );
    }

    #[test]
    fn string_predicates_across_schemes() {
        let strings: Vec<String> = (0..3_000).map(|i| format!("city-{:02}", (i / 37) % 20)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let arena = StringArena::from_strs(&refs);
        for op in [CmpOp::Eq, CmpOp::Lt] {
            check_all_schemes(
                ColumnData::Str(arena.clone()),
                &[
                    SchemeCode::Uncompressed,
                    SchemeCode::Dict,
                    SchemeCode::DictFsst,
                    SchemeCode::Fsst,
                ],
                op,
                Literal::Str(b"city-07".to_vec()),
            );
        }
    }

    #[test]
    fn type_mismatch_is_error() {
        let cfg = Config::default();
        let bytes = compress_block_with(SchemeCode::Uncompressed, BlockRef::Int(&[1, 2]), &cfg);
        assert!(filter_block(&bytes, ColumnType::Integer, CmpOp::Eq, &Literal::Double(1.0), &cfg).is_err());
    }

    #[test]
    fn filter_decoded_matches_filter_block() {
        use crate::block::decompress_block;
        let cfg = Config::default();
        let values: Vec<i32> = (0..3_000).map(|i| (i * 7) % 40).collect();
        let bytes =
            compress_block_with(SchemeCode::Uncompressed, BlockRef::Int(&values), &cfg);
        let decoded = decompress_block(&bytes, ColumnType::Integer, &cfg).unwrap();
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
            let via_block =
                filter_block(&bytes, ColumnType::Integer, op, &Literal::Int(13), &cfg).unwrap();
            let via_decoded = filter_decoded(&decoded, op, &Literal::Int(13)).unwrap();
            assert_eq!(
                via_block.iter().collect::<Vec<_>>(),
                via_decoded.iter().collect::<Vec<_>>()
            );
        }
        // Type mismatch is a typed error, not a panic.
        assert!(filter_decoded(&decoded, CmpOp::Eq, &Literal::Double(1.0)).is_err());
    }

    #[test]
    fn fast_path_table_matches_module_contract() {
        // The module docs promise compressed-domain evaluation for exactly
        // these scheme/type pairs.
        assert!(has_fast_path(ColumnType::Integer, SchemeCode::Rle));
        assert!(has_fast_path(ColumnType::Integer, SchemeCode::Frequency));
        assert!(has_fast_path(ColumnType::Double, SchemeCode::Dict));
        assert!(has_fast_path(ColumnType::String, SchemeCode::DictFsst));
        assert!(!has_fast_path(ColumnType::Integer, SchemeCode::FastPfor));
        assert!(!has_fast_path(ColumnType::String, SchemeCode::Fsst));
        assert!(!has_fast_path(ColumnType::Double, SchemeCode::Pseudodecimal));
    }

    #[test]
    fn frequency_fast_path_with_matching_top() {
        // Top value matches the predicate; exceptions partially do.
        let mut values = vec![10i32; 2_000];
        for i in (0..2_000).step_by(37) {
            values[i] = i as i32;
        }
        check_all_schemes(
            ColumnData::Int(values),
            &[SchemeCode::Frequency],
            CmpOp::Ge,
            Literal::Int(10),
        );
    }

    #[test]
    fn cmp_op_flip_is_involutive_and_correct() {
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.flip().flip(), op);
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(op.matches(&a, &b), op.flip().matches(&b, &a));
            }
        }
    }
}
