//! FastBP128 integer scheme: frame-of-reference + vertical bit-packing.
//!
//! Payload: `[base: i32][word_count: u32][FastBP128 words]`. Unlike
//! [`super::pfor`], there is no exception patching — every 128-value block is
//! packed at the width of its largest offset, which is faster to decode but
//! sensitive to outliers (exactly the trade-off the paper's scheme pool
//! exploits by offering both).

use crate::config::Config;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use btr_bitpacking::{bp128, for_delta};

/// Compresses `values` as FOR + FastBP128.
pub fn compress(values: &[i32], out: &mut Vec<u8>) {
    let mut scratch = EncodeScratch::new();
    compress_into(values, &mut scratch, out);
}

/// [`compress`] leasing the offset and packed-word buffers from `scratch`.
pub fn compress_into(values: &[i32], scratch: &mut EncodeScratch, out: &mut Vec<u8>) {
    let mut offsets = scratch.lease_u32(values.len());
    let base = for_delta::for_encode_into(values, &mut offsets);
    let mut words = scratch.lease_u32(2 + values.len() / 2);
    bp128::encode_into(&offsets, &mut words);
    out.put_i32(base);
    // lint: allow(cast) encode side: packed word count fits u32
    out.put_u32(words.len() as u32);
    out.put_u32_slice(&words);
    scratch.release_u32(words);
    scratch.release_u32(offsets);
}

/// Decompresses a FastBP128 block of `count` values.
pub fn decompress(r: &mut Reader<'_>, count: usize) -> Result<Vec<i32>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_into(r, count, &Config::default(), &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses a FastBP128 block of `count` values into `out`, leasing the
/// packed-word and offset buffers from `scratch`.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    _cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<i32>,
) -> Result<()> {
    let base = r.i32()?;
    let word_count = r.u32()? as usize;
    // Capacity hint clamped to what the stream can actually supply, so a
    // hostile word_count can't force a huge lease before `take` rejects it.
    let mut words = scratch.lease_u32(word_count.min(r.remaining() / 4 + 1));
    let mut offsets = scratch.lease_u32(count);
    let result = (|| -> Result<()> {
        r.u32_vec_into(word_count, &mut words)?;
        // The stream's internal count must agree with the frame count
        // (already capped by `max_block_values`) before the codec sizes its
        // output.
        if words.first().map(|&c| c as usize) != Some(count) && count > 0 {
            return Err(Error::Corrupt("FastBP128 count mismatch"));
        }
        offsets.clear();
        bp128::decode_into(&words, &mut offsets)?;
        if offsets.len() != count {
            return Err(Error::Corrupt("FastBP128 count mismatch"));
        }
        out.clear();
        out.resize(count, 0);
        for_delta::for_decode_into(base, &offsets, out);
        Ok(())
    })();
    scratch.release_u32(words);
    scratch.release_u32(offsets);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::scheme::{compress_int_with, decompress_int, SchemeCode};

    fn roundtrip(values: &[i32]) -> usize {
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_int_with(SchemeCode::FastBp128, values, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decompress_int(&mut r, &cfg).unwrap(), values);
        buf.len()
    }

    #[test]
    fn roundtrip_small_values() {
        let values: Vec<i32> = (0..12_800).map(|i| i % 16).collect();
        let size = roundtrip(&values);
        // 4-bit packing => ~8x smaller.
        assert!(size * 6 < values.len() * 4, "got {size} bytes");
    }

    #[test]
    fn roundtrip_negative_and_extremes() {
        roundtrip(&[-5, -4, -3, 0, 100]);
        roundtrip(&[i32::MIN, i32::MAX, 0]);
        roundtrip(&[]);
    }

    #[test]
    fn outlier_hurts_bp_more_than_pfor() {
        let cfg = Config::default();
        let mut values: Vec<i32> = (0..12_800).map(|i| i % 16).collect();
        for i in (0..values.len()).step_by(128) {
            values[i] = i32::MAX;
        }
        let mut bp_buf = Vec::new();
        compress_int_with(SchemeCode::FastBp128, &values, 3, &cfg, &mut bp_buf);
        let mut pfor_buf = Vec::new();
        compress_int_with(SchemeCode::FastPfor, &values, 3, &cfg, &mut pfor_buf);
        assert!(
            pfor_buf.len() * 2 < bp_buf.len(),
            "pfor {} vs bp {}",
            pfor_buf.len(),
            bp_buf.len()
        );
    }
}
