//! Dictionary encoding for integers, with a cascaded code sequence.
//!
//! Payload: `[dict_len: u32][dict values: dict_len × i32][child block: code
//! sequence]`. Codes are assigned in first-occurrence order; the code
//! sequence typically cascades into FastBP128 or RLE. Decompression uses the
//! AVX2 gather kernel of §5.

use crate::config::Config;
use crate::scheme;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::simd;
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use crate::fxhash::FxHashMap;

/// Builds `(dictionary, codes)` in first-occurrence order.
pub fn encode_dict(values: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let mut map = FxHashMap::with_capacity_and_hasher(values.len() / 4 + 1, Default::default());
    let mut dict = Vec::new();
    let mut codes = Vec::with_capacity(values.len());
    encode_dict_into(values, &mut map, &mut dict, &mut codes);
    (dict, codes)
}

/// [`encode_dict`] into caller-owned buffers (all cleared first), so the
/// encode path can lease the map and both arrays instead of allocating.
pub fn encode_dict_into(
    values: &[i32],
    map: &mut FxHashMap<i32, usize>,
    dict: &mut Vec<i32>,
    codes: &mut Vec<i32>,
) {
    map.clear();
    dict.clear();
    codes.clear();
    for &v in values {
        let idx = *map.entry(v).or_insert_with(|| {
            dict.push(v);
            dict.len() - 1
        });
        // lint: allow(cast) encode side: dictionary sizes fit i32
        codes.push(idx as i32);
    }
}

/// Compresses `values` as a dictionary with a cascaded code sequence,
/// leasing the dictionary map and side-arrays from `scratch`.
pub fn compress(
    values: &[i32],
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let mut map = scratch.lease_int_map();
    let mut dict = scratch.lease_i32(values.len());
    let mut codes = scratch.lease_i32(values.len());
    encode_dict_into(values, &mut map, &mut dict, &mut codes);
    scratch.release_int_map(map);
    // lint: allow(cast) encode side: dictionary entry count fits u32
    out.put_u32(dict.len() as u32);
    out.put_i32_slice(&dict);
    scheme::compress_int_excluding_into(
        &codes,
        child_depth,
        cfg,
        scratch,
        out,
        Some(crate::scheme::SchemeCode::Dict),
    );
    scratch.release_i32(dict);
    scratch.release_i32(codes);
}

/// Decompresses a dictionary block of `count` values.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<Vec<i32>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_into(r, count, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses a dictionary block of `count` values into `out`, leasing the
/// dictionary and code buffers from `scratch`.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<i32>,
) -> Result<()> {
    let dict_len = r.u32()? as usize;
    let mut dict = scratch.lease_i32(dict_len.min(cfg.max_block_values));
    let mut codes = scratch.lease_i32(count);
    let mut codes_u32 = scratch.lease_u32(count);
    let result = (|| -> Result<()> {
        r.i32_vec_into(dict_len, &mut dict)?;
        scheme::decompress_int_into(r, cfg, scratch, &mut codes)?;
        if codes.len() != count {
            return Err(Error::Corrupt("dict code count mismatch"));
        }
        codes_u32.clear();
        for &c in codes.iter() {
            if c < 0 || c as usize >= dict_len {
                return Err(Error::Corrupt("dict code out of range"));
            }
            // lint: allow(cast) c was range-checked non-negative and < dict len above
            codes_u32.push(c as u32);
        }
        simd::dict_decode_i32_into(&codes_u32, &dict, cfg.simd, out);
        Ok(())
    })();
    scratch.release_i32(dict);
    scratch.release_i32(codes);
    scratch.release_u32(codes_u32);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{compress_int_with, decompress_int, SchemeCode};

    fn roundtrip(values: &[i32]) {
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_int_with(SchemeCode::Dict, values, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decompress_int(&mut r, &cfg).unwrap(), values);
    }

    #[test]
    fn roundtrip_low_cardinality() {
        let values: Vec<i32> = (0..10_000).map(|i| [1_000_000, -5, 0, 77][i % 4]).collect();
        roundtrip(&values);
    }

    #[test]
    fn roundtrip_single_and_empty() {
        roundtrip(&[42]);
        roundtrip(&[]);
    }

    #[test]
    fn encode_dict_first_occurrence_order() {
        let (dict, codes) = encode_dict(&[9, 5, 9, 1, 5]);
        assert_eq!(dict, vec![9, 5, 1]);
        assert_eq!(codes, vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn low_cardinality_compresses_well() {
        let cfg = Config::default();
        let values: Vec<i32> = (0..64_000).map(|i| (i % 3) * 1_000_000).collect();
        let mut buf = Vec::new();
        compress_int_with(SchemeCode::Dict, &values, 3, &cfg, &mut buf);
        assert!(buf.len() * 8 < values.len() * 4, "got {} bytes", buf.len());
    }

    #[test]
    fn out_of_range_code_is_error() {
        let cfg = Config::default();
        let mut buf = Vec::new();
        // Hand-craft: dict of 1 entry, uncompressed codes [0, 1] (1 invalid).
        use crate::writer::WriteLe;
        buf.put_u8(SchemeCode::Dict as u8);
        buf.put_u32(2);
        buf.put_u32(1);
        buf.put_i32(42);
        buf.put_u8(SchemeCode::Uncompressed as u8);
        buf.put_u32(2);
        buf.put_i32(0);
        buf.put_i32(1);
        let mut r = Reader::new(&buf);
        assert!(decompress_int(&mut r, &cfg).is_err());
    }
}
