//! One Value: a block whose values are all identical stores just that value.

use crate::config::Config;
use crate::scratch::DecodeScratch;
use crate::writer::{Reader, WriteLe};
use crate::Result;

/// Payload: one `i32`.
pub fn compress(values: &[i32], out: &mut Vec<u8>) {
    // lint: allow(indexing) windows(2) yields exactly 2 elements
    debug_assert!(values.windows(2).all(|w| w[0] == w[1]));
    out.put_i32(values.first().copied().unwrap_or(0));
}

/// Expands the stored value `count` times.
pub fn decompress(r: &mut Reader<'_>, count: usize) -> Result<Vec<i32>> {
    let v = r.i32()?;
    Ok(vec![v; count])
}

/// Expands the stored value `count` times into `out`, reusing its capacity.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    _cfg: &Config,
    _scratch: &mut DecodeScratch,
    out: &mut Vec<i32>,
) -> Result<()> {
    let v = r.i32()?;
    out.clear();
    out.resize(count, v);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let values = vec![-77; 64_000];
        let mut buf = Vec::new();
        compress(&values, &mut buf);
        assert_eq!(buf.len(), 4);
        let mut r = Reader::new(&buf);
        assert_eq!(decompress(&mut r, values.len()).unwrap(), values);
    }

    #[test]
    fn zero_count() {
        let mut buf = Vec::new();
        compress(&[], &mut buf);
        let mut r = Reader::new(&buf);
        assert!(decompress(&mut r, 0).unwrap().is_empty());
    }
}
