//! Frequency encoding (the paper's adaptation of DB2 BLU's scheme).
//!
//! Real-world columns often have one dominant value with exponentially rarer
//! exceptions. The block stores (1) the top value, (2) a Roaring bitmap
//! marking which positions are *not* the top value, and (3) the exception
//! values as a cascaded child block.
//!
//! Payload: `[top: i32][bitmap_len: u32][roaring bitmap][child block:
//! exceptions]`.

use crate::config::Config;
use crate::scheme;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::stats::IntegerStats;
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use btr_roaring::RoaringBitmap;

/// Compresses `values` as Frequency encoding.
///
/// Takes the selection layer's one-pass `stats` by reference (the dominant
/// value was already found there) instead of re-collecting them, and leases
/// the exception array from `scratch`.
pub fn compress(
    values: &[i32],
    stats: &IntegerStats,
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let top = stats.top_value;
    let mut exceptions = scratch.lease_i32(values.len().saturating_sub(stats.top_count));
    let bitmap = RoaringBitmap::from_sorted_iter(values.iter().enumerate().filter_map(|(i, &v)| {
        if v != top {
            exceptions.push(v);
            // lint: allow(cast) encode side: block row index fits u32
            Some(i as u32)
        } else {
            None
        }
    }));
    let bitmap_bytes = bitmap.serialize();
    out.put_i32(top);
    // lint: allow(cast) encode side: serialized bitmap is far smaller than 4 GiB
    out.put_u32(bitmap_bytes.len() as u32);
    out.extend_from_slice(&bitmap_bytes);
    scheme::compress_int_into(&exceptions, child_depth, cfg, scratch, out);
    scratch.release_i32(exceptions);
}

/// Decompresses a Frequency block of `count` values.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<Vec<i32>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_into(r, count, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses a Frequency block of `count` values into `out`, leasing the
/// exception buffer from `scratch`. The Roaring bitmap itself still
/// deserializes into fresh containers — the one allocation this scheme keeps.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<i32>,
) -> Result<()> {
    let top = r.i32()?;
    let bitmap_len = r.u32()? as usize;
    let bitmap = RoaringBitmap::deserialize(r.take(bitmap_len)?)?;
    let mut exceptions = scratch.lease_i32(0);
    let mut positions = scratch.lease_u32(bitmap.cardinality() as usize);
    let result = (|| -> Result<()> {
        scheme::decompress_int_into(r, cfg, scratch, &mut exceptions)?;
        if bitmap.cardinality() as usize != exceptions.len() {
            return Err(Error::Corrupt("frequency exception count mismatch"));
        }
        positions.extend(bitmap.iter());
        // Splat the top value, then patch the exceptions in: both steps are
        // vectorized, with one range check over all positions up front.
        crate::simd::fill_i32(top, count, cfg.simd, out);
        if !crate::simd::patch_i32(out, &positions, &exceptions, cfg.simd) {
            return Err(Error::Corrupt("frequency exception position out of range"));
        }
        Ok(())
    })();
    scratch.release_u32(positions);
    scratch.release_i32(exceptions);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{compress_int_with, decompress_int, SchemeCode};

    fn roundtrip(values: &[i32]) -> usize {
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_int_with(SchemeCode::Frequency, values, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decompress_int(&mut r, &cfg).unwrap(), values);
        buf.len()
    }

    #[test]
    fn roundtrip_dominant_value() {
        let mut values = vec![0; 10_000];
        for i in (0..10_000).step_by(97) {
            values[i] = i as i32;
        }
        let size = roundtrip(&values);
        assert!(size * 10 < values.len() * 4, "got {size} bytes");
    }

    #[test]
    fn roundtrip_no_exceptions() {
        roundtrip(&[5; 100]);
    }

    #[test]
    fn roundtrip_all_exceptions_edge() {
        // Degenerate but legal: top value appears once.
        roundtrip(&[1, 2, 3, 4]);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }
}
