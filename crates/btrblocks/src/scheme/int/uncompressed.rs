//! Raw integer storage — the depth-0 fallback and last-resort scheme.

use crate::config::Config;
use crate::scratch::DecodeScratch;
use crate::writer::{Reader, WriteLe};
use crate::Result;

/// Payload: `count × i32` little-endian.
pub fn compress(values: &[i32], out: &mut Vec<u8>) {
    out.put_i32_slice(values);
}

/// Reads `count` raw integers.
pub fn decompress(r: &mut Reader<'_>, count: usize) -> Result<Vec<i32>> {
    r.i32_vec(count)
}

/// Reads `count` raw integers into `out`, reusing its capacity.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    _cfg: &Config,
    _scratch: &mut DecodeScratch,
    out: &mut Vec<i32>,
) -> Result<()> {
    r.i32_vec_into(count, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let values = vec![i32::MIN, -1, 0, 1, i32::MAX];
        let mut buf = Vec::new();
        compress(&values, &mut buf);
        assert_eq!(buf.len(), values.len() * 4);
        let mut r = Reader::new(&buf);
        assert_eq!(decompress(&mut r, values.len()).unwrap(), values);
    }

    #[test]
    fn truncated_errors() {
        let mut buf = Vec::new();
        compress(&[1, 2, 3], &mut buf);
        let mut r = Reader::new(&buf[..8]);
        assert!(decompress(&mut r, 3).is_err());
    }
}
