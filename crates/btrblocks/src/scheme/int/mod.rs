//! Integer encoding schemes.

pub mod bp;
pub mod dict;
pub mod frequency;
pub mod onevalue;
pub mod pfor;
pub mod rle;
pub mod uncompressed;

use crate::config::Config;
use crate::scheme::SchemeCode;
use crate::stats::IntegerStats;

/// Statistics-based viability filter (paper §3, step 2).
pub fn viable(code: SchemeCode, stats: &IntegerStats, cfg: &Config) -> bool {
    match code {
        SchemeCode::OneValue => stats.unique_count <= 1,
        SchemeCode::Rle => stats.average_run_length >= cfg.rle_min_avg_run,
        SchemeCode::Frequency => {
            stats.unique_fraction() <= cfg.frequency_unique_max
                && stats.top_count * 2 >= stats.count
        }
        // A dictionary can never win when every value is distinct.
        SchemeCode::Dict => stats.unique_count < stats.count,
        SchemeCode::FastPfor | SchemeCode::FastBp128 => true,
        SchemeCode::Uncompressed => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(values: &[i32]) -> IntegerStats {
        IntegerStats::collect(values)
    }

    #[test]
    fn rle_excluded_on_short_runs() {
        let cfg = Config::default();
        let alternating: Vec<i32> = (0..100).map(|i| i % 2).collect();
        assert!(!viable(SchemeCode::Rle, &stats_of(&alternating), &cfg));
        let runs = vec![1, 1, 1, 2, 2, 2];
        assert!(viable(SchemeCode::Rle, &stats_of(&runs), &cfg));
    }

    #[test]
    fn frequency_excluded_on_high_uniqueness() {
        let cfg = Config::default();
        let unique: Vec<i32> = (0..100).collect();
        assert!(!viable(SchemeCode::Frequency, &stats_of(&unique), &cfg));
        let mut skewed = vec![7; 90];
        skewed.extend(0..10);
        assert!(viable(SchemeCode::Frequency, &stats_of(&skewed), &cfg));
    }

    #[test]
    fn bitpacking_always_viable() {
        let cfg = Config::default();
        let any: Vec<i32> = (0..50).collect();
        assert!(viable(SchemeCode::FastPfor, &stats_of(&any), &cfg));
        assert!(viable(SchemeCode::FastBp128, &stats_of(&any), &cfg));
    }
}
