//! Run-length encoding for integers, with cascading children.
//!
//! Payload: `[run_count: u32][child block: run values][child block: run
//! lengths]`. Both children are full framed blocks compressed by recursive
//! scheme selection (paper Listing 1's two `pickScheme` calls).
//! Decompression uses the vectorized splat-store kernel of §5.

use crate::config::Config;
use crate::scheme;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::simd;
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};

/// Splits `values` into `(run_values, run_lengths)`.
pub fn runs_of(values: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let mut run_values = Vec::new();
    let mut run_lengths = Vec::new();
    runs_of_into(values, &mut run_values, &mut run_lengths);
    (run_values, run_lengths)
}

/// [`runs_of`] into caller-owned buffers (cleared first), so the encode path
/// can lease the run arrays instead of allocating per block.
pub fn runs_of_into(values: &[i32], run_values: &mut Vec<i32>, run_lengths: &mut Vec<i32>) {
    run_values.clear();
    run_lengths.clear();
    for &v in values {
        match run_values.last() {
            Some(&last) if last == v => *run_lengths.last_mut().expect("parallel arrays") += 1,
            _ => {
                run_values.push(v);
                run_lengths.push(1);
            }
        }
    }
}

/// Compresses `values` as RLE with cascaded children, leasing the run arrays
/// from `scratch`.
pub fn compress(
    values: &[i32],
    child_depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let mut run_values = scratch.lease_i32(values.len());
    let mut run_lengths = scratch.lease_i32(values.len());
    runs_of_into(values, &mut run_values, &mut run_lengths);
    // lint: allow(cast) encode side: run count fits u32
    out.put_u32(run_values.len() as u32);
    scheme::compress_int_into(&run_values, child_depth, cfg, scratch, out);
    scheme::compress_int_into(&run_lengths, child_depth, cfg, scratch, out);
    scratch.release_i32(run_values);
    scratch.release_i32(run_lengths);
}

/// Decompresses an RLE block of `count` values.
pub fn decompress(r: &mut Reader<'_>, count: usize, cfg: &Config) -> Result<Vec<i32>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_into(r, count, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses an RLE block of `count` values into `out`, leasing the run
/// arrays from `scratch` and returning them on every exit path.
pub fn decompress_into(
    r: &mut Reader<'_>,
    count: usize,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<i32>,
) -> Result<()> {
    let run_count = r.u32()? as usize;
    // Capacity hints only — the cascade fills to whatever the child frames
    // say. Clamp so a hostile run_count can't force a huge lease.
    let hint = run_count.min(count);
    let mut run_values = scratch.lease_i32(hint);
    let mut run_lengths = scratch.lease_i32(hint);
    let mut lengths = scratch.lease_u32(hint);
    let result = (|| -> Result<()> {
        scheme::decompress_int_into(r, cfg, scratch, &mut run_values)?;
        scheme::decompress_int_into(r, cfg, scratch, &mut run_lengths)?;
        if run_values.len() != run_count || run_lengths.len() != run_count {
            return Err(Error::Corrupt("RLE run array length mismatch"));
        }
        let mut total = 0usize;
        lengths.clear();
        for &l in run_lengths.iter() {
            if l < 0 {
                return Err(Error::Corrupt("negative RLE run length"));
            }
            total += l as usize;
            // lint: allow(cast) l was checked non-negative above
            lengths.push(l as u32);
        }
        if total != count {
            return Err(Error::Corrupt("RLE total length mismatch"));
        }
        simd::rle_decode_i32_into(&run_values, &lengths, total, cfg.simd, out);
        Ok(())
    })();
    scratch.release_i32(run_values);
    scratch.release_i32(run_lengths);
    scratch.release_u32(lengths);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{compress_int_with, decompress_int, SchemeCode};

    fn roundtrip(values: &[i32]) {
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_int_with(SchemeCode::Rle, values, 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decompress_int(&mut r, &cfg).unwrap(), values);
    }

    #[test]
    fn roundtrip_runs() {
        roundtrip(&[5, 5, 5, 1, 1, 9, 9, 9, 9]);
        roundtrip(&[7; 1000]);
        roundtrip(&(0..100).collect::<Vec<_>>()); // worst case: all runs of 1
    }

    #[test]
    fn runs_of_splits_correctly() {
        let (v, l) = runs_of(&[3, 3, 8, 8, 8, 1]);
        assert_eq!(v, vec![3, 8, 1]);
        assert_eq!(l, vec![2, 3, 1]);
        let (v, l) = runs_of(&[]);
        assert!(v.is_empty() && l.is_empty());
    }

    #[test]
    fn compresses_long_runs_well() {
        let cfg = Config::default();
        let values: Vec<i32> = (0..64_000).map(|i| i / 1000).collect();
        let mut buf = Vec::new();
        compress_int_with(SchemeCode::Rle, &values, 3, &cfg, &mut buf);
        assert!(buf.len() * 50 < values.len() * 4, "got {} bytes", buf.len());
    }

    #[test]
    fn corrupt_total_is_error() {
        let cfg = Config::default();
        let mut buf = Vec::new();
        compress_int_with(SchemeCode::Rle, &[1, 1, 2], 3, &cfg, &mut buf);
        let mut r = Reader::new(&buf);
        let code = r.u8().unwrap();
        assert_eq!(code, SchemeCode::Rle as u8);
        // Lie about the count in the frame.
        let mut tampered = buf.clone();
        tampered[1..5].copy_from_slice(&10u32.to_le_bytes());
        let mut r = Reader::new(&tampered);
        assert!(decompress_int(&mut r, &cfg).is_err());
    }
}
