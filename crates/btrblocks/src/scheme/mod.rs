//! The encoding scheme pool, selection algorithm, and cascade engine.
//!
//! Every compressed block is framed as `[scheme code: u8][count: u32][payload]`.
//! Scheme payloads embed *child blocks* with the same framing (e.g. RLE's
//! value and run-length arrays), which is how cascading works: compression
//! recursively calls [`compress_int`] / [`compress_double`] /
//! [`compress_str`] with a decremented depth budget, and decompression
//! recurses by reading the child frames. Depth 0 always yields
//! `Uncompressed`, bounding the recursion (paper §3.2).
//!
//! Scheme *selection* (paper Listing 1) lives in [`pick_int`]/[`pick_double`]/
//! [`pick_str`]: collect full-block statistics, filter non-viable schemes,
//! compress a small sample with each survivor, and keep the best observed
//! ratio. All three selection paths share one generic candidate loop
//! ([`run_selection`]); statistics are collected **once** per (values,
//! cascade level) and passed by reference into viability checks, analytic
//! estimates, and the chosen scheme's compressor.
//!
//! The `*_into` entry points thread an [`EncodeScratch`] arena through the
//! whole pipeline so sample gathers, candidate trial buffers, and scheme
//! side-arrays are leased rather than allocated; the legacy allocate-fresh
//! signatures remain as thin wrappers.

pub mod double;
pub mod filter;
pub mod int;
pub mod str;

use crate::config::Config;
use crate::sampling;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::stats::{DoubleStats, IntegerStats, StringStats};
use crate::types::{ColumnType, StringArena, StringViews};
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};

/// Reads and validates one framed block header: `[scheme code: u8][count: u32]`.
///
/// Centralizes the `count > cfg.max_block_values` cap check that every
/// cascade level must apply before trusting a length field enough to size
/// buffers from it.
pub fn read_frame_header(r: &mut Reader<'_>, cfg: &Config) -> Result<(SchemeCode, usize)> {
    let code = SchemeCode::from_u8(r.u8()?)?;
    let count = r.u32()? as usize;
    if count > cfg.max_block_values {
        return Err(Error::Corrupt("block claims more values than max_block_values"));
    }
    Ok((code, count))
}

/// Identifies an encoding scheme in the serialized format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SchemeCode {
    /// Raw values, no compression. The depth-0 fallback.
    Uncompressed = 0,
    /// A single value for the entire block.
    OneValue = 1,
    /// Run-length encoding; cascades into values and run lengths.
    Rle = 2,
    /// Dictionary encoding; cascades into the code sequence.
    Dict = 3,
    /// One dominant top value + Roaring exception bitmap (paper's adaptation
    /// of DB2 BLU frequency encoding); cascades into the exception values.
    Frequency = 4,
    /// FastPFOR (patched FOR bit-packing), integers only.
    FastPfor = 5,
    /// FastBP128 (plain vertical bit-packing), integers only.
    FastBp128 = 6,
    /// Pseudodecimal encoding, doubles only; cascades into digit and
    /// exponent integer columns.
    Pseudodecimal = 7,
    /// FSST over the raw string concatenation; cascades into string lengths.
    Fsst = 8,
    /// Dictionary whose string pool is FSST-compressed; cascades into codes.
    DictFsst = 9,
}

impl SchemeCode {
    /// Parses a scheme code byte.
    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => SchemeCode::Uncompressed,
            1 => SchemeCode::OneValue,
            2 => SchemeCode::Rle,
            3 => SchemeCode::Dict,
            4 => SchemeCode::Frequency,
            5 => SchemeCode::FastPfor,
            6 => SchemeCode::FastBp128,
            7 => SchemeCode::Pseudodecimal,
            8 => SchemeCode::Fsst,
            9 => SchemeCode::DictFsst,
            other => return Err(Error::InvalidScheme(other)),
        })
    }

    /// The wire byte for this scheme (inverse of [`SchemeCode::from_u8`]).
    #[inline]
    pub fn as_u8(self) -> u8 {
        // lint: allow(cast) repr(u8) enum with explicit discriminants
        self as u8
    }

    /// Short name for reports (matches the paper's labels).
    pub fn name(self) -> &'static str {
        match self {
            SchemeCode::Uncompressed => "Uncompressed",
            SchemeCode::OneValue => "OneValue",
            SchemeCode::Rle => "RLE",
            SchemeCode::Dict => "Dictionary",
            SchemeCode::Frequency => "Frequency",
            SchemeCode::FastPfor => "FastPFOR",
            SchemeCode::FastBp128 => "FastBP128",
            SchemeCode::Pseudodecimal => "Pseudodec.",
            SchemeCode::Fsst => "FSST",
            SchemeCode::DictFsst => "Dict+FSST",
        }
    }

    /// The complete default pool (paper Table 1 / Figure 3).
    pub fn full_pool() -> Vec<SchemeCode> {
        vec![
            SchemeCode::Uncompressed,
            SchemeCode::OneValue,
            SchemeCode::Rle,
            SchemeCode::Dict,
            SchemeCode::Frequency,
            SchemeCode::FastPfor,
            SchemeCode::FastBp128,
            SchemeCode::Pseudodecimal,
            SchemeCode::Fsst,
            SchemeCode::DictFsst,
        ]
    }

    /// Schemes applicable to `column_type` (Figure 3's decision trees).
    pub fn applicable(column_type: ColumnType) -> &'static [SchemeCode] {
        match column_type {
            ColumnType::Integer => &[
                SchemeCode::OneValue,
                SchemeCode::Rle,
                SchemeCode::Dict,
                SchemeCode::Frequency,
                SchemeCode::FastPfor,
                SchemeCode::FastBp128,
                SchemeCode::Uncompressed,
            ],
            ColumnType::Double => &[
                SchemeCode::OneValue,
                SchemeCode::Rle,
                SchemeCode::Dict,
                SchemeCode::Frequency,
                SchemeCode::Pseudodecimal,
                SchemeCode::Uncompressed,
            ],
            ColumnType::String => &[
                SchemeCode::OneValue,
                SchemeCode::Dict,
                SchemeCode::DictFsst,
                SchemeCode::Fsst,
                SchemeCode::Uncompressed,
            ],
        }
    }
}

/// One scheme's estimated compression ratio during selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The candidate scheme.
    pub code: SchemeCode,
    /// Estimated ratio: `uncompressed sample bytes / compressed sample bytes`.
    pub ratio: f64,
}

/// The outcome of scheme selection for one block.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The chosen scheme.
    pub code: SchemeCode,
    /// All candidate estimates (viable schemes only).
    pub estimates: Vec<Estimate>,
}

/// The shared candidate loop of scheme selection (paper Listing 1's outer
/// loop), generic over the per-type work: iterate the type's applicable
/// schemes in their fixed order, skip `Uncompressed`, disallowed, and
/// excluded codes, ask `ratio_of` for an estimate (`None` = not viable), and
/// keep the best ratio above `Uncompressed`'s baseline of 1.0.
///
/// `estimates` is only populated for the public `pick_*` API; the internal
/// cascade paths pass `None` and skip the bookkeeping entirely.
fn run_selection(
    ty: ColumnType,
    cfg: &Config,
    exclude: Option<SchemeCode>,
    mut ratio_of: impl FnMut(SchemeCode) -> Option<f64>,
    mut estimates: Option<&mut Vec<Estimate>>,
) -> SchemeCode {
    let mut best = Estimate { code: SchemeCode::Uncompressed, ratio: 1.0 };
    for &code in SchemeCode::applicable(ty) {
        if code == SchemeCode::Uncompressed || !cfg.allows(code) || Some(code) == exclude {
            continue;
        }
        let Some(ratio) = ratio_of(code) else { continue };
        if let Some(list) = estimates.as_deref_mut() {
            list.push(Estimate { code, ratio });
        }
        if ratio > best.ratio {
            best = Estimate { code, ratio };
        }
    }
    best.code
}

/// Capacity hint for a sample gather: the whole block when it is small
/// enough to be returned as a single window, else the configured sample size.
fn sample_cap(n: usize, cfg: &Config) -> usize {
    let total = cfg.sample_runs * cfg.sample_run_len;
    if total == 0 {
        n
    } else {
        n.min(total)
    }
}

// ------------------------------------------------------------------ integers

/// Compresses an integer block with automatic scheme selection, appending a
/// framed block to `out`. Returns the root scheme chosen.
pub fn compress_int(values: &[i32], depth: u8, cfg: &Config, out: &mut Vec<u8>) -> SchemeCode {
    let mut scratch = EncodeScratch::new();
    compress_int_excluding_into(values, depth, cfg, &mut scratch, out, None)
}

/// [`compress_int`] leasing all temporaries from `scratch`.
pub fn compress_int_into(
    values: &[i32],
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) -> SchemeCode {
    compress_int_excluding_into(values, depth, cfg, scratch, out, None)
}

/// Like [`compress_int`], but bans one scheme from the *root* choice. Used by
/// schemes compressing their own outputs: a dictionary's code sequence must
/// not immediately pick Dictionary again — the inner dictionary would be an
/// identity mapping that burns cascade depth without shrinking anything.
pub fn compress_int_excluding(
    values: &[i32],
    depth: u8,
    cfg: &Config,
    out: &mut Vec<u8>,
    exclude: Option<SchemeCode>,
) -> SchemeCode {
    let mut scratch = EncodeScratch::new();
    compress_int_excluding_into(values, depth, cfg, &mut scratch, out, exclude)
}

/// [`compress_int_excluding`] leasing all temporaries from `scratch`. This
/// is the cascade's workhorse: statistics are collected once (into a pooled
/// map) and shared by selection and the chosen scheme's compressor.
pub fn compress_int_excluding_into(
    values: &[i32],
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
    exclude: Option<SchemeCode>,
) -> SchemeCode {
    if depth == 0 || values.is_empty() {
        emit_int(SchemeCode::Uncompressed, values, None, depth, cfg, scratch, out);
        return SchemeCode::Uncompressed;
    }
    let mut counts = scratch.lease_int_map();
    let stats = IntegerStats::collect_with_map(values, &mut counts);
    scratch.release_int_map(counts);
    let code = select_int(values, depth, cfg, exclude, &stats, scratch, None);
    emit_int(code, values, Some(&stats), depth, cfg, scratch, out);
    code
}

/// Selects the best scheme for an integer block (paper Listing 1).
pub fn pick_int(values: &[i32], depth: u8, cfg: &Config) -> Selection {
    pick_int_excluding(values, depth, cfg, None)
}

/// [`pick_int`] with one scheme banned (see [`compress_int_excluding`]).
pub fn pick_int_excluding(values: &[i32], depth: u8, cfg: &Config, exclude: Option<SchemeCode>) -> Selection {
    if depth == 0 || values.is_empty() {
        return trivial_selection();
    }
    let stats = IntegerStats::collect(values);
    let mut scratch = EncodeScratch::new();
    let mut estimates = Vec::new();
    let code = select_int(values, depth, cfg, exclude, &stats, &mut scratch, Some(&mut estimates));
    Selection { code, estimates }
}

/// Selection body shared by [`pick_int_excluding`] (which records estimates)
/// and [`compress_int_excluding_into`] (which does not): OneValue shortcut,
/// sample gather into leased buffers, then the generic candidate loop with
/// trial compressions reusing one leased output buffer.
fn select_int(
    values: &[i32],
    depth: u8,
    cfg: &Config,
    exclude: Option<SchemeCode>,
    stats: &IntegerStats,
    scratch: &mut EncodeScratch,
    mut estimates: Option<&mut Vec<Estimate>>,
) -> SchemeCode {
    if stats.unique_count == 1 && cfg.allows(SchemeCode::OneValue) {
        // Guaranteed optimal; skip sampling entirely.
        if let Some(list) = estimates.as_deref_mut() {
            list.push(Estimate { code: SchemeCode::OneValue, ratio: values.len() as f64 });
        }
        return SchemeCode::OneValue;
    }
    let mut ranges = scratch.lease_ranges(cfg.sample_runs);
    sampling::sample_ranges_into(values.len(), cfg.sample_runs, cfg.sample_run_len, depth as u64, &mut ranges);
    let mut sample = scratch.lease_i32(sample_cap(values.len(), cfg));
    sampling::gather_int_into(values, &ranges, &mut sample);
    let sample_bytes = (sample.len() * 4) as f64;
    let mut trial = scratch.lease_u8(sample.len() * 4 + 64);
    let code = run_selection(
        ColumnType::Integer,
        cfg,
        exclude,
        |code| {
            if !int::viable(code, stats, cfg) {
                return None;
            }
            Some(if code == SchemeCode::Dict && cfg.analytic_estimates {
                dict_ratio(values.len(), stats.unique_count, values.len() * 4, stats.unique_count * 4)
            } else {
                trial.clear();
                emit_int(code, &sample, None, depth, cfg, scratch, &mut trial);
                let sampled = sample_bytes / trial.len() as f64;
                if code == SchemeCode::Rle && cfg.analytic_estimates {
                    // Sample runs are at most `sample_run_len` values long, so the
                    // sample systematically underestimates RLE on extreme-run
                    // data; the full-block run count gives a conservative floor
                    // (it ignores cascade gains on the run arrays).
                    sampled.max(rle_floor(values.len(), stats.average_run_length, 4))
                } else {
                    sampled
                }
            })
        },
        estimates,
    );
    scratch.release_u8(trial);
    scratch.release_i32(sample);
    scratch.release_ranges(ranges);
    code
}

/// Compresses an integer block with a forced root scheme (used by selection
/// itself, by ablation benchmarks, and by the Figure 5/6 harnesses).
pub fn compress_int_with(code: SchemeCode, values: &[i32], depth: u8, cfg: &Config, out: &mut Vec<u8>) {
    let mut scratch = EncodeScratch::new();
    compress_int_with_into(code, values, depth, cfg, &mut scratch, out);
}

/// [`compress_int_with`] leasing all temporaries from `scratch`.
pub fn compress_int_with_into(
    code: SchemeCode,
    values: &[i32],
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    emit_int(code, values, None, depth, cfg, scratch, out);
}

/// Writes the frame header and dispatches to the scheme compressor.
///
/// `stats` carries the selection layer's one-pass statistics into schemes
/// that need them (Frequency's top value); a forced compression without
/// prior selection passes `None` and Frequency re-collects for itself.
fn emit_int(
    code: SchemeCode,
    values: &[i32],
    stats: Option<&IntegerStats>,
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let code = if depth == 0 || values.is_empty() { SchemeCode::Uncompressed } else { code };
    out.put_u8(code.as_u8());
    // lint: allow(cast) encode side: block length is capped at max_block_values
    out.put_u32(values.len() as u32);
    let child_depth = depth.saturating_sub(1);
    match code {
        SchemeCode::Uncompressed => int::uncompressed::compress(values, out),
        SchemeCode::OneValue => int::onevalue::compress(values, out),
        SchemeCode::Rle => int::rle::compress(values, child_depth, cfg, scratch, out),
        SchemeCode::Dict => int::dict::compress(values, child_depth, cfg, scratch, out),
        SchemeCode::Frequency => match stats {
            Some(stats) => int::frequency::compress(values, stats, child_depth, cfg, scratch, out),
            None => {
                let mut counts = scratch.lease_int_map();
                let stats = IntegerStats::collect_with_map(values, &mut counts);
                scratch.release_int_map(counts);
                int::frequency::compress(values, &stats, child_depth, cfg, scratch, out)
            }
        },
        SchemeCode::FastPfor => int::pfor::compress_into(values, scratch, out),
        SchemeCode::FastBp128 => int::bp::compress_into(values, scratch, out),
        _ => unreachable!("scheme {code:?} is not an integer scheme"),
    }
}

/// Decompresses one framed integer block from `r` into a fresh vector.
pub fn decompress_int(r: &mut Reader<'_>, cfg: &Config) -> Result<Vec<i32>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_int_into(r, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses one framed integer block from `r` into `out` (cleared
/// first), leasing cascade temporaries from `scratch` instead of allocating.
pub fn decompress_int_into(
    r: &mut Reader<'_>,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<i32>,
) -> Result<()> {
    let (code, count) = read_frame_header(r, cfg)?;
    match code {
        SchemeCode::Uncompressed => int::uncompressed::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::OneValue => int::onevalue::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::Rle => int::rle::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::Dict => int::dict::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::Frequency => int::frequency::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::FastPfor => int::pfor::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::FastBp128 => int::bp::decompress_into(r, count, cfg, scratch, out),
        other => Err(Error::InvalidScheme(other.as_u8())),
    }
}

// ------------------------------------------------------------------- doubles

/// Compresses a double block with automatic scheme selection.
pub fn compress_double(values: &[f64], depth: u8, cfg: &Config, out: &mut Vec<u8>) -> SchemeCode {
    let mut scratch = EncodeScratch::new();
    compress_double_excluding_into(values, depth, cfg, &mut scratch, out, None)
}

/// [`compress_double`] leasing all temporaries from `scratch`.
pub fn compress_double_into(
    values: &[f64],
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) -> SchemeCode {
    compress_double_excluding_into(values, depth, cfg, scratch, out, None)
}

/// Like [`compress_double`], but bans one scheme from the root choice (see
/// [`compress_int_excluding`] for why).
pub fn compress_double_excluding(
    values: &[f64],
    depth: u8,
    cfg: &Config,
    out: &mut Vec<u8>,
    exclude: Option<SchemeCode>,
) -> SchemeCode {
    let mut scratch = EncodeScratch::new();
    compress_double_excluding_into(values, depth, cfg, &mut scratch, out, exclude)
}

/// [`compress_double_excluding`] leasing all temporaries from `scratch`,
/// with statistics collected once and shared (see
/// [`compress_int_excluding_into`]).
pub fn compress_double_excluding_into(
    values: &[f64],
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
    exclude: Option<SchemeCode>,
) -> SchemeCode {
    if depth == 0 || values.is_empty() {
        emit_double(SchemeCode::Uncompressed, values, None, depth, cfg, scratch, out);
        return SchemeCode::Uncompressed;
    }
    let mut counts = scratch.lease_bits_map();
    let stats = DoubleStats::collect_with_map(values, &mut counts);
    scratch.release_bits_map(counts);
    let code = select_double(values, depth, cfg, exclude, &stats, scratch, None);
    emit_double(code, values, Some(&stats), depth, cfg, scratch, out);
    code
}

/// Selects the best scheme for a double block.
pub fn pick_double(values: &[f64], depth: u8, cfg: &Config) -> Selection {
    pick_double_excluding(values, depth, cfg, None)
}

/// [`pick_double`] with one scheme banned.
pub fn pick_double_excluding(values: &[f64], depth: u8, cfg: &Config, exclude: Option<SchemeCode>) -> Selection {
    if depth == 0 || values.is_empty() {
        return trivial_selection();
    }
    let stats = DoubleStats::collect(values);
    let mut scratch = EncodeScratch::new();
    let mut estimates = Vec::new();
    let code = select_double(values, depth, cfg, exclude, &stats, &mut scratch, Some(&mut estimates));
    Selection { code, estimates }
}

/// Selection body for doubles (see [`select_int`]).
fn select_double(
    values: &[f64],
    depth: u8,
    cfg: &Config,
    exclude: Option<SchemeCode>,
    stats: &DoubleStats,
    scratch: &mut EncodeScratch,
    mut estimates: Option<&mut Vec<Estimate>>,
) -> SchemeCode {
    if stats.unique_count == 1 && cfg.allows(SchemeCode::OneValue) {
        if let Some(list) = estimates.as_deref_mut() {
            list.push(Estimate { code: SchemeCode::OneValue, ratio: values.len() as f64 });
        }
        return SchemeCode::OneValue;
    }
    let mut ranges = scratch.lease_ranges(cfg.sample_runs);
    sampling::sample_ranges_into(values.len(), cfg.sample_runs, cfg.sample_run_len, depth as u64, &mut ranges);
    let mut sample = scratch.lease_f64(sample_cap(values.len(), cfg));
    sampling::gather_double_into(values, &ranges, &mut sample);
    let sample_bytes = (sample.len() * 8) as f64;
    let mut trial = scratch.lease_u8(sample.len() * 8 + 64);
    let code = run_selection(
        ColumnType::Double,
        cfg,
        exclude,
        |code| {
            if !double::viable(code, stats, &sample, cfg) {
                return None;
            }
            Some(if code == SchemeCode::Dict && cfg.analytic_estimates {
                dict_ratio(values.len(), stats.unique_count, values.len() * 8, stats.unique_count * 8)
            } else {
                trial.clear();
                emit_double(code, &sample, None, depth, cfg, scratch, &mut trial);
                let sampled = sample_bytes / trial.len() as f64;
                if code == SchemeCode::Rle && cfg.analytic_estimates {
                    sampled.max(rle_floor(values.len(), stats.average_run_length, 8))
                } else {
                    sampled
                }
            })
        },
        estimates,
    );
    scratch.release_u8(trial);
    scratch.release_f64(sample);
    scratch.release_ranges(ranges);
    code
}

/// Compresses a double block with a forced root scheme.
pub fn compress_double_with(code: SchemeCode, values: &[f64], depth: u8, cfg: &Config, out: &mut Vec<u8>) {
    let mut scratch = EncodeScratch::new();
    compress_double_with_into(code, values, depth, cfg, &mut scratch, out);
}

/// [`compress_double_with`] leasing all temporaries from `scratch`.
pub fn compress_double_with_into(
    code: SchemeCode,
    values: &[f64],
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    emit_double(code, values, None, depth, cfg, scratch, out);
}

/// Writes the frame header and dispatches to the scheme compressor (see
/// [`emit_int`] for the `stats` contract).
fn emit_double(
    code: SchemeCode,
    values: &[f64],
    stats: Option<&DoubleStats>,
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let code = if depth == 0 || values.is_empty() { SchemeCode::Uncompressed } else { code };
    out.put_u8(code.as_u8());
    // lint: allow(cast) encode side: block length is capped at max_block_values
    out.put_u32(values.len() as u32);
    let child_depth = depth.saturating_sub(1);
    match code {
        SchemeCode::Uncompressed => double::uncompressed::compress(values, out),
        SchemeCode::OneValue => double::onevalue::compress(values, out),
        SchemeCode::Rle => double::rle::compress(values, child_depth, cfg, scratch, out),
        SchemeCode::Dict => double::dict::compress(values, child_depth, cfg, scratch, out),
        SchemeCode::Frequency => match stats {
            Some(stats) => double::frequency::compress(values, stats, child_depth, cfg, scratch, out),
            None => {
                let mut counts = scratch.lease_bits_map();
                let stats = DoubleStats::collect_with_map(values, &mut counts);
                scratch.release_bits_map(counts);
                double::frequency::compress(values, &stats, child_depth, cfg, scratch, out)
            }
        },
        SchemeCode::Pseudodecimal => double::decimal::compress(values, child_depth, cfg, scratch, out),
        _ => unreachable!("scheme {code:?} is not a double scheme"),
    }
}

/// Decompresses one framed double block from `r` into a fresh vector.
pub fn decompress_double(r: &mut Reader<'_>, cfg: &Config) -> Result<Vec<f64>> {
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    decompress_double_into(r, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses one framed double block from `r` into `out` (cleared first),
/// leasing cascade temporaries from `scratch` instead of allocating.
pub fn decompress_double_into(
    r: &mut Reader<'_>,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    let (code, count) = read_frame_header(r, cfg)?;
    match code {
        SchemeCode::Uncompressed => double::uncompressed::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::OneValue => double::onevalue::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::Rle => double::rle::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::Dict => double::dict::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::Frequency => double::frequency::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::Pseudodecimal => double::decimal::decompress_into(r, count, cfg, scratch, out),
        other => Err(Error::InvalidScheme(other.as_u8())),
    }
}

// ------------------------------------------------------------------- strings

/// Compresses a string block with automatic scheme selection.
pub fn compress_str(arena: &StringArena, depth: u8, cfg: &Config, out: &mut Vec<u8>) -> SchemeCode {
    let mut scratch = EncodeScratch::new();
    compress_str_into(arena, depth, cfg, &mut scratch, out)
}

/// [`compress_str`] leasing temporaries from `scratch`, with statistics
/// collected once and shared. (String stats key a map by borrowed string
/// slices, whose lifetime ties it to `arena` — that map still allocates; the
/// sample arena, trial buffer, and scheme side-arrays are pooled.)
pub fn compress_str_into(
    arena: &StringArena,
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) -> SchemeCode {
    if depth == 0 || arena.is_empty() {
        emit_str(SchemeCode::Uncompressed, arena, depth, cfg, scratch, out);
        return SchemeCode::Uncompressed;
    }
    let stats = StringStats::collect(arena);
    let code = select_str(arena, depth, cfg, &stats, scratch, None);
    emit_str(code, arena, depth, cfg, scratch, out);
    code
}

/// Selects the best scheme for a string block.
pub fn pick_str(arena: &StringArena, depth: u8, cfg: &Config) -> Selection {
    if depth == 0 || arena.is_empty() {
        return trivial_selection();
    }
    let stats = StringStats::collect(arena);
    let mut scratch = EncodeScratch::new();
    let mut estimates = Vec::new();
    let code = select_str(arena, depth, cfg, &stats, &mut scratch, Some(&mut estimates));
    Selection { code, estimates }
}

/// Selection body for strings (see [`select_int`]).
fn select_str(
    arena: &StringArena,
    depth: u8,
    cfg: &Config,
    stats: &StringStats,
    scratch: &mut EncodeScratch,
    mut estimates: Option<&mut Vec<Estimate>>,
) -> SchemeCode {
    if stats.unique_count == 1 && cfg.allows(SchemeCode::OneValue) {
        if let Some(list) = estimates.as_deref_mut() {
            list.push(Estimate { code: SchemeCode::OneValue, ratio: arena.len() as f64 });
        }
        return SchemeCode::OneValue;
    }
    let mut ranges = scratch.lease_ranges(cfg.sample_runs);
    sampling::sample_ranges_into(arena.len(), cfg.sample_runs, cfg.sample_run_len, depth as u64, &mut ranges);
    let mut sample = scratch.lease_arena();
    sampling::gather_str_into(arena, &ranges, &mut sample);
    let sample_bytes = sample.heap_size() as f64;
    let mut trial = scratch.lease_u8(sample.heap_size() + 64);
    let code = run_selection(
        ColumnType::String,
        cfg,
        None,
        |code| {
            if !str::viable(code, stats, cfg) {
                return None;
            }
            Some(if code == SchemeCode::Dict && cfg.analytic_estimates {
                dict_ratio(
                    arena.len(),
                    stats.unique_count,
                    stats.total_bytes + 4 * (arena.len() + 1),
                    stats.unique_bytes + 4 * (stats.unique_count + 1),
                )
            } else if code == SchemeCode::DictFsst && cfg.analytic_estimates {
                // Analytic dictionary estimate with an FSST factor measured on
                // the sample's distinct strings; a dictionary built from the
                // sample alone would be dominated by symbol-table overhead.
                let mut seen = std::collections::HashSet::new();
                let distinct: Vec<&[u8]> = sample.iter().filter(|s| seen.insert(*s)).collect();
                let table = btr_fsst::SymbolTable::train(&distinct);
                let distinct_bytes: usize = distinct.iter().map(|s| s.len()).sum();
                let compressed_bytes: usize = distinct.iter().map(|s| table.compressed_size(s)).sum();
                let factor = if distinct_bytes == 0 {
                    1.0
                } else {
                    compressed_bytes as f64 / distinct_bytes as f64
                };
                let pool = (stats.unique_bytes as f64 * factor) as usize
                    + table.serialized_size()
                    + 4 * (stats.unique_count + 1);
                dict_ratio(
                    arena.len(),
                    stats.unique_count,
                    stats.total_bytes + 4 * (arena.len() + 1),
                    pool,
                )
            } else {
                trial.clear();
                emit_str(code, &sample, depth, cfg, scratch, &mut trial);
                sample_bytes / trial.len() as f64
            })
        },
        estimates,
    );
    scratch.release_u8(trial);
    scratch.release_arena(sample);
    scratch.release_ranges(ranges);
    code
}

/// Compresses a string block with a forced root scheme.
pub fn compress_str_with(code: SchemeCode, arena: &StringArena, depth: u8, cfg: &Config, out: &mut Vec<u8>) {
    let mut scratch = EncodeScratch::new();
    compress_str_with_into(code, arena, depth, cfg, &mut scratch, out);
}

/// [`compress_str_with`] leasing all temporaries from `scratch`.
pub fn compress_str_with_into(
    code: SchemeCode,
    arena: &StringArena,
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    emit_str(code, arena, depth, cfg, scratch, out);
}

/// Writes the frame header and dispatches to the scheme compressor.
fn emit_str(
    code: SchemeCode,
    arena: &StringArena,
    depth: u8,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    let code = if depth == 0 || arena.is_empty() { SchemeCode::Uncompressed } else { code };
    out.put_u8(code.as_u8());
    // lint: allow(cast) encode side: block length is capped at max_block_values
    out.put_u32(arena.len() as u32);
    let child_depth = depth.saturating_sub(1);
    match code {
        SchemeCode::Uncompressed => str::uncompressed::compress(arena, out),
        SchemeCode::OneValue => str::onevalue::compress(arena, out),
        SchemeCode::Dict => str::dict::compress(arena, child_depth, cfg, scratch, out),
        SchemeCode::DictFsst => str::dict_fsst::compress(arena, child_depth, cfg, scratch, out),
        SchemeCode::Fsst => str::fsst::compress(arena, child_depth, cfg, scratch, out),
        _ => unreachable!("scheme {code:?} is not a string scheme"),
    }
}

/// Decompresses one framed string block from `r` into fresh views.
pub fn decompress_str(r: &mut Reader<'_>, cfg: &Config) -> Result<StringViews> {
    let mut scratch = DecodeScratch::new();
    let mut out = StringViews::default();
    decompress_str_into(r, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses one framed string block from `r` into `out` (its pool and
/// views are cleared first), leasing cascade temporaries from `scratch`.
pub fn decompress_str_into(
    r: &mut Reader<'_>,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut StringViews,
) -> Result<()> {
    let (code, count) = read_frame_header(r, cfg)?;
    match code {
        SchemeCode::Uncompressed => str::uncompressed::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::OneValue => str::onevalue::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::Dict => str::dict::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::DictFsst => str::dict_fsst::decompress_into(r, count, cfg, scratch, out),
        SchemeCode::Fsst => str::fsst::decompress_into(r, count, cfg, scratch, out),
        other => Err(Error::InvalidScheme(other.as_u8())),
    }
}

/// Analytic dictionary compression-ratio estimate from full-block statistics.
///
/// A 1 % sample of a moderate-cardinality column (say 5 000 distinct values
/// in a 64 000-value block) contains mostly singletons, so compressing the
/// sample with a dictionary wildly underestimates the real benefit. Unique
/// counts from the full-block statistics pass are cheap and exact, so — like
/// the reference implementation — Dictionary is estimated analytically:
/// `n × value_size / (unique × value_size + n × code_bytes)`.
fn dict_ratio(n: usize, unique: usize, total_value_bytes: usize, unique_value_bytes: usize) -> f64 {
    if n == 0 || unique == 0 {
        return 0.0;
    }
    let code_bits = (usize::BITS - (unique - 1).max(1).leading_zeros()).max(1) as f64;
    let compressed = unique_value_bytes as f64 + n as f64 * code_bits / 8.0;
    total_value_bytes as f64 / compressed
}

/// Conservative analytic RLE ratio from the exact full-block run count:
/// each run costs its value plus a 4-byte length, ignoring any cascade gain
/// on the run arrays (hence a floor).
fn rle_floor(n: usize, average_run_length: f64, value_size: usize) -> f64 {
    if n == 0 || average_run_length <= 0.0 {
        return 0.0;
    }
    let runs = (n as f64 / average_run_length).max(1.0);
    (n * value_size) as f64 / (runs * (value_size as f64 + 4.0) + 32.0)
}

fn trivial_selection() -> Selection {
    Selection {
        code: SchemeCode::Uncompressed,
        estimates: vec![Estimate { code: SchemeCode::Uncompressed, ratio: 1.0 }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_codes_roundtrip() {
        for code in SchemeCode::full_pool() {
            assert_eq!(SchemeCode::from_u8(code as u8).unwrap(), code);
        }
        assert!(SchemeCode::from_u8(200).is_err());
    }

    #[test]
    fn applicable_sets_match_figure3() {
        assert!(SchemeCode::applicable(ColumnType::Integer).contains(&SchemeCode::FastPfor));
        assert!(!SchemeCode::applicable(ColumnType::Double).contains(&SchemeCode::FastPfor));
        assert!(SchemeCode::applicable(ColumnType::Double).contains(&SchemeCode::Pseudodecimal));
        assert!(SchemeCode::applicable(ColumnType::String).contains(&SchemeCode::DictFsst));
        assert!(!SchemeCode::applicable(ColumnType::String).contains(&SchemeCode::Frequency));
    }

    #[test]
    fn depth_zero_always_uncompressed() {
        let cfg = Config::default();
        assert_eq!(pick_int(&[1, 1, 1, 1], 0, &cfg).code, SchemeCode::Uncompressed);
        assert_eq!(pick_double(&[1.0; 4], 0, &cfg).code, SchemeCode::Uncompressed);
    }

    #[test]
    fn one_value_detected_without_sampling() {
        let cfg = Config::default();
        let sel = pick_int(&vec![42; 10_000], 3, &cfg);
        assert_eq!(sel.code, SchemeCode::OneValue);
    }
}
