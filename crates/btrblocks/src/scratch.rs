//! Reusable decode buffers: tiered freelists under a byte budget.
//!
//! Decompression speed is the paper's headline claim (§6), and on modern
//! hardware decode throughput is dominated by memory behaviour, not ALU
//! work. Allocating a fresh `Vec` at every cascade level of every block
//! therefore costs more than the arithmetic it feeds. [`DecodeScratch`]
//! fixes that with the buffer-pool discipline of an operator pipeline: every
//! temporary a scheme decoder needs (RLE run arrays, dictionary code
//! sequences, Pseudodecimal digit/exponent columns, FSST length columns) is
//! *leased* from the pool and *released* back on every exit path, so a warm
//! decoder performs zero heap allocations per block.
//!
//! # Lease/return invariants
//!
//! - [`DecodeScratch::lease_i32`] (and its `f64`/`u8`/`u32`/`u64` siblings)
//!   returns an **empty** vector whose capacity is at least the requested
//!   size. It comes from the pool when a large-enough buffer is available
//!   (a *hit*), otherwise it is freshly allocated (a *miss*).
//! - Every leased buffer must be released back with the matching
//!   `release_*` call on **every** exit path, including error returns.
//!   Decoders achieve this by leasing up front, running the fallible body,
//!   and releasing before propagating the `Result`. (A panic leaks the lease
//!   to the ordinary `Vec` destructor — safe, just not pooled.)
//! - Released buffers are cleared before pooling; leased buffers never
//!   expose previous contents.
//! - The pool holds at most `budget_bytes` of capacity. Releases that would
//!   exceed the budget drop the buffer instead (counted in
//!   [`ScratchStats::dropped`]), bounding steady-state memory.
//!
//! # Tiers
//!
//! Freelists are segregated by power-of-two capacity class: a buffer of
//! capacity `c` lives in tier `floor(log2(c))`, so every buffer in tier `t`
//! holds at least `2^t` elements. A lease for `n` elements scans tiers from
//! `floor(log2(n))` upward and takes the first buffer with sufficient
//! capacity, which keeps small temporaries from being served by (and
//! pinning) block-sized buffers unless nothing smaller exists. Fresh
//! allocations round the capacity up to a power of two so repeated
//! lease/release cycles of the same shape converge onto the same tier.
//!
//! This module is deliberately `unsafe`-free: all buffer reuse goes through
//! `Vec`'s safe API. Sized leases are padded by [`crate::simd::DECODE_SLACK`]
//! so the SIMD kernels' overshoot reservation always fits the pooled buffer.

use crate::fxhash::FxHashMap;
use crate::types::{ColumnType, DecodedColumn, StringArena, StringViews};

/// Default pool budget: enough for several 64k-value blocks of temporaries
/// per worker without letting a pathological column pin memory forever.
pub const DEFAULT_BUDGET_BYTES: usize = 64 << 20;

/// Capacity class of a buffer: `floor(log2(max(cap, 1)))`.
fn tier_of(cap: usize) -> usize {
    (usize::BITS - 1 - cap.max(1).leading_zeros()) as usize
}

/// One element type's tiered freelist.
struct Pool<T> {
    tiers: Vec<Vec<Vec<T>>>,
    held_bytes: usize,
}

impl<T> Pool<T> {
    fn new() -> Pool<T> {
        Pool {
            tiers: Vec::new(),
            held_bytes: 0,
        }
    }

    /// Takes a pooled buffer with capacity ≥ `cap`, if one exists.
    ///
    /// `cap == 0` means "size unknown, the caller will grow it": those
    /// leases take the *largest* pooled buffer so that outputs which grow to
    /// block size (the cascade roots, `StringViews` pools) land in a buffer
    /// that already fits and never realloc on a warm pass. Sized leases take
    /// the smallest adequate tier, keeping small temporaries from pinning
    /// block-sized buffers.
    fn lease(&mut self, cap: usize) -> Option<Vec<T>> {
        if cap == 0 {
            let tier = self.tiers.iter_mut().rev().find(|t| !t.is_empty())?;
            let i = tier
                .iter()
                .enumerate()
                .max_by_key(|(_, v)| v.capacity())
                .map(|(i, _)| i)?;
            let v = tier.swap_remove(i);
            self.held_bytes -= v.capacity() * std::mem::size_of::<T>();
            return Some(v);
        }
        for tier in self.tiers.iter_mut().skip(tier_of(cap)) {
            // Only the starting tier can contain buffers smaller than `cap`;
            // every higher tier trivially satisfies the capacity check.
            if let Some(i) = tier.iter().position(|v| v.capacity() >= cap) {
                let v = tier.swap_remove(i);
                self.held_bytes -= v.capacity() * std::mem::size_of::<T>();
                return Some(v);
            }
        }
        None
    }

    /// Pools `v` if its bytes fit in `room`; returns false when dropped.
    fn release(&mut self, mut v: Vec<T>, room: usize) -> bool {
        let bytes = v.capacity() * std::mem::size_of::<T>();
        if bytes == 0 || bytes > room {
            return false;
        }
        v.clear();
        let t = tier_of(v.capacity());
        if self.tiers.len() <= t {
            self.tiers.resize_with(t + 1, Vec::new);
        }
        // lint: allow(indexing) tiers was resized above to hold index t
        self.tiers[t].push(v);
        self.held_bytes += bytes;
        true
    }
}

/// Counters exposed by [`DecodeScratch::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Leases served from the pool (no allocation).
    pub hits: u64,
    /// Leases that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub returns: u64,
    /// Buffers dropped on release because the budget was full.
    pub dropped: u64,
    /// Bytes of capacity currently pooled.
    pub held_bytes: usize,
    /// Configured byte budget.
    pub budget_bytes: usize,
}

/// A reusable arena of decode temporaries; see the module docs.
///
/// Not thread-safe by design: each decode worker owns one (see
/// [`crate::parallel`] and btr-scan's engine), which keeps leases free of
/// synchronization.
pub struct DecodeScratch {
    i32s: Pool<i32>,
    f64s: Pool<f64>,
    u8s: Pool<u8>,
    u32s: Pool<u32>,
    u64s: Pool<u64>,
    budget_bytes: usize,
    hits: u64,
    misses: u64,
    returns: u64,
    dropped: u64,
}

macro_rules! pool_methods {
    ($lease:ident, $release:ident, $field:ident, $ty:ty) => {
        /// Leases an empty buffer with capacity ≥ `cap` (pool hit or fresh).
        pub fn $lease(&mut self, cap: usize) -> Vec<$ty> {
            // Pad sized leases by the SIMD overshoot reserve: the decode
            // kernels call `reserve(count + DECODE_SLACK)`, and a pooled
            // buffer sized exactly to `count` would realloc there.
            let cap = if cap == 0 { 0 } else { cap.saturating_add(crate::simd::DECODE_SLACK) };
            if let Some(v) = self.$field.lease(cap) {
                self.hits += 1;
                return v;
            }
            if cap == 0 {
                // Size unknown yet: hand out an empty vec and let the
                // decoder's reserve/extend size it; neither a hit nor miss.
                return Vec::new();
            }
            self.misses += 1;
            Vec::with_capacity(cap.next_power_of_two())
        }

        /// Returns a leased buffer to the pool (or drops it over budget).
        pub fn $release(&mut self, v: Vec<$ty>) {
            if v.capacity() == 0 {
                return;
            }
            let room = self.budget_bytes.saturating_sub(self.held_bytes());
            if self.$field.release(v, room) {
                self.returns += 1;
            } else {
                self.dropped += 1;
            }
        }
    };
}

impl DecodeScratch {
    /// A scratch arena with the default byte budget.
    pub fn new() -> DecodeScratch {
        DecodeScratch::with_budget(DEFAULT_BUDGET_BYTES)
    }

    /// A scratch arena holding at most `budget_bytes` of pooled capacity.
    pub fn with_budget(budget_bytes: usize) -> DecodeScratch {
        DecodeScratch {
            i32s: Pool::new(),
            f64s: Pool::new(),
            u8s: Pool::new(),
            u32s: Pool::new(),
            u64s: Pool::new(),
            budget_bytes,
            hits: 0,
            misses: 0,
            returns: 0,
            dropped: 0,
        }
    }

    pool_methods!(lease_i32, release_i32, i32s, i32);
    pool_methods!(lease_f64, release_f64, f64s, f64);
    pool_methods!(lease_u8, release_u8, u8s, u8);
    pool_methods!(lease_u32, release_u32, u32s, u32);
    pool_methods!(lease_u64, release_u64, u64s, u64);

    /// An empty [`DecodedColumn`] of the right variant, built from leased
    /// buffers — the out-parameter for [`crate::block::decompress_block_into`].
    pub fn lease_decoded(&mut self, ty: ColumnType) -> DecodedColumn {
        match ty {
            ColumnType::Integer => DecodedColumn::Int(self.lease_i32(0)),
            ColumnType::Double => DecodedColumn::Double(self.lease_f64(0)),
            ColumnType::String => DecodedColumn::Str(StringViews {
                pool: self.lease_u8(0),
                views: self.lease_u64(0),
            }),
        }
    }

    /// Strips a no-longer-needed decoded block into the pool — used when a
    /// block buffer changes type mid-column and by btr-scan's cache when it
    /// evicts entries.
    pub fn recycle(&mut self, col: DecodedColumn) {
        match col {
            DecodedColumn::Int(v) => self.release_i32(v),
            DecodedColumn::Double(v) => self.release_f64(v),
            DecodedColumn::Str(s) => self.recycle_views(s),
        }
    }

    /// Returns a [`StringViews`]' pool and view buffers to the arena.
    pub fn recycle_views(&mut self, s: StringViews) {
        self.release_u8(s.pool);
        self.release_u64(s.views);
    }

    /// Bytes of capacity currently pooled across all element types.
    pub fn held_bytes(&self) -> usize {
        self.i32s.held_bytes
            + self.f64s.held_bytes
            + self.u8s.held_bytes
            + self.u32s.held_bytes
            + self.u64s.held_bytes
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            hits: self.hits,
            misses: self.misses,
            returns: self.returns,
            dropped: self.dropped,
            held_bytes: self.held_bytes(),
            budget_bytes: self.budget_bytes,
        }
    }
}

impl Default for DecodeScratch {
    fn default() -> Self {
        DecodeScratch::new()
    }
}

impl std::fmt::Debug for DecodeScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeScratch").field("stats", &self.stats()).finish()
    }
}

/// How many cleared hash maps an [`EncodeScratch`] retains per key type.
///
/// `HashMap` capacity is opaque (no `capacity -> bytes` contract), so maps
/// are capped by count rather than charged against the byte budget. The
/// cascade holds at most one stats map plus one dictionary map per level
/// (depth ≤ 3 in practice), so a small stack covers the deepest recursion.
const MAP_STACK_MAX: usize = 8;

/// A reusable arena of *encode* temporaries — the write-side sibling of
/// [`DecodeScratch`], sharing its tiered-freelist design and budget policy.
///
/// The compression pipeline (§3 of the paper: stats → viability filter →
/// sampled trials → cascade) is temporary-heavy: every block gathers a
/// sample, every candidate scheme compresses that sample into a trial
/// buffer, and every chosen scheme materialises side-arrays (RLE run pairs,
/// dictionary code sequences, frequency exception lists, Pseudodecimal
/// digit/exponent columns) that are themselves recursively compressed. All
/// of those are leased from this arena and released on exit, so a warm
/// `compress_column_into` performs zero heap allocations for integer and
/// double columns (string columns still allocate in borrowed-key stats maps
/// and FSST symbol-table training; see DESIGN.md §12).
///
/// Beyond the element-type vector pools it adds encode-specific free stacks:
///
/// - sample-range pairs (`Vec<(usize, usize)>`) reused across candidate
///   trials and cascade levels,
/// - cleared [`StringArena`]s for per-block string sub-ranges and sample
///   gathers,
/// - cleared `FxHashMap`s for one-pass integer/double statistics and
///   dictionary code assignment (both key on `i32` / `u64` bit patterns).
///
/// Like [`DecodeScratch`] this module is deliberately `unsafe`-free (noted
/// in `btr-lint.toml`): all reuse goes through `Vec`/`HashMap` safe APIs.
/// Not thread-safe by design — each encode worker owns one.
pub struct EncodeScratch {
    i32s: Pool<i32>,
    f64s: Pool<f64>,
    u8s: Pool<u8>,
    u32s: Pool<u32>,
    ranges: Pool<(usize, usize)>,
    arenas: Vec<StringArena>,
    arena_bytes: usize,
    int_maps: Vec<FxHashMap<i32, usize>>,
    bits_maps: Vec<FxHashMap<u64, usize>>,
    budget_bytes: usize,
    hits: u64,
    misses: u64,
    returns: u64,
    dropped: u64,
}

impl EncodeScratch {
    /// A scratch arena with the default byte budget.
    pub fn new() -> EncodeScratch {
        EncodeScratch::with_budget(DEFAULT_BUDGET_BYTES)
    }

    /// A scratch arena holding at most `budget_bytes` of pooled capacity.
    pub fn with_budget(budget_bytes: usize) -> EncodeScratch {
        EncodeScratch {
            i32s: Pool::new(),
            f64s: Pool::new(),
            u8s: Pool::new(),
            u32s: Pool::new(),
            ranges: Pool::new(),
            arenas: Vec::new(),
            arena_bytes: 0,
            int_maps: Vec::new(),
            bits_maps: Vec::new(),
            budget_bytes,
            hits: 0,
            misses: 0,
            returns: 0,
            dropped: 0,
        }
    }

    pool_methods!(lease_i32, release_i32, i32s, i32);
    pool_methods!(lease_f64, release_f64, f64s, f64);
    pool_methods!(lease_u8, release_u8, u8s, u8);
    pool_methods!(lease_u32, release_u32, u32s, u32);
    pool_methods!(lease_ranges, release_ranges, ranges, (usize, usize));

    /// Leases an empty [`StringArena`] (cleared pooled arena or fresh).
    pub fn lease_arena(&mut self) -> StringArena {
        match self.arenas.pop() {
            Some(a) => {
                self.hits += 1;
                self.arena_bytes -= a.capacity_bytes();
                a
            }
            // Lazily sized by the caller's pushes; neither a hit nor a miss.
            None => StringArena::new(),
        }
    }

    /// Returns a leased arena to the pool (or drops it over budget).
    pub fn release_arena(&mut self, mut a: StringArena) {
        let bytes = a.capacity_bytes();
        if bytes == 0 {
            return;
        }
        if bytes > self.budget_bytes.saturating_sub(self.held_bytes()) {
            self.dropped += 1;
            return;
        }
        a.clear();
        self.arena_bytes += bytes;
        self.returns += 1;
        self.arenas.push(a);
    }

    /// Leases a cleared `i32`-keyed map (integer stats, dictionary codes).
    pub fn lease_int_map(&mut self) -> FxHashMap<i32, usize> {
        self.int_maps.pop().unwrap_or_default()
    }

    /// Returns an `i32`-keyed map, retaining its capacity for the next lease.
    pub fn release_int_map(&mut self, mut m: FxHashMap<i32, usize>) {
        if self.int_maps.len() < MAP_STACK_MAX {
            m.clear();
            self.int_maps.push(m);
        }
    }

    /// Leases a cleared `u64`-keyed map (double stats/dictionaries by bits).
    pub fn lease_bits_map(&mut self) -> FxHashMap<u64, usize> {
        self.bits_maps.pop().unwrap_or_default()
    }

    /// Returns a `u64`-keyed map, retaining its capacity for the next lease.
    pub fn release_bits_map(&mut self, mut m: FxHashMap<u64, usize>) {
        if self.bits_maps.len() < MAP_STACK_MAX {
            m.clear();
            self.bits_maps.push(m);
        }
    }

    /// Bytes of capacity currently pooled (vector pools + string arenas;
    /// retained maps are capped by count, not bytes — see [`MAP_STACK_MAX`]).
    pub fn held_bytes(&self) -> usize {
        self.i32s.held_bytes
            + self.f64s.held_bytes
            + self.u8s.held_bytes
            + self.u32s.held_bytes
            + self.ranges.held_bytes
            + self.arena_bytes
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            hits: self.hits,
            misses: self.misses,
            returns: self.returns,
            dropped: self.dropped,
            held_bytes: self.held_bytes(),
            budget_bytes: self.budget_bytes,
        }
    }
}

impl Default for EncodeScratch {
    fn default() -> Self {
        EncodeScratch::new()
    }
}

impl std::fmt::Debug for EncodeScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncodeScratch").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_release_roundtrip_reuses_capacity() {
        let mut s = DecodeScratch::new();
        let mut v = s.lease_i32(1000);
        assert!(v.is_empty() && v.capacity() >= 1000);
        v.extend(0..1000);
        let ptr = v.as_ptr();
        s.release_i32(v);
        let v2 = s.lease_i32(1000);
        assert!(v2.is_empty(), "pooled buffers come back cleared");
        assert!(v2.capacity() >= 1000);
        assert_eq!(v2.as_ptr(), ptr, "same allocation served back");
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.returns), (1, 1, 1));
    }

    #[test]
    fn lease_never_returns_too_small_a_buffer() {
        let mut s = DecodeScratch::new();
        s.release_u32({
            let mut v = Vec::with_capacity(100);
            v.push(1u32);
            v
        });
        // 100 lives in tier 6 (64..127); a lease for 120 starts at tier 6
        // and must skip it via the capacity check.
        let v = s.lease_u32(120);
        assert!(v.capacity() >= 120);
        assert_eq!(s.stats().misses, 1);
        // The 100-capacity buffer is still pooled for a smaller lease.
        let v2 = s.lease_u32(80);
        assert!(v2.capacity() >= 80);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn budget_drops_instead_of_hoarding() {
        let mut s = DecodeScratch::with_budget(1024);
        s.release_f64(Vec::with_capacity(64)); // 512 bytes, pooled
        s.release_f64(Vec::with_capacity(64)); // 1024 bytes total, pooled
        s.release_f64(Vec::with_capacity(64)); // would exceed, dropped
        let st = s.stats();
        assert_eq!(st.returns, 2);
        assert_eq!(st.dropped, 1);
        assert!(st.held_bytes <= st.budget_bytes);
    }

    #[test]
    fn recycle_decoded_feeds_later_leases() {
        let mut s = DecodeScratch::new();
        s.recycle(DecodedColumn::Int(Vec::with_capacity(4096)));
        s.recycle(DecodedColumn::Str(StringViews {
            pool: Vec::with_capacity(512),
            views: Vec::with_capacity(256),
        }));
        assert!(s.lease_i32(4000).capacity() >= 4096);
        assert!(s.lease_u8(500).capacity() >= 512);
        assert!(s.lease_u64(200).capacity() >= 256);
        assert_eq!(s.stats().hits, 3);
    }

    #[test]
    fn lease_decoded_matches_type() {
        let mut s = DecodeScratch::new();
        assert!(matches!(s.lease_decoded(ColumnType::Integer), DecodedColumn::Int(_)));
        assert!(matches!(s.lease_decoded(ColumnType::Double), DecodedColumn::Double(_)));
        assert!(matches!(s.lease_decoded(ColumnType::String), DecodedColumn::Str(_)));
    }

    #[test]
    fn zero_capacity_releases_are_free() {
        let mut s = DecodeScratch::new();
        s.release_i32(Vec::new());
        let st = s.stats();
        assert_eq!((st.returns, st.dropped, st.held_bytes), (0, 0, 0));
    }

    #[test]
    fn encode_scratch_roundtrips_vectors() {
        let mut s = EncodeScratch::new();
        let mut v = s.lease_i32(500);
        assert!(v.is_empty() && v.capacity() >= 500);
        v.extend(0..500);
        let ptr = v.as_ptr();
        s.release_i32(v);
        let v2 = s.lease_i32(500);
        assert!(v2.is_empty() && v2.capacity() >= 500);
        assert_eq!(v2.as_ptr(), ptr, "same allocation served back");
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.returns), (1, 1, 1));
    }

    #[test]
    fn encode_scratch_reuses_ranges_and_arena() {
        let mut s = EncodeScratch::new();
        let mut r = s.lease_ranges(10);
        r.push((0, 64));
        s.release_ranges(r);
        assert!(s.lease_ranges(8).capacity() >= 8);
        assert_eq!(s.stats().hits, 1);

        let mut a = s.lease_arena();
        a.push(b"hello");
        a.push(b"world");
        s.release_arena(a);
        assert!(s.held_bytes() > 0);
        let a2 = s.lease_arena();
        assert!(a2.is_empty(), "pooled arenas come back cleared");
        assert!(a2.capacity_bytes() > 0, "but keep their capacity");
    }

    #[test]
    fn encode_scratch_reuses_maps_cleared() {
        let mut s = EncodeScratch::new();
        let mut m = s.lease_int_map();
        m.insert(7, 3);
        let cap = m.capacity();
        s.release_int_map(m);
        let m2 = s.lease_int_map();
        assert!(m2.is_empty(), "pooled maps come back cleared");
        assert_eq!(m2.capacity(), cap, "but keep their capacity");

        let mut b = s.lease_bits_map();
        b.insert(1.5f64.to_bits(), 1);
        s.release_bits_map(b);
        assert!(s.lease_bits_map().is_empty());
    }

    #[test]
    fn encode_scratch_budget_drops_arenas() {
        let mut s = EncodeScratch::with_budget(8);
        let mut a = StringArena::new();
        a.push(&[0u8; 64]);
        s.release_arena(a);
        let st = s.stats();
        assert_eq!((st.returns, st.dropped), (0, 1));
        assert_eq!(s.held_bytes(), 0);
    }
}
