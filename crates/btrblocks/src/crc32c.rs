//! CRC32C (Castagnoli) — the checksum guarding format-v2 files.
//!
//! Software slice-by-one implementation over a const-built 256-entry table.
//! The Castagnoli polynomial (reflected form `0x82F63B78`) is the same one
//! used by iSCSI, ext4, and the SSE4.2 `crc32` instruction, so checksums
//! produced here match hardware-accelerated implementations elsewhere.

const POLY: u32 = 0x82F6_3B78;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint: allow(cast) const table builder: i < 256
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        // lint: allow(indexing) const table builder: i < 256
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C of `bytes` with the conventional init/xorout (`!0`).
pub fn crc32c(bytes: &[u8]) -> u32 {
    extend(!0u32, bytes) ^ !0u32
}

/// Feed more bytes into a running (pre-xorout) CRC state. Start from `!0`,
/// finish by xoring with `!0`; `crc32c` does both for the one-shot case.
pub fn extend(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        // lint: allow(cast) widening u8 -> u32; index is masked to 0..256
        // lint: allow(indexing) index is masked to 0..256
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 (iSCSI) test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"hello, columnar world";
        for split in 0..data.len() {
            let state = extend(!0u32, &data[..split]);
            let state = extend(state, &data[split..]);
            assert_eq!(state ^ !0u32, crc32c(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..255u8).collect();
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.clone();
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32c(&copy), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
