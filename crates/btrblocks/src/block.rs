//! Block-level compress/decompress entry points.
//!
//! A *block* is the unit of scheme selection: up to `Config::block_size`
//! values of one column. Block bytes are fully self-contained (scheme frame +
//! payload, recursively), so blocks can be fetched and decoded independently
//! — the property that lets BtrBlocks ship metadata-free files and
//! parallelize scans (paper §2.1).

use crate::config::Config;
use crate::scheme::{self, SchemeCode};
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::types::{ColumnType, DecodedColumn, StringArena};
use crate::writer::Reader;
use crate::{Error, Result};

/// A borrowed view of one block's values.
#[derive(Debug, Clone, Copy)]
pub enum BlockRef<'a> {
    /// Integer values.
    Int(&'a [i32]),
    /// Double values.
    Double(&'a [f64]),
    /// String values.
    Str(&'a StringArena),
}

impl BlockRef<'_> {
    /// Number of values in the block.
    pub fn len(&self) -> usize {
        match self {
            BlockRef::Int(v) => v.len(),
            BlockRef::Double(v) => v.len(),
            BlockRef::Str(a) => a.len(),
        }
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Uncompressed size in bytes.
    pub fn heap_size(&self) -> usize {
        match self {
            BlockRef::Int(v) => v.len() * 4,
            BlockRef::Double(v) => v.len() * 8,
            BlockRef::Str(a) => a.heap_size(),
        }
    }

    /// The block's column type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            BlockRef::Int(_) => ColumnType::Integer,
            BlockRef::Double(_) => ColumnType::Double,
            BlockRef::Str(_) => ColumnType::String,
        }
    }
}

/// Compresses one block, returning its bytes and the root scheme chosen.
pub fn compress_block(data: BlockRef<'_>, cfg: &Config) -> (Vec<u8>, SchemeCode) {
    let mut scratch = EncodeScratch::new();
    let mut out = Vec::with_capacity(data.heap_size() / 4 + 64);
    let code = compress_block_into(data, cfg, &mut scratch, &mut out);
    (out, code)
}

/// [`compress_block`] appending into a caller-owned buffer (cleared first)
/// and leasing all encode temporaries from `scratch`. This is what the
/// block-parallel workers call: one scratch + one output buffer per worker,
/// zero allocations once both are warm.
pub fn compress_block_into(
    data: BlockRef<'_>,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) -> SchemeCode {
    out.clear();
    match data {
        BlockRef::Int(v) => scheme::compress_int_into(v, cfg.max_cascade_depth, cfg, scratch, out),
        BlockRef::Double(v) => {
            scheme::compress_double_into(v, cfg.max_cascade_depth, cfg, scratch, out)
        }
        BlockRef::Str(a) => scheme::compress_str_into(a, cfg.max_cascade_depth, cfg, scratch, out),
    }
}

/// Compresses one block with a forced root scheme (ablation harnesses).
pub fn compress_block_with(code: SchemeCode, data: BlockRef<'_>, cfg: &Config) -> Vec<u8> {
    let mut scratch = EncodeScratch::new();
    let mut out = Vec::with_capacity(data.heap_size() / 4 + 64);
    compress_block_with_into(code, data, cfg, &mut scratch, &mut out);
    out
}

/// [`compress_block_with`] appending into a caller-owned buffer (cleared
/// first) and leasing all encode temporaries from `scratch`.
pub fn compress_block_with_into(
    code: SchemeCode,
    data: BlockRef<'_>,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    out.clear();
    match data {
        BlockRef::Int(v) => {
            scheme::compress_int_with_into(code, v, cfg.max_cascade_depth, cfg, scratch, out)
        }
        BlockRef::Double(v) => {
            scheme::compress_double_with_into(code, v, cfg.max_cascade_depth, cfg, scratch, out)
        }
        BlockRef::Str(a) => {
            scheme::compress_str_with_into(code, a, cfg.max_cascade_depth, cfg, scratch, out)
        }
    }
}

/// Decompresses one block of the given type.
pub fn decompress_block(bytes: &[u8], ty: ColumnType, cfg: &Config) -> Result<DecodedColumn> {
    let mut scratch = DecodeScratch::new();
    let mut out = scratch.lease_decoded(ty);
    decompress_block_into(bytes, ty, cfg, &mut scratch, &mut out)?;
    Ok(out)
}

/// Decompresses one block of the given type into `out`, reusing its buffers
/// and leasing all decode temporaries from `scratch`.
///
/// If `out` holds a different variant than `ty` asks for, its buffers are
/// recycled into `scratch` and a matching variant is leased back out, so a
/// caller decoding a mixed-type column stream still allocates nothing once
/// the pool is warm.
pub fn decompress_block_into(
    bytes: &[u8],
    ty: ColumnType,
    cfg: &Config,
    scratch: &mut DecodeScratch,
    out: &mut DecodedColumn,
) -> Result<()> {
    if out.column_type() != ty {
        let old = std::mem::replace(out, scratch.lease_decoded(ty));
        scratch.recycle(old);
    }
    let mut r = Reader::new(bytes);
    match out {
        DecodedColumn::Int(v) => scheme::decompress_int_into(&mut r, cfg, scratch, v)?,
        DecodedColumn::Double(v) => scheme::decompress_double_into(&mut r, cfg, scratch, v)?,
        DecodedColumn::Str(s) => scheme::decompress_str_into(&mut r, cfg, scratch, s)?,
    }
    if !r.rest().is_empty() {
        return Err(Error::Corrupt("trailing bytes after block"));
    }
    Ok(())
}

/// Reads the root scheme code of a compressed block without decoding it.
pub fn peek_scheme(bytes: &[u8]) -> Result<SchemeCode> {
    let mut r = Reader::new(bytes);
    SchemeCode::from_u8(r.u8()?)
}

/// Reads the value count from a compressed block's frame header without
/// decoding it. This is exactly the count the decoder will produce on
/// success, which makes it the rows-of-output cost for decode morsels.
pub fn peek_count(bytes: &[u8]) -> Result<usize> {
    let mut r = Reader::new(bytes);
    r.u8()?;
    Ok(r.u32()? as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_block_roundtrip_and_scheme_sanity() {
        let cfg = Config::default();
        let values: Vec<i32> = (0..64_000).map(|i| i / 500).collect();
        let (bytes, code) = compress_block(BlockRef::Int(&values), &cfg);
        assert!(bytes.len() < values.len() * 4 / 10, "should compress run data well");
        assert_eq!(peek_scheme(&bytes).unwrap(), code);
        match decompress_block(&bytes, ColumnType::Integer, &cfg).unwrap() {
            DecodedColumn::Int(out) => assert_eq!(out, values),
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn one_value_block_chooses_onevalue() {
        let cfg = Config::default();
        let values = vec![0i32; 64_000];
        let (bytes, code) = compress_block(BlockRef::Int(&values), &cfg);
        assert_eq!(code, SchemeCode::OneValue);
        assert!(bytes.len() < 16);
    }

    #[test]
    fn price_doubles_roundtrip() {
        let cfg = Config::default();
        let values: Vec<f64> = (0..64_000).map(|i| (i % 5000) as f64 * 0.01).collect();
        let (bytes, _) = compress_block(BlockRef::Double(&values), &cfg);
        assert!(bytes.len() < values.len() * 8 / 2);
        match decompress_block(&bytes, ColumnType::Double, &cfg).unwrap() {
            DecodedColumn::Double(out) => {
                assert!(values.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn string_block_roundtrip() {
        let cfg = Config::default();
        let strings: Vec<String> = (0..5_000).map(|i| format!("city-{}", i % 40)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let arena = StringArena::from_strs(&refs);
        let (bytes, _) = compress_block(BlockRef::Str(&arena), &cfg);
        assert!(bytes.len() * 5 < arena.heap_size());
        match decompress_block(&bytes, ColumnType::String, &cfg).unwrap() {
            DecodedColumn::Str(views) => {
                assert_eq!(views.len(), arena.len());
                for i in 0..arena.len() {
                    assert_eq!(views.get(i), arena.get(i));
                }
            }
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn absurd_count_is_rejected_not_allocated() {
        // A 13-byte OneValue frame claiming 2^32-1 values must not trigger a
        // 34 GB allocation (found by the corruption fuzzer).
        let cfg = Config::default();
        let mut bytes = vec![SchemeCode::OneValue as u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0.0f64.to_le_bytes());
        assert!(decompress_block(&bytes, ColumnType::Double, &cfg).is_err());
        // And the limit is configurable upward.
        let big = Config { max_block_values: usize::MAX, block_size: 1 << 20, ..Config::default() };
        let values = vec![7i32; 100_000];
        let (ok_bytes, _) = compress_block(BlockRef::Int(&values), &big);
        assert!(decompress_block(&ok_bytes, ColumnType::Integer, &big).is_ok());
    }

    #[test]
    fn trailing_garbage_is_error() {
        let cfg = Config::default();
        let (mut bytes, _) = compress_block(BlockRef::Int(&[1, 2, 3]), &cfg);
        bytes.push(0);
        assert!(decompress_block(&bytes, ColumnType::Integer, &cfg).is_err());
    }

    #[test]
    fn wrong_type_is_error() {
        let cfg = Config::default();
        let values: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
        let (bytes, _) = compress_block(BlockRef::Double(&values), &cfg);
        // Interpreting a double block as integers must fail, not panic.
        assert!(decompress_block(&bytes, ColumnType::Integer, &cfg).is_err());
    }
}
