//! A fast, non-cryptographic hasher for the compression-internal hash maps.
//!
//! Statistics collection and dictionary building hash every value of every
//! block; the standard library's SipHash dominates that profile. This is the
//! multiply-and-rotate scheme of rustc's `FxHasher` — not DoS-resistant,
//! which is fine for hashing data we are compressing ourselves.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher (the rustc `FxHasher` construction).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            // lint: allow(indexing) rest is a chunks_exact(8) remainder, so < 8 bytes
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        // lint: allow(cast) bit-reinterpretation of i32 for hashing, not a narrowing
        self.add_to_hash(v as u32 as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply concentrates entropy in the high bits, but hashbrown
        // derives bucket indexes from the LOW bits — without a finalizer,
        // keys sharing low bytes (e.g. a common string prefix) collide
        // catastrophically. This is Murmur3's fmix64.
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_behaves_normally() {
        let mut m: FxHashMap<i32, usize> = FxHashMap::default();
        for i in 0..10_000 {
            *m.entry(i % 257).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 257);
        assert_eq!(m[&0], 10_000 / 257 + 1);
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        use std::collections::HashSet;
        use std::hash::Hash;
        let mut hashes = HashSet::new();
        for i in 0..100_000u64 {
            let mut h = FxHasher::default();
            i.hash(&mut h);
            hashes.insert(h.finish());
        }
        // No catastrophic collapse.
        assert!(hashes.len() > 99_000);
    }

    #[test]
    fn byte_slices_hash_by_content() {
        use std::hash::Hash;
        let h = |s: &[u8]| {
            let mut hasher = FxHasher::default();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
