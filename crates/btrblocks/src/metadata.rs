//! Zone-map sidecar: per-block statistics tracked *outside* the data file.
//!
//! The paper deliberately keeps the data format metadata-free (§2.1):
//! "one would like to prune data using statistics and indices *before*
//! accessing a file through a high-latency network. […] Metadata, statistics
//! and indices are completely orthogonal and may be added on top or tracked
//! separately." This module is that orthogonal companion: a compact sidecar
//! holding per-block min/max (ints and doubles) and counts, plus predicate
//! pruning that decides which blocks a scan can skip entirely.

use crate::types::{CmpOp, Literal};
use crate::relation::CompressedRelation;
use crate::types::{ColumnData, ColumnType};
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};

/// Per-block zone map.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockZone {
    /// Integer block: `(min, max)`.
    Int { min: i32, max: i32 },
    /// Double block: `(min, max)` over non-NaN values plus a NaN flag.
    Double { min: f64, max: f64, has_nan: bool },
    /// String block: no ordering stats tracked (dictionary order is not
    /// value order); only the value count.
    Str,
}

/// Sidecar for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column name (matches the data file).
    pub name: String,
    /// Column type.
    pub column_type: ColumnType,
    /// Value count per block.
    pub block_rows: Vec<u32>,
    /// Zone map per block.
    pub zones: Vec<BlockZone>,
}

/// Sidecar for a whole relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Sidecar {
    /// Per-column metadata, in file order.
    pub columns: Vec<ColumnMeta>,
}

/// Zone of one integer block slice, via the SIMD min/max kernel.
fn zone_of_int(values: &[i32], mode: crate::config::SimdMode) -> BlockZone {
    match crate::simd::minmax_i32(values, mode) {
        Some((min, max)) => BlockZone::Int { min, max },
        None => BlockZone::Int { min: 0, max: 0 },
    }
}

/// Zone of one double block slice: NaN-aware SIMD min/max plus the NaN flag.
fn zone_of_f64(values: &[f64], mode: crate::config::SimdMode) -> BlockZone {
    let (mut min, mut max, has_nan) = crate::simd::minmax_f64(values, mode);
    if min > max {
        // All NaN or empty.
        min = 0.0;
        max = 0.0;
    }
    BlockZone::Double { min, max, has_nan }
}

impl Sidecar {
    /// Builds the sidecar while (re)scanning the uncompressed column blocks.
    /// `block_size` must match the compression config.
    pub fn build(rel: &crate::relation::Relation, block_size: usize) -> Sidecar {
        Sidecar::build_with(rel, block_size, crate::config::SimdMode::Auto)
    }

    /// [`Sidecar::build`] with explicit SIMD dispatch (the §6.8 ablation).
    /// Zones are computed directly over block-sized slices of the column —
    /// no per-block copies — with the min/max folds vectorized.
    pub fn build_with(
        rel: &crate::relation::Relation,
        block_size: usize,
        mode: crate::config::SimdMode,
    ) -> Sidecar {
        let bs = block_size.max(1);
        let columns = rel
            .columns
            .iter()
            .map(|col| {
                let n = col.data.len();
                let mut block_rows = Vec::new();
                let mut zones = Vec::new();
                let mut start = 0usize;
                loop {
                    let end = (start + bs).min(n);
                    let zone = match &col.data {
                        // lint: allow(indexing) start..end is clamped to v.len() above
                        ColumnData::Int(v) => zone_of_int(&v[start..end], mode),
                        // lint: allow(indexing) start..end is clamped to v.len() above
                        ColumnData::Double(v) => zone_of_f64(&v[start..end], mode),
                        // No string zone stats (dictionary order is not
                        // value order); only the count is tracked.
                        ColumnData::Str(_) => BlockZone::Str,
                    };
                    // lint: allow(cast) end - start is at most block_size
                    block_rows.push((end - start) as u32);
                    zones.push(zone);
                    start = end;
                    if start >= n {
                        break;
                    }
                }
                ColumnMeta {
                    name: col.name.clone(),
                    column_type: col.data.column_type(),
                    block_rows,
                    zones,
                }
            })
            .collect();
        Sidecar { columns }
    }

    /// Finds a column's metadata by name.
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Serializes the sidecar (the separate metadata file of §2.1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"BTRM");
        // lint: allow(cast) encode side: in-memory field sizes fit the wire widths
        out.put_u32(self.columns.len() as u32);
        for col in &self.columns {
            let name = col.name.as_bytes();
            // lint: allow(cast) encode side: column names are short identifiers
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            out.put_u8(col.column_type.tag());
            // lint: allow(cast) encode side: zone count fits u32
            out.put_u32(col.zones.len() as u32);
            for (rows, zone) in col.block_rows.iter().zip(&col.zones) {
                out.put_u32(*rows);
                match zone {
                    BlockZone::Int { min, max } => {
                        out.put_u8(0);
                        out.put_i32(*min);
                        out.put_i32(*max);
                    }
                    BlockZone::Double { min, max, has_nan } => {
                        out.put_u8(1);
                        out.put_f64(*min);
                        out.put_f64(*max);
                        out.put_u8(u8::from(*has_nan));
                    }
                    BlockZone::Str => out.put_u8(2),
                }
            }
        }
        out
    }

    /// Parses a sidecar produced by [`Sidecar::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Sidecar> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != b"BTRM" {
            return Err(Error::Corrupt("bad sidecar magic"));
        }
        let n_cols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let name_len = r.u16()? as usize;
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|_| Error::Corrupt("sidecar name not utf-8"))?;
            let column_type =
                ColumnType::from_tag(r.u8()?).ok_or(Error::Corrupt("bad sidecar type"))?;
            let n_blocks = r.u32()? as usize;
            let mut block_rows = Vec::with_capacity(n_blocks);
            let mut zones = Vec::with_capacity(n_blocks);
            for _ in 0..n_blocks {
                block_rows.push(r.u32()?);
                match r.u8()? {
                    0 => zones.push(BlockZone::Int {
                        min: r.i32()?,
                        max: r.i32()?,
                    }),
                    1 => zones.push(BlockZone::Double {
                        min: r.f64()?,
                        max: r.f64()?,
                        has_nan: r.u8()? != 0,
                    }),
                    2 => zones.push(BlockZone::Str),
                    _ => return Err(Error::Corrupt("bad zone tag")),
                }
            }
            columns.push(ColumnMeta {
                name,
                column_type,
                block_rows,
                zones,
            });
        }
        Ok(Sidecar { columns })
    }
}

impl BlockZone {
    /// Whether a block with this zone may contain rows matching the
    /// predicate. `true` means "must be fetched"; `false` means "prune".
    pub fn may_match(&self, op: CmpOp, literal: &Literal) -> bool {
        match (self, literal) {
            (BlockZone::Int { min, max }, Literal::Int(l)) => range_may_match(*min, *max, op, *l),
            (BlockZone::Double { min, max, has_nan }, Literal::Double(l)) => {
                // NaN never matches any comparison, so it cannot *add*
                // matches, but it also does not widen min/max.
                let _ = has_nan;
                if l.is_nan() {
                    return false;
                }
                range_may_match(*min, *max, op, *l)
            }
            // No string zone stats: never prune.
            (BlockZone::Str, _) => true,
            // Type-mismatched predicate: be safe, fetch the block.
            _ => true,
        }
    }
}

fn range_may_match<T: PartialOrd>(min: T, max: T, op: CmpOp, lit: T) -> bool {
    match op {
        CmpOp::Eq => min <= lit && lit <= max,
        CmpOp::Lt => min < lit,
        CmpOp::Le => min <= lit,
        CmpOp::Gt => max > lit,
        CmpOp::Ge => max >= lit,
    }
}

/// Scans one column of a compressed relation with zone-map pruning: blocks
/// whose zones cannot match are skipped without decompression. Returns
/// matching global row positions and the number of blocks actually decoded.
pub fn pruned_filter(
    compressed: &CompressedRelation,
    sidecar: &Sidecar,
    column: &str,
    op: CmpOp,
    literal: &Literal,
    cfg: &crate::config::Config,
) -> Result<(btr_roaring::RoaringBitmap, usize)> {
    let (ci, col) = compressed
        .columns
        .iter()
        .enumerate()
        .find(|(_, c)| c.name == column)
        .ok_or(Error::Corrupt("unknown column"))?;
    let meta = sidecar
        .column(column)
        .ok_or(Error::Corrupt("column missing from sidecar"))?;
    if meta.zones.len() != col.blocks.len() {
        return Err(Error::Corrupt("sidecar block count mismatch"));
    }
    let _ = ci;
    let mut out = btr_roaring::RoaringBitmap::new();
    let mut decoded = 0usize;
    let mut base = 0u32;
    for ((block, zone), rows) in col.blocks.iter().zip(&meta.zones).zip(&meta.block_rows) {
        if zone.may_match(op, literal) {
            decoded += 1;
            let matches = crate::query::filter_block(block, col.column_type, op, literal, cfg)?;
            for m in matches.iter() {
                out.insert(base + m);
            }
        }
        base += rows;
    }
    Ok((out, decoded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{compress, Column, Relation};
    use crate::Config;

    fn sample() -> (Relation, Config) {
        let cfg = Config {
            block_size: 1_000,
            ..Config::default()
        };
        // Sorted data → disjoint block ranges → aggressive pruning.
        let rel = Relation::new(vec![Column::new(
            "sorted",
            ColumnData::Int((0..10_000).collect()),
        )]);
        (rel, cfg)
    }

    #[test]
    fn sidecar_roundtrips() {
        let (rel, cfg) = sample();
        let sidecar = Sidecar::build(&rel, cfg.block_size);
        let bytes = sidecar.to_bytes();
        assert_eq!(Sidecar::from_bytes(&bytes).unwrap(), sidecar);
        assert!(Sidecar::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Sidecar::from_bytes(b"junk").is_err());
    }

    #[test]
    fn zones_capture_min_max() {
        let (rel, cfg) = sample();
        let sidecar = Sidecar::build(&rel, cfg.block_size);
        match sidecar.columns[0].zones[3] {
            BlockZone::Int { min, max } => {
                assert_eq!(min, 3_000);
                assert_eq!(max, 3_999);
            }
            ref other => panic!("unexpected zone {other:?}"),
        }
    }

    #[test]
    fn pruned_filter_skips_blocks() {
        let (rel, cfg) = sample();
        let sidecar = Sidecar::build(&rel, cfg.block_size);
        let compressed = compress(&rel, &cfg).unwrap();
        // Equality on a sorted column: exactly one block must be decoded.
        let (matches, decoded) = pruned_filter(
            &compressed,
            &sidecar,
            "sorted",
            CmpOp::Eq,
            &Literal::Int(4_321),
            &cfg,
        )
        .unwrap();
        assert_eq!(matches.iter().collect::<Vec<_>>(), vec![4_321]);
        assert_eq!(decoded, 1, "only the containing block decodes");
        // Range predicate: prefix of blocks.
        let (matches, decoded) = pruned_filter(
            &compressed,
            &sidecar,
            "sorted",
            CmpOp::Lt,
            &Literal::Int(2_500),
            &cfg,
        )
        .unwrap();
        assert_eq!(matches.cardinality(), 2_500);
        assert_eq!(decoded, 3);
    }

    #[test]
    fn double_zone_nan_handling() {
        for mode in [crate::config::SimdMode::Auto, crate::config::SimdMode::ForceScalar] {
            let zone = zone_of_f64(&[1.0, f64::NAN, 3.0], mode);
            match zone {
                BlockZone::Double { min, max, has_nan } => {
                    assert_eq!(min, 1.0);
                    assert_eq!(max, 3.0);
                    assert!(has_nan);
                }
                _ => panic!(),
            }
            assert!(!zone.may_match(CmpOp::Eq, &Literal::Double(f64::NAN)));
            assert!(zone.may_match(CmpOp::Eq, &Literal::Double(2.0)));
            assert!(!zone.may_match(CmpOp::Gt, &Literal::Double(3.0)));
        }
    }

    #[test]
    fn sidecar_simd_modes_agree() {
        // The SIMD and scalar zone builders must produce identical sidecars.
        let rel = crate::relation::Relation::new(vec![crate::relation::Column::new(
            "v",
            ColumnData::Int((0..10_000).map(|i| (i * 31) % 997 - 400).collect()),
        )]);
        let auto = Sidecar::build_with(&rel, 700, crate::config::SimdMode::Auto);
        let scalar = Sidecar::build_with(&rel, 700, crate::config::SimdMode::ForceScalar);
        assert_eq!(auto, scalar);
    }

    #[test]
    fn string_zones_never_prune() {
        let zone = BlockZone::Str;
        assert!(zone.may_match(CmpOp::Eq, &Literal::Str(b"x".to_vec())));
    }

    /// Reference implementation: decompress everything, filter row by row.
    /// Pruning is only correct if it never loses a row this scan finds.
    fn reference_double_filter(values: &[f64], op: CmpOp, lit: f64) -> Vec<u32> {
        values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| op.matches(v, &lit).then_some(i as u32))
            .collect()
    }

    #[test]
    fn all_nan_blocks_prune_safely() {
        let cfg = Config {
            block_size: 100,
            ..Config::default()
        };
        // Block 0: plain values. Block 1: all NaN. Block 2: plain values.
        let mut values = vec![0.0f64; 300];
        for (i, v) in values.iter_mut().enumerate() {
            *v = match i / 100 {
                0 => i as f64,
                1 => f64::NAN,
                _ => i as f64 - 200.0,
            };
        }
        let rel = Relation::new(vec![Column::new(
            "d",
            ColumnData::Double(values.clone()),
        )]);
        let sidecar = Sidecar::build(&rel, cfg.block_size);
        // The all-NaN block's zone collapses to (0.0, 0.0) + has_nan.
        match sidecar.columns[0].zones[1] {
            BlockZone::Double { min, max, has_nan } => {
                assert_eq!((min, max), (0.0, 0.0));
                assert!(has_nan);
            }
            ref other => panic!("unexpected zone {other:?}"),
        }
        let compressed = compress(&rel, &cfg).unwrap();
        for (op, lit) in [
            (CmpOp::Eq, 0.0),
            (CmpOp::Eq, 50.0),
            (CmpOp::Lt, 10.0),
            (CmpOp::Ge, 0.0),
            (CmpOp::Gt, 98.5),
            (CmpOp::Eq, f64::NAN),
        ] {
            let (matches, _) = pruned_filter(
                &compressed,
                &sidecar,
                "d",
                op,
                &Literal::Double(lit),
                &cfg,
            )
            .unwrap();
            assert_eq!(
                matches.iter().collect::<Vec<_>>(),
                reference_double_filter(&values, op, lit),
                "op {op:?} lit {lit}"
            );
        }
        // A NaN literal prunes everything outright: NaN matches no comparison.
        let (matches, decoded) = pruned_filter(
            &compressed,
            &sidecar,
            "d",
            CmpOp::Eq,
            &Literal::Double(f64::NAN),
            &cfg,
        )
        .unwrap();
        assert!(matches.is_empty());
        assert_eq!(decoded, 0);
    }

    #[test]
    fn has_nan_does_not_widen_range_pruning() {
        // NaN values in a block must not stop range predicates from pruning
        // on the non-NaN min/max — NaN can never satisfy the predicate.
        let cfg = Config {
            block_size: 4,
            ..Config::default()
        };
        let values = vec![1.0, 2.0, f64::NAN, 3.0, 10.0, f64::NAN, 11.0, 12.0];
        let rel = Relation::new(vec![Column::new(
            "d",
            ColumnData::Double(values.clone()),
        )]);
        let sidecar = Sidecar::build(&rel, cfg.block_size);
        let compressed = compress(&rel, &cfg).unwrap();
        // Gt(5): block 0 (max 3) prunes even though it contains NaN.
        let (matches, decoded) =
            pruned_filter(&compressed, &sidecar, "d", CmpOp::Gt, &Literal::Double(5.0), &cfg)
                .unwrap();
        assert_eq!(matches.iter().collect::<Vec<_>>(), vec![4, 6, 7]);
        assert_eq!(decoded, 1, "only the high block decodes");
        // Le(3): block 1 (min 10) prunes.
        let (matches, decoded) =
            pruned_filter(&compressed, &sidecar, "d", CmpOp::Le, &Literal::Double(3.0), &cfg)
                .unwrap();
        assert_eq!(matches.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(decoded, 1, "only the low block decodes");
        // Boundary checks on the zone itself: max is 3.0 (not NaN-poisoned).
        match sidecar.columns[0].zones[0] {
            BlockZone::Double { min, max, has_nan } => {
                assert_eq!((min, max), (1.0, 3.0));
                assert!(has_nan);
            }
            ref other => panic!("unexpected zone {other:?}"),
        }
    }

    #[test]
    fn string_columns_are_never_pruned_incorrectly() {
        // String zones carry no min/max, so every block must be consulted
        // and every matching row found, block boundaries notwithstanding.
        let cfg = Config {
            block_size: 50,
            ..Config::default()
        };
        let strings: Vec<String> = (0..250).map(|i| format!("k-{:03}", i % 60)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let rel = Relation::new(vec![Column::new(
            "s",
            ColumnData::Str(crate::types::StringArena::from_strs(&refs)),
        )]);
        let sidecar = Sidecar::build(&rel, cfg.block_size);
        assert!(sidecar.columns[0]
            .zones
            .iter()
            .all(|z| matches!(z, BlockZone::Str)));
        let compressed = compress(&rel, &cfg).unwrap();
        let lit = Literal::Str(b"k-007".to_vec());
        let (matches, decoded) =
            pruned_filter(&compressed, &sidecar, "s", CmpOp::Eq, &lit, &cfg).unwrap();
        let expected: Vec<u32> = (0..250u32).filter(|i| i % 60 == 7).collect();
        assert_eq!(matches.iter().collect::<Vec<_>>(), expected);
        assert_eq!(decoded, 5, "no string block may be pruned");
        // Range predicates on strings: still exhaustive, still correct.
        let (matches, decoded) = pruned_filter(
            &compressed,
            &sidecar,
            "s",
            CmpOp::Lt,
            &Literal::Str(b"k-002".to_vec()),
            &cfg,
        )
        .unwrap();
        let expected: Vec<u32> = (0..250u32).filter(|i| i % 60 < 2).collect();
        assert_eq!(matches.iter().collect::<Vec<_>>(), expected);
        assert_eq!(decoded, 5);
    }
}
