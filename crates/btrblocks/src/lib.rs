//! BtrBlocks: efficient columnar compression for data lakes.
//!
//! A from-scratch Rust reproduction of the SIGMOD 2023 paper by Kuschewski,
//! Sauerwein, Alhomssi and Leis. BtrBlocks compresses typed columns
//! (32-bit integers, 64-bit floats, variable-length strings) by:
//!
//! 1. splitting each column into fixed-size blocks (default 64 000 values),
//! 2. picking the best encoding per block with a **sampling-based selection
//!    algorithm** — statistics filter out non-viable schemes, then each
//!    viable scheme compresses a small sample (ten 64-value runs from
//!    non-overlapping parts of the block ≈ 1 % of the data) and the best
//!    observed compression ratio wins,
//! 3. **cascading**: scheme outputs (RLE's run-length array, a dictionary's
//!    code sequence, Pseudodecimal's digit/exponent columns, …) are
//!    recursively compressed again, up to a configurable depth (default 3).
//!
//! The scheme pool mirrors the paper's Table 1 / Figure 3: RLE, One Value,
//! Dictionary and Frequency for every type; SIMD-FastPFOR and FastBP128 for
//! integers; FSST and Dict+FSST for strings; the novel **Pseudodecimal
//! Encoding** for doubles; Roaring bitmaps for NULLs and scheme exceptions.
//!
//! # Quick start
//!
//! ```
//! use btrblocks::{Column, ColumnData, Config, Relation};
//!
//! let rel = Relation::new(vec![
//!     Column::new("id", ColumnData::Int((0..100_000).collect())),
//!     Column::new("price", ColumnData::Double((0..100_000).map(|i| (i % 1000) as f64 * 0.25).collect())),
//! ]);
//! let compressed = btrblocks::compress(&rel, &Config::default()).unwrap();
//! let restored = btrblocks::decompress(&compressed.to_bytes(), &Config::default()).unwrap();
//! assert_eq!(rel, restored);
//! ```

pub mod block;
pub mod config;
pub mod crc32c;
pub mod fxhash;
pub mod metadata;
pub mod parallel;
pub mod query;
pub mod relation;
pub mod sampling;
pub mod scheme;
pub mod scratch;
pub mod simd;
pub mod stats;
pub mod types;
pub mod writer;

pub use block::{
    compress_block, compress_block_into, decompress_block, decompress_block_into, peek_scheme,
    BlockRef,
};
pub use config::{Config, SimdMode};
pub use metadata::{BlockZone, ColumnMeta, Sidecar};
pub use parallel::{
    assemble_compressed, assemble_decompressed, compress_item, compress_parallel,
    compress_parallel_stats, decode_granularity, decode_items, decompress_item,
    decompress_parallel, decompress_parallel_stats, encode_granularity, encode_item_cost,
    encode_items, DecodeItem, EncodeItem, ParallelStats,
};
pub use query::{filter_block, filter_decoded, has_fast_path, CmpOp, Literal};
pub use relation::{
    compress, compress_column, compress_column_into, compress_column_with_scratch, decompress,
    decompress_column_with_scratch, BlockRange, Column, CompressedColumn, CompressedRelation,
    Relation,
};
pub use scheme::SchemeCode;
pub use scratch::{DecodeScratch, EncodeScratch, ScratchStats};
pub use types::{ColumnData, ColumnType, DecodedColumn, StringArena, StringViews};

/// Errors produced by compression and decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Encoded data ended before the promised values were decoded.
    UnexpectedEnd,
    /// An unknown or type-invalid scheme code was encountered.
    InvalidScheme(u8),
    /// Structural corruption in the encoded data.
    Corrupt(&'static str),
    /// A length or count field in the encoded data exceeds what the
    /// surrounding container can possibly hold — rejected before any
    /// allocation is attempted.
    LimitExceeded(&'static str),
    /// Error from a substrate codec (bit-packing, FSST, Roaring), with the
    /// underlying error's own message preserved.
    Substrate {
        codec: &'static str,
        detail: String,
    },
    /// A column part's CRC32C did not match its stored checksum (format v2).
    /// Reported before any scheme decoding is attempted on the part.
    ChecksumMismatch {
        column: u32,
        part: u32,
    },
    /// The whole-file footer CRC32C did not match (format v2).
    FileChecksumMismatch,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnexpectedEnd => write!(f, "compressed data ended unexpectedly"),
            Error::InvalidScheme(c) => write!(f, "invalid scheme code {c}"),
            Error::Corrupt(m) => write!(f, "corrupt compressed data: {m}"),
            Error::LimitExceeded(m) => write!(f, "length field exceeds container: {m}"),
            Error::Substrate { codec, detail } => {
                write!(f, "substrate codec error ({codec}): {detail}")
            }
            Error::ChecksumMismatch { column, part } => {
                write!(f, "checksum mismatch in column {column}, part {part}")
            }
            Error::FileChecksumMismatch => write!(f, "file footer checksum mismatch"),
        }
    }
}

impl std::error::Error for Error {}

impl From<btr_bitpacking::Error> for Error {
    fn from(e: btr_bitpacking::Error) -> Self {
        Error::Substrate { codec: "bitpacking", detail: e.to_string() }
    }
}

impl From<btr_fsst::Error> for Error {
    fn from(e: btr_fsst::Error) -> Self {
        Error::Substrate { codec: "fsst", detail: e.to_string() }
    }
}

impl From<btr_roaring::RoaringError> for Error {
    fn from(e: btr_roaring::RoaringError) -> Self {
        Error::Substrate { codec: "roaring", detail: e.to_string() }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
