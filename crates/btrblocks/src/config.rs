//! Compression configuration.

use crate::scheme::SchemeCode;

/// How decompression kernels are dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Use AVX2 kernels when the CPU supports them (runtime-detected).
    #[default]
    Auto,
    /// Always use the scalar kernels — the ablation of paper §6.8.
    ForceScalar,
}

/// Tuning knobs for compression and scheme selection.
///
/// Defaults match the paper: 64 000-value blocks, cascade depth 3, samples of
/// ten 64-value runs (1 % of a block).
#[derive(Debug, Clone)]
pub struct Config {
    /// Values per column block.
    pub block_size: usize,
    /// Maximum cascade recursion depth; at depth 0 data is left uncompressed.
    pub max_cascade_depth: u8,
    /// Number of sample runs drawn from non-overlapping parts of a block.
    pub sample_runs: usize,
    /// Values per sample run.
    pub sample_run_len: usize,
    /// Scalar/SIMD dispatch for decompression.
    pub simd: SimdMode,
    /// Schemes the selector may choose from. Shrinking this pool reproduces
    /// the paper's Figure 4 (adding techniques one at a time).
    pub scheme_pool: Vec<SchemeCode>,
    /// Exclude Frequency encoding when more than this fraction of values is
    /// unique (paper: 0.5).
    pub frequency_unique_max: f64,
    /// Exclude RLE when the average run length is below this (paper: 2.0).
    pub rle_min_avg_run: f64,
    /// Exclude Pseudodecimal when fewer than this fraction of values is
    /// unique (paper: 0.1) …
    pub pde_unique_min: f64,
    /// … or when more than this fraction cannot be encoded (paper: 0.5).
    pub pde_exception_max: f64,
    /// Only fuse RLE+Dict string decompression above this average run length
    /// (paper §5: 3.0).
    pub fused_rle_dict_min_run: f64,
    /// Augment sample-based estimates with analytic ones derived from exact
    /// full-block statistics (dictionary size, RLE run-count floor). Disable
    /// to study pure sampling behaviour, as the Figure 5 experiment does.
    pub analytic_estimates: bool,
    /// Decompression rejects any block frame claiming more values than this.
    /// Corrupt or adversarial headers could otherwise demand absurd
    /// allocations (a 5-byte OneValue frame can claim 2^32 values). Raise it
    /// when reading files written with unusually large `block_size`.
    pub max_block_values: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            block_size: 64_000,
            max_cascade_depth: 3,
            sample_runs: 10,
            sample_run_len: 64,
            simd: SimdMode::Auto,
            scheme_pool: SchemeCode::full_pool(),
            frequency_unique_max: 0.5,
            rle_min_avg_run: 2.0,
            pde_unique_min: 0.1,
            pde_exception_max: 0.5,
            fused_rle_dict_min_run: 3.0,
            analytic_estimates: true,
            max_block_values: 1 << 24,
        }
    }
}

impl Config {
    /// Total sampled values per block.
    pub fn sample_size(&self) -> usize {
        self.sample_runs * self.sample_run_len
    }

    /// Returns true if `code` is allowed by the configured pool.
    pub fn allows(&self, code: SchemeCode) -> bool {
        self.scheme_pool.contains(&code)
    }

    /// A config with a restricted scheme pool (plus `Uncompressed`, which is
    /// always permitted as the fallback).
    pub fn with_pool(mut self, pool: &[SchemeCode]) -> Self {
        let mut p = pool.to_vec();
        if !p.contains(&SchemeCode::Uncompressed) {
            p.push(SchemeCode::Uncompressed);
        }
        self.scheme_pool = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Config::default();
        assert_eq!(c.block_size, 64_000);
        assert_eq!(c.max_cascade_depth, 3);
        assert_eq!(c.sample_size(), 640);
        assert!((c.sample_size() as f64 / c.block_size as f64 - 0.01).abs() < 1e-9);
    }

    #[test]
    fn with_pool_keeps_uncompressed() {
        let c = Config::default().with_pool(&[SchemeCode::Rle]);
        assert!(c.allows(SchemeCode::Rle));
        assert!(c.allows(SchemeCode::Uncompressed));
        assert!(!c.allows(SchemeCode::Dict));
    }
}
