//! Parallel compression and decompression.
//!
//! Blocks are self-contained, which is exactly what makes BtrBlocks easy to
//! parallelize (paper §2.2: "Blocks also facilitate parallelizing compression
//! and decompression"). Compression fans out at *block* granularity: the
//! relation is flattened into (column, block-range) work items consumed from
//! an atomic work queue, so a relation with one huge column scales with
//! cores just as well as a wide one. Decompression fans out per column.
//! Results are returned in the original order regardless of completion
//! order, and parallel output is byte-identical to the serial path.

use crate::block::{self, BlockRef};
use crate::config::Config;
use crate::relation::{
    decompress_column_with_scratch, Column, CompressedColumn, CompressedRelation, Relation,
};
use crate::scheme::SchemeCode;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::types::ColumnData;
use crate::Result;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use btr_sync::{OrderedMutex, Rank};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-item result slots for the fan-out below. Leaf rank of the workspace
/// lock hierarchy (DESIGN.md §15): a worker stores into exactly one slot at
/// a time with nothing else held, and the collector drains after the scope
/// joins.
const PARALLEL_SLOT_RANK: Rank = Rank::new(100, "blocks.parallel.slot");

thread_local! {
    /// Per-worker decode arena: buffers leased while decoding one column are
    /// pooled on the worker thread and reused for every later block it
    /// decodes, so steady-state parallel decompression allocates nothing.
    static DECODE_SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::new());

    /// Per-worker encode arena: the first block a worker compresses warms the
    /// sample/trial/side-array pools for every later block it pulls from the
    /// queue, mirroring the shared scratch of the serial path.
    static ENCODE_SCRATCH: RefCell<EncodeScratch> = RefCell::new(EncodeScratch::new());
}

/// Renders a caught panic payload (the `&str`/`String` cases `panic!`
/// produces; anything else becomes a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work(i)` for every `i in 0..n` on up to `threads` workers, storing
/// results in order. `describe(i)` names the unit of work in the panic
/// message (only evaluated when a worker actually panicked).
///
/// A panicking `work(i)` is caught on the worker (so it neither poisons the
/// result slots nor kills the thread mid-queue — the remaining indices still
/// run) and resurfaced on the calling thread as a panic naming the failing
/// work item. When several workers panic, the lowest index wins.
fn for_each_labeled<T: Send>(
    n: usize,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
    describe: impl Fn(usize) -> String,
) -> Vec<T> {
    let threads = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<OrderedMutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| OrderedMutex::new(PARALLEL_SLOT_RANK, None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // ordering: work-ticket counter; results are published by the
                // scope join, not by this fetch_add
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = catch_unwind(AssertUnwindSafe(|| work(i)));
                // lint: allow(indexing) i < n was checked by the break above; slots has n entries
                *slots[i].lock() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let filled = s.into_inner().expect("worker filled slot");
            match filled {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(Box::new(format!(
                    "worker for {} panicked: {}",
                    describe(i),
                    panic_message(payload.as_ref())
                ))),
            }
        })
        .collect()
}

/// [`for_each_labeled`] with the classic per-column labelling.
fn for_each_indexed<T: Send>(
    n: usize,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    for_each_labeled(n, threads, work, |i| format!("column {i}"))
}

/// One unit of compression work: a block-sized slice of one column.
/// An empty column contributes a single `start == end == 0` item so its
/// explicit empty block is still produced (mirroring the serial path).
struct EncodeItem {
    col: usize,
    blk: usize,
    start: usize,
    end: usize,
}

/// Flattens a relation into block-granular work items, column-major, so the
/// per-column results can be reassembled by pushing in item order.
fn encode_items(rel: &Relation, cfg: &Config) -> Vec<EncodeItem> {
    let bs = cfg.block_size.max(1);
    let mut items = Vec::new();
    for (c, col) in rel.columns.iter().enumerate() {
        let n = col.data.len();
        if n == 0 {
            items.push(EncodeItem { col: c, blk: 0, start: 0, end: 0 });
            continue;
        }
        let mut start = 0;
        let mut blk = 0;
        while start < n {
            let end = (start + bs).min(n);
            items.push(EncodeItem { col: c, blk, start, end });
            start = end;
            blk += 1;
        }
    }
    items
}

/// Compresses one work item on a worker thread, leasing every encode
/// temporary from the worker's thread-local [`EncodeScratch`].
fn compress_item(rel: &Relation, cfg: &Config, item: &EncodeItem) -> (Vec<u8>, SchemeCode) {
    let col = rel.columns.get(item.col).expect("items index existing columns");
    ENCODE_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let mut buf = Vec::new();
        let code = match &col.data {
            ColumnData::Int(v) => {
                let chunk = v.get(item.start..item.end).expect("item range within column");
                block::compress_block_into(BlockRef::Int(chunk), cfg, scratch, &mut buf)
            }
            ColumnData::Double(v) => {
                let chunk = v.get(item.start..item.end).expect("item range within column");
                block::compress_block_into(BlockRef::Double(chunk), cfg, scratch, &mut buf)
            }
            ColumnData::Str(arena) => {
                let mut sub = scratch.lease_arena();
                arena.gather_into(item.start..item.end, &mut sub);
                let code = block::compress_block_into(BlockRef::Str(&sub), cfg, scratch, &mut buf);
                scratch.release_arena(sub);
                code
            }
        };
        (buf, code)
    })
}

/// Compresses a relation `threads`-wide at block granularity.
///
/// The relation is flattened into (column, block-range) items consumed from
/// an atomic work queue by `threads` workers, each owning a thread-local
/// [`EncodeScratch`]. A single-column relation therefore still saturates
/// every worker. Output is byte-identical to [`crate::relation::compress`]
/// for every thread count — scheme selection is deterministic and blocks are
/// reassembled in their original order.
pub fn compress_parallel(rel: &Relation, cfg: &Config, threads: usize) -> Result<CompressedRelation> {
    let items = encode_items(rel, cfg);
    let results: Vec<(Vec<u8>, SchemeCode)> = for_each_labeled(
        items.len(),
        threads,
        // lint: allow(indexing) for_each_labeled only passes i < items.len()
        |i| compress_item(rel, cfg, &items[i]),
        |i| match items.get(i) {
            Some(it) => format!("column {} block {}", it.col, it.blk),
            None => format!("work item {i}"),
        },
    );
    let mut columns: Vec<CompressedColumn> = rel
        .columns
        .iter()
        .map(|col| CompressedColumn {
            name: col.name.clone(),
            column_type: col.data.column_type(),
            nulls: col.nulls.as_ref().map(|b| b.serialize()).unwrap_or_default(),
            blocks: Vec::new(),
            schemes: Vec::new(),
        })
        .collect();
    // Items are column-major, so pushing in item order restores block order.
    for (item, (bytes, code)) in items.iter().zip(results) {
        let col = columns.get_mut(item.col).expect("items index existing columns");
        col.blocks.push(bytes);
        col.schemes.push(code);
    }
    Ok(CompressedRelation {
        rows: rel.rows() as u64,
        columns,
    })
}

/// Decompresses a relation with one worker per column, `threads`-wide.
pub fn decompress_parallel(
    compressed: &CompressedRelation,
    cfg: &Config,
    threads: usize,
) -> Result<Relation> {
    let results: Vec<Result<Column>> = for_each_indexed(compressed.columns.len(), threads, |i| {
        DECODE_SCRATCH.with(|scratch| {
            // lint: allow(indexing) for_each_indexed only passes i < columns.len()
            decompress_column_with_scratch(&compressed.columns[i], cfg, &mut scratch.borrow_mut())
        })
    });
    let mut columns = Vec::with_capacity(results.len());
    for r in results {
        columns.push(r?);
    }
    Ok(Relation { columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColumnData, StringArena};

    fn sample(rows: usize) -> Relation {
        let strings: Vec<String> = (0..rows).map(|i| format!("p{}", i % 31)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        Relation::new(vec![
            Column::new("a", ColumnData::Int((0..rows as i32).collect())),
            Column::new("b", ColumnData::Double((0..rows).map(|i| i as f64 * 0.5).collect())),
            Column::new("c", ColumnData::Str(StringArena::from_strs(&refs))),
            Column::new("d", ColumnData::Int(vec![9; rows])),
        ])
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = Config::default();
        let rel = sample(5_000);
        let seq = crate::relation::compress(&rel, &cfg).unwrap();
        for threads in [1, 2, 8] {
            let par = compress_parallel(&rel, &cfg, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
            let restored = decompress_parallel(&par, &cfg, threads).unwrap();
            assert_eq!(restored, rel);
        }
    }

    #[test]
    fn parallel_handles_empty_relation() {
        let cfg = Config::default();
        let rel = Relation::new(vec![]);
        let compressed = compress_parallel(&rel, &cfg, 4).unwrap();
        assert_eq!(decompress_parallel(&compressed, &cfg, 4).unwrap(), rel);
    }

    #[test]
    fn worker_panic_resurfaces_with_column_index() {
        let caught = std::panic::catch_unwind(|| {
            for_each_indexed(6, 3, |i| {
                if i == 4 {
                    panic!("boom in column four");
                }
                i * 2
            })
        })
        .expect_err("the worker panic must propagate to the caller");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic payload carries the formatted message");
        assert!(msg.contains("column 4"), "got: {msg}");
        assert!(msg.contains("boom in column four"), "got: {msg}");
    }

    #[test]
    fn panic_in_one_slot_does_not_lose_other_results() {
        // The panicking index must not prevent later indices assigned to the
        // same worker from completing (the old behaviour killed the thread).
        let completed = std::sync::atomic::AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(|| {
            for_each_indexed(8, 1, |i| {
                assert!(i != 0, "index 0 panics first on the only worker");
                completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                i
            })
        });
        assert!(caught.is_err());
        assert_eq!(
            completed.load(std::sync::atomic::Ordering::Relaxed),
            7,
            "the single worker must survive the panic and finish the queue"
        );
    }

    #[test]
    fn parallel_scratch_decode_is_byte_identical_to_serial() {
        // Worker-local scratch reuse must not perturb a single decoded bit,
        // including NaN payloads and signed zeros that `==` would gloss over.
        let cfg = Config {
            block_size: 512,
            ..Config::default()
        };
        let doubles: Vec<f64> = (0..4_000)
            .map(|i| match i % 5 {
                0 => f64::NAN,
                1 => -0.0,
                2 => i as f64 * 0.125,
                3 => f64::INFINITY,
                _ => -(i as f64),
            })
            .collect();
        let strings: Vec<String> = (0..4_000).map(|i| format!("row-{}", i % 97)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int((0..4_000).map(|i| i % 300).collect())),
            Column::new("d", ColumnData::Double(doubles)),
            Column::new("s", ColumnData::Str(StringArena::from_strs(&refs))),
        ]);
        let compressed = crate::relation::compress(&rel, &cfg).unwrap();
        let serial = crate::relation::decompress_relation(&compressed, &cfg).unwrap();
        for threads in [1, 3, 8] {
            let parallel = decompress_parallel(&compressed, &cfg, threads).unwrap();
            for (a, b) in serial.columns.iter().zip(&parallel.columns) {
                assert_eq!(a.name, b.name);
                match (&a.data, &b.data) {
                    (ColumnData::Int(x), ColumnData::Int(y)) => assert_eq!(x, y),
                    (ColumnData::Double(x), ColumnData::Double(y)) => {
                        assert_eq!(x.len(), y.len());
                        for (u, v) in x.iter().zip(y) {
                            assert_eq!(u.to_bits(), v.to_bits(), "threads = {threads}");
                        }
                    }
                    (ColumnData::Str(x), ColumnData::Str(y)) => {
                        assert_eq!(x.len(), y.len());
                        for i in 0..x.len() {
                            assert_eq!(x.get(i), y.get(i), "threads = {threads}");
                        }
                    }
                    _ => panic!("column type changed between serial and parallel"),
                }
            }
        }
    }

    #[test]
    fn single_column_relation_fans_out_over_blocks() {
        // The whole point of block granularity: one column, many workers.
        // Output must stay byte-identical to serial for every thread count.
        let cfg = Config {
            block_size: 512,
            ..Config::default()
        };
        let rel = Relation::new(vec![Column::new(
            "only",
            ColumnData::Int((0..20_000).map(|i| (i * 37) % 1000).collect()),
        )]);
        let seq = crate::relation::compress(&rel, &cfg).unwrap();
        assert!(seq.columns[0].blocks.len() > 30, "needs many blocks to parallelize");
        for threads in [1, 2, 3, 8] {
            let par = compress_parallel(&rel, &cfg, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn mixed_relation_block_parallel_is_byte_identical() {
        // Uneven column lengths + all three types + an empty column, with a
        // block size that leaves ragged final blocks.
        let cfg = Config {
            block_size: 300,
            ..Config::default()
        };
        let strings: Vec<String> = (0..2_750).map(|i| format!("city-{}", i % 41)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int((0..2_750).map(|i| i % 17).collect())),
            Column::new(
                "d",
                ColumnData::Double((0..2_750).map(|i| (i % 251) as f64 * 0.125).collect()),
            ),
            Column::new("s", ColumnData::Str(StringArena::from_strs(&refs))),
        ]);
        let seq = crate::relation::compress(&rel, &cfg).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = compress_parallel(&rel, &cfg, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
            assert_eq!(par.to_bytes(), seq.to_bytes(), "threads = {threads}");
        }
        // Empty columns keep their explicit empty block in parallel too.
        let empty = Relation::new(vec![
            Column::new("a", ColumnData::Int(Vec::new())),
            Column::new("b", ColumnData::Str(StringArena::new())),
        ]);
        let seq = crate::relation::compress(&empty, &cfg).unwrap();
        let par = compress_parallel(&empty, &cfg, 4).unwrap();
        assert_eq!(par, seq);
        assert_eq!(par.columns[0].blocks.len(), 1);
    }

    #[test]
    fn block_panic_names_column_and_block() {
        let caught = std::panic::catch_unwind(|| {
            for_each_labeled(
                6,
                2,
                |i| {
                    if i == 3 {
                        panic!("bad block");
                    }
                    i
                },
                |i| format!("column 9 block {i}"),
            )
        })
        .expect_err("the worker panic must propagate to the caller");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic payload carries the formatted message");
        assert!(msg.contains("column 9 block 3"), "got: {msg}");
        assert!(msg.contains("bad block"), "got: {msg}");
    }

    #[test]
    fn corrupt_column_error_propagates() {
        let cfg = Config::default();
        let rel = sample(500);
        let mut compressed = compress_parallel(&rel, &cfg, 2).unwrap();
        compressed.columns[1].blocks[0][0] = 200; // invalid scheme code
        assert!(decompress_parallel(&compressed, &cfg, 2).is_err());
    }
}
