//! Morsel-driven parallel compression and decompression.
//!
//! Blocks are self-contained, which is exactly what makes BtrBlocks easy to
//! parallelize (paper §2.2: "Blocks also facilitate parallelizing compression
//! and decompression"). Both directions fan out at *block* granularity over a
//! shared [`MorselDispenser`] (btr-sync): work items carry a cost — bytes of
//! input for encode, rows of output for decode — and each worker claims a
//! size-targeted *range* of items per trip to the queue instead of one item
//! per atomic bump. Granularity is adaptive: small morsels while ramping so
//! every worker starts immediately, doubling per round up to a cap so queue
//! traffic amortizes away at steady state.
//!
//! Contention is engineered out at both ends. The dispenser's cursor is the
//! only shared mutable word and it is cache-line padded; per-worker counters
//! ([`WorkerStats`]) live in worker-local storage. Results are *staged
//! worker-locally* — each worker accumulates `(item index, result)` pairs and
//! hands the whole batch back through its scoped-thread join — so the
//! collector never takes a lock a producer could be holding; there are no
//! result locks at all.
//!
//! Output is byte-identical to the serial path for every worker count and
//! granularity: scheme selection is deterministic per block and results are
//! reassembled in item order, regardless of completion order. Worker panics
//! are caught per item and resurfaced on the calling thread naming the
//! failing column/block (lowest item index wins when several panic), and a
//! panicking item does not prevent the same worker from finishing the rest
//! of the queue.

use crate::block::{self, BlockRef};
use crate::config::Config;
use crate::relation::{Column, CompressedColumn, CompressedRelation, Relation};
use crate::scheme::SchemeCode;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::types::{ColumnData, ColumnType, DecodedColumn, StringArena};
use crate::{Error, Result};
use btr_sync::morsel::{Granularity, MorselDispenser, WorkerStats};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

thread_local! {
    /// Per-worker decode arena: buffers leased while decoding one block are
    /// pooled on the worker thread and reused for every later block it
    /// decodes, so steady-state parallel decompression allocates little.
    static DECODE_SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::new());

    /// Per-worker encode arena: the first block a worker compresses warms the
    /// sample/trial/side-array pools for every later block it pulls from the
    /// queue, mirroring the shared scratch of the serial path.
    static ENCODE_SCRATCH: RefCell<EncodeScratch> = RefCell::new(EncodeScratch::new());
}

/// Work accounting for one parallel run: one [`WorkerStats`] per worker.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Per-worker accounting, in spawn order.
    pub workers: Vec<WorkerStats>,
}

impl ParallelStats {
    /// Sums the per-worker stats.
    pub fn total(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.workers {
            t.merge(w);
        }
        t
    }
}

/// Default morsel sizing for encode, in bytes of input: ramp from 64 KiB to
/// 1 MiB per claim.
pub fn encode_granularity() -> Granularity {
    Granularity::adaptive(64 << 10, 1 << 20)
}

/// Default morsel sizing for decode, in rows of output: ramp from 8 Ki rows
/// to 256 Ki rows per claim.
pub fn decode_granularity() -> Granularity {
    Granularity::adaptive(8 << 10, 256 << 10)
}

/// Renders a caught panic payload (the `&str`/`String` cases `panic!`
/// produces; anything else becomes a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work(i)` for every item over up to `threads` workers claiming
/// cost-targeted morsels from a shared dispenser, returning results in item
/// order plus per-worker accounting.
///
/// Each worker stages its `(index, result)` pairs locally and returns them
/// through its join handle — no shared result state, no collector contention.
/// A panicking `work(i)` is caught on the worker (the remaining items still
/// run) and resurfaced on the calling thread as a panic naming the failing
/// work item via `describe(i)`; when several items panic, the lowest index
/// wins.
fn run_morsels<T: Send>(
    costs: &[u64],
    granularity: Granularity,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
    describe: impl Fn(usize) -> String,
) -> (Vec<T>, ParallelStats) {
    let n = costs.len();
    let threads = threads.max(1).min(n.max(1));
    let dispenser = MorselDispenser::new(costs, granularity, threads);
    type Staged<T> = Vec<(usize, std::thread::Result<T>)>;
    let worker_outputs: Vec<(Staged<T>, WorkerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut stats = WorkerStats::default();
                    let mut staged: Staged<T> = Vec::new();
                    while let Some(m) = dispenser.claim(&mut stats) {
                        for i in m.start..m.end {
                            staged.push((i, catch_unwind(AssertUnwindSafe(|| work(i)))));
                        }
                    }
                    (staged, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel workers return their staging"))
            .collect()
    });
    let mut stats = ParallelStats { workers: Vec::with_capacity(threads) };
    let mut slots: Vec<Option<std::thread::Result<T>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (staged, ws) in worker_outputs {
        stats.workers.push(ws);
        for (i, r) in staged {
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(r);
            }
        }
    }
    let mut results = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.expect("the dispenser covers every item exactly once") {
            Ok(v) => results.push(v),
            Err(payload) => std::panic::resume_unwind(Box::new(format!(
                "worker for {} panicked: {}",
                describe(i),
                panic_message(payload.as_ref())
            ))),
        }
    }
    (results, stats)
}

/// One unit of compression work: a block-sized slice of one column.
/// An empty column contributes a single `start == end == 0` item so its
/// explicit empty block is still produced (mirroring the serial path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeItem {
    /// Column index in the relation.
    pub col: usize,
    /// Block index within the column.
    pub blk: usize,
    /// First row of the block (inclusive).
    pub start: usize,
    /// One past the last row of the block.
    pub end: usize,
}

/// Flattens a relation into block-granular work items, column-major, so the
/// per-column results can be reassembled by pushing in item order.
pub fn encode_items(rel: &Relation, cfg: &Config) -> Vec<EncodeItem> {
    let bs = cfg.block_size.max(1);
    let mut items = Vec::new();
    for (c, col) in rel.columns.iter().enumerate() {
        let n = col.data.len();
        if n == 0 {
            items.push(EncodeItem { col: c, blk: 0, start: 0, end: 0 });
            continue;
        }
        let mut start = 0;
        let mut blk = 0;
        while start < n {
            let end = (start + bs).min(n);
            items.push(EncodeItem { col: c, blk, start, end });
            start = end;
            blk += 1;
        }
    }
    items
}

/// The dispenser cost of one encode item: bytes of input it covers.
pub fn encode_item_cost(rel: &Relation, item: &EncodeItem) -> u64 {
    let col = rel.columns.get(item.col).expect("items index existing columns");
    let rows = (item.end - item.start) as u64;
    match &col.data {
        ColumnData::Int(_) => rows * 4,
        ColumnData::Double(_) => rows * 8,
        // Strings pay per byte: sum the exact slice lengths (offset lookups,
        // no copies), so one 4 MB block and one 40-byte block size morsels
        // honestly.
        ColumnData::Str(arena) => (item.start..item.end)
            .map(|i| arena.get(i).len() as u64)
            .sum(),
    }
}

/// Compresses one work item on a worker thread, leasing every encode
/// temporary from the worker's thread-local [`EncodeScratch`].
pub fn compress_item(rel: &Relation, cfg: &Config, item: &EncodeItem) -> (Vec<u8>, SchemeCode) {
    let col = rel.columns.get(item.col).expect("items index existing columns");
    ENCODE_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let mut buf = Vec::new();
        let code = match &col.data {
            ColumnData::Int(v) => {
                let chunk = v.get(item.start..item.end).expect("item range within column");
                block::compress_block_into(BlockRef::Int(chunk), cfg, scratch, &mut buf)
            }
            ColumnData::Double(v) => {
                let chunk = v.get(item.start..item.end).expect("item range within column");
                block::compress_block_into(BlockRef::Double(chunk), cfg, scratch, &mut buf)
            }
            ColumnData::Str(arena) => {
                let mut sub = scratch.lease_arena();
                arena.gather_into(item.start..item.end, &mut sub);
                let code = block::compress_block_into(BlockRef::Str(&sub), cfg, scratch, &mut buf);
                scratch.release_arena(sub);
                code
            }
        };
        (buf, code)
    })
}

/// Reassembles per-item compression results (in item order) into the final
/// relation. `items` must be the column-major list from [`encode_items`].
pub fn assemble_compressed(
    rel: &Relation,
    items: &[EncodeItem],
    results: Vec<(Vec<u8>, SchemeCode)>,
) -> CompressedRelation {
    let mut columns: Vec<CompressedColumn> = rel
        .columns
        .iter()
        .map(|col| CompressedColumn {
            name: col.name.clone(),
            column_type: col.data.column_type(),
            nulls: col.nulls.as_ref().map(|b| b.serialize()).unwrap_or_default(),
            blocks: Vec::new(),
            schemes: Vec::new(),
        })
        .collect();
    // Items are column-major, so pushing in item order restores block order.
    for (item, (bytes, code)) in items.iter().zip(results) {
        let col = columns.get_mut(item.col).expect("items index existing columns");
        col.blocks.push(bytes);
        col.schemes.push(code);
    }
    CompressedRelation {
        rows: rel.rows() as u64,
        columns,
    }
}

/// Compresses a relation `threads`-wide at block granularity with the
/// default adaptive [`encode_granularity`].
///
/// A single-column relation still saturates every worker (items are blocks,
/// not columns). Output is byte-identical to [`crate::relation::compress`]
/// for every thread count — scheme selection is deterministic and blocks are
/// reassembled in their original order.
pub fn compress_parallel(rel: &Relation, cfg: &Config, threads: usize) -> Result<CompressedRelation> {
    compress_parallel_stats(rel, cfg, threads, encode_granularity()).map(|(r, _)| r)
}

/// [`compress_parallel`] with an explicit morsel granularity, returning
/// per-worker work accounting alongside the result.
pub fn compress_parallel_stats(
    rel: &Relation,
    cfg: &Config,
    threads: usize,
    granularity: Granularity,
) -> Result<(CompressedRelation, ParallelStats)> {
    let items = encode_items(rel, cfg);
    let costs: Vec<u64> = items.iter().map(|it| encode_item_cost(rel, it)).collect();
    let (results, stats) = run_morsels(
        &costs,
        granularity,
        threads,
        // lint: allow(indexing) run_morsels only passes i < items.len()
        |i| compress_item(rel, cfg, &items[i]),
        |i| match items.get(i) {
            Some(it) => format!("column {} block {}", it.col, it.blk),
            None => format!("work item {i}"),
        },
    );
    Ok((assemble_compressed(rel, &items, results), stats))
}

/// One unit of decompression work: one compressed block of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeItem {
    /// Column index in the compressed relation.
    pub col: usize,
    /// Block index within the column.
    pub blk: usize,
}

/// Flattens a compressed relation into block-granular decode items
/// (column-major) with their rows-of-output costs from each block's frame
/// header. A block whose header cannot be peeked costs 1 — the decode error
/// surfaces from the worker with the right column/block label instead.
pub fn decode_items(compressed: &CompressedRelation) -> (Vec<DecodeItem>, Vec<u64>) {
    let mut items = Vec::new();
    let mut costs = Vec::new();
    for (c, col) in compressed.columns.iter().enumerate() {
        for (b, bytes) in col.blocks.iter().enumerate() {
            items.push(DecodeItem { col: c, blk: b });
            costs.push(block::peek_count(bytes).unwrap_or(1).max(1) as u64);
        }
    }
    (items, costs)
}

/// Decompresses one block on a worker thread, leasing decode temporaries
/// from the worker's thread-local [`DecodeScratch`]. The decoded output is
/// returned by value (worker-local staging); its buffers come from the
/// worker's pool when warm.
pub fn decompress_item(
    compressed: &CompressedRelation,
    cfg: &Config,
    item: &DecodeItem,
) -> Result<DecodedColumn> {
    let col = compressed.columns.get(item.col).expect("items index existing columns");
    let bytes = col.blocks.get(item.blk).expect("items index existing blocks");
    DECODE_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let mut out = scratch.lease_decoded(col.column_type);
        match block::decompress_block_into(bytes, col.column_type, cfg, scratch, &mut out) {
            Ok(()) => Ok(out),
            Err(e) => {
                scratch.recycle(out);
                Err(e)
            }
        }
    })
}

/// Reassembles per-item decode results (item order from [`decode_items`])
/// into the decompressed relation, concatenating each column's blocks in
/// order and restoring NULL bitmaps.
pub fn assemble_decompressed(
    compressed: &CompressedRelation,
    items: &[DecodeItem],
    results: Vec<Result<DecodedColumn>>,
) -> Result<Relation> {
    let mut columns: Vec<Column> = Vec::with_capacity(compressed.columns.len());
    for col in &compressed.columns {
        let data = match col.column_type {
            ColumnType::Integer => ColumnData::Int(Vec::new()),
            ColumnType::Double => ColumnData::Double(Vec::new()),
            ColumnType::String => ColumnData::Str(StringArena::new()),
        };
        let nulls = if col.nulls.is_empty() {
            None
        } else {
            Some(btr_roaring::RoaringBitmap::deserialize(&col.nulls)?)
        };
        columns.push(Column { name: col.name.clone(), data, nulls });
    }
    for (item, result) in items.iter().zip(results) {
        let decoded = result?;
        let col = columns.get_mut(item.col).expect("items index existing columns");
        match (&mut col.data, &decoded) {
            (ColumnData::Int(acc), DecodedColumn::Int(v)) => acc.extend_from_slice(v),
            (ColumnData::Double(acc), DecodedColumn::Double(v)) => acc.extend_from_slice(v),
            (ColumnData::Str(acc), DecodedColumn::Str(v)) => {
                for i in 0..v.len() {
                    acc.push(v.get(i));
                }
            }
            _ => return Err(Error::Corrupt("mixed block types in column")),
        }
    }
    Ok(Relation { columns })
}

/// Decompresses a relation `threads`-wide at block granularity with the
/// default adaptive [`decode_granularity`].
pub fn decompress_parallel(
    compressed: &CompressedRelation,
    cfg: &Config,
    threads: usize,
) -> Result<Relation> {
    decompress_parallel_stats(compressed, cfg, threads, decode_granularity()).map(|(r, _)| r)
}

/// [`decompress_parallel`] with an explicit morsel granularity, returning
/// per-worker work accounting alongside the result.
pub fn decompress_parallel_stats(
    compressed: &CompressedRelation,
    cfg: &Config,
    threads: usize,
    granularity: Granularity,
) -> Result<(Relation, ParallelStats)> {
    let (items, costs) = decode_items(compressed);
    let (results, stats) = run_morsels(
        &costs,
        granularity,
        threads,
        // lint: allow(indexing) run_morsels only passes i < items.len()
        |i| decompress_item(compressed, cfg, &items[i]),
        |i| match items.get(i) {
            Some(it) => format!("column {} block {}", it.col, it.blk),
            None => format!("work item {i}"),
        },
    );
    let rel = assemble_decompressed(compressed, &items, results)?;
    Ok((rel, stats))
}

/// Runs `work(i)` for every `i in 0..n` on up to `threads` workers with
/// unit costs and single-item morsels — the pre-morsel fan-out shape, kept
/// for the panic-labelling contract tests.
#[cfg(test)]
fn for_each_labeled<T: Send>(
    n: usize,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
    describe: impl Fn(usize) -> String,
) -> Vec<T> {
    let costs = vec![1u64; n];
    run_morsels(&costs, Granularity::single_item(), threads, work, describe).0
}

/// [`for_each_labeled`] with the classic per-column labelling.
#[cfg(test)]
fn for_each_indexed<T: Send>(
    n: usize,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    for_each_labeled(n, threads, work, |i| format!("column {i}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColumnData, StringArena};

    fn sample(rows: usize) -> Relation {
        let strings: Vec<String> = (0..rows).map(|i| format!("p{}", i % 31)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        Relation::new(vec![
            Column::new("a", ColumnData::Int((0..rows as i32).collect())),
            Column::new("b", ColumnData::Double((0..rows).map(|i| i as f64 * 0.5).collect())),
            Column::new("c", ColumnData::Str(StringArena::from_strs(&refs))),
            Column::new("d", ColumnData::Int(vec![9; rows])),
        ])
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = Config::default();
        let rel = sample(5_000);
        let seq = crate::relation::compress(&rel, &cfg).unwrap();
        for threads in [1, 2, 8] {
            let par = compress_parallel(&rel, &cfg, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
            let restored = decompress_parallel(&par, &cfg, threads).unwrap();
            assert_eq!(restored, rel);
        }
    }

    #[test]
    fn parallel_handles_empty_relation() {
        let cfg = Config::default();
        let rel = Relation::new(vec![]);
        let compressed = compress_parallel(&rel, &cfg, 4).unwrap();
        assert_eq!(decompress_parallel(&compressed, &cfg, 4).unwrap(), rel);
    }

    #[test]
    fn worker_panic_resurfaces_with_column_index() {
        let caught = std::panic::catch_unwind(|| {
            for_each_indexed(6, 3, |i| {
                if i == 4 {
                    panic!("boom in column four");
                }
                i * 2
            })
        })
        .expect_err("the worker panic must propagate to the caller");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic payload carries the formatted message");
        assert!(msg.contains("column 4"), "got: {msg}");
        assert!(msg.contains("boom in column four"), "got: {msg}");
    }

    #[test]
    fn panic_in_one_slot_does_not_lose_other_results() {
        // The panicking index must not prevent later indices assigned to the
        // same worker from completing (the old behaviour killed the thread).
        let completed = std::sync::atomic::AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(|| {
            for_each_indexed(8, 1, |i| {
                assert!(i != 0, "index 0 panics first on the only worker");
                completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                i
            })
        });
        assert!(caught.is_err());
        assert_eq!(
            completed.load(std::sync::atomic::Ordering::Relaxed),
            7,
            "the single worker must survive the panic and finish the queue"
        );
    }

    #[test]
    fn parallel_scratch_decode_is_byte_identical_to_serial() {
        // Worker-local scratch reuse must not perturb a single decoded bit,
        // including NaN payloads and signed zeros that `==` would gloss over.
        let cfg = Config {
            block_size: 512,
            ..Config::default()
        };
        let doubles: Vec<f64> = (0..4_000)
            .map(|i| match i % 5 {
                0 => f64::NAN,
                1 => -0.0,
                2 => i as f64 * 0.125,
                3 => f64::INFINITY,
                _ => -(i as f64),
            })
            .collect();
        let strings: Vec<String> = (0..4_000).map(|i| format!("row-{}", i % 97)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int((0..4_000).map(|i| i % 300).collect())),
            Column::new("d", ColumnData::Double(doubles)),
            Column::new("s", ColumnData::Str(StringArena::from_strs(&refs))),
        ]);
        let compressed = crate::relation::compress(&rel, &cfg).unwrap();
        let serial = crate::relation::decompress_relation(&compressed, &cfg).unwrap();
        for threads in [1, 3, 8] {
            let parallel = decompress_parallel(&compressed, &cfg, threads).unwrap();
            for (a, b) in serial.columns.iter().zip(&parallel.columns) {
                assert_eq!(a.name, b.name);
                match (&a.data, &b.data) {
                    (ColumnData::Int(x), ColumnData::Int(y)) => assert_eq!(x, y),
                    (ColumnData::Double(x), ColumnData::Double(y)) => {
                        assert_eq!(x.len(), y.len());
                        for (u, v) in x.iter().zip(y) {
                            assert_eq!(u.to_bits(), v.to_bits(), "threads = {threads}");
                        }
                    }
                    (ColumnData::Str(x), ColumnData::Str(y)) => {
                        assert_eq!(x.len(), y.len());
                        for i in 0..x.len() {
                            assert_eq!(x.get(i), y.get(i), "threads = {threads}");
                        }
                    }
                    _ => panic!("column type changed between serial and parallel"),
                }
            }
        }
    }

    #[test]
    fn single_column_relation_fans_out_over_blocks() {
        // The whole point of block granularity: one column, many workers.
        // Output must stay byte-identical to serial for every thread count.
        let cfg = Config {
            block_size: 512,
            ..Config::default()
        };
        let rel = Relation::new(vec![Column::new(
            "only",
            ColumnData::Int((0..20_000).map(|i| (i * 37) % 1000).collect()),
        )]);
        let seq = crate::relation::compress(&rel, &cfg).unwrap();
        assert!(seq.columns[0].blocks.len() > 30, "needs many blocks to parallelize");
        for threads in [1, 2, 3, 8] {
            let par = compress_parallel(&rel, &cfg, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn mixed_relation_block_parallel_is_byte_identical() {
        // Uneven column lengths + all three types + an empty column, with a
        // block size that leaves ragged final blocks — across worker counts
        // AND granularities (adaptive, fixed, single-item).
        let cfg = Config {
            block_size: 300,
            ..Config::default()
        };
        let strings: Vec<String> = (0..2_750).map(|i| format!("city-{}", i % 41)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int((0..2_750).map(|i| i % 17).collect())),
            Column::new(
                "d",
                ColumnData::Double((0..2_750).map(|i| (i % 251) as f64 * 0.125).collect()),
            ),
            Column::new("s", ColumnData::Str(StringArena::from_strs(&refs))),
        ]);
        let seq = crate::relation::compress(&rel, &cfg).unwrap();
        let granularities = [
            Granularity::adaptive(256, 4096),
            Granularity::fixed(1024),
            Granularity::single_item(),
        ];
        for threads in [1, 2, 3, 8] {
            for g in granularities {
                let (par, stats) = compress_parallel_stats(&rel, &cfg, threads, g).unwrap();
                assert_eq!(par, seq, "threads = {threads}, granularity = {g:?}");
                assert_eq!(par.to_bytes(), seq.to_bytes(), "threads = {threads}");
                let total = stats.total();
                assert_eq!(total.items as usize, encode_items(&rel, &cfg).len());
            }
        }
        // Empty columns keep their explicit empty block in parallel too.
        let empty = Relation::new(vec![
            Column::new("a", ColumnData::Int(Vec::new())),
            Column::new("b", ColumnData::Str(StringArena::new())),
        ]);
        let seq = crate::relation::compress(&empty, &cfg).unwrap();
        let par = compress_parallel(&empty, &cfg, 4).unwrap();
        assert_eq!(par, seq);
        assert_eq!(par.columns[0].blocks.len(), 1);
    }

    #[test]
    fn block_panic_names_column_and_block() {
        let caught = std::panic::catch_unwind(|| {
            for_each_labeled(
                6,
                2,
                |i| {
                    if i == 3 {
                        panic!("bad block");
                    }
                    i
                },
                |i| format!("column 9 block {i}"),
            )
        })
        .expect_err("the worker panic must propagate to the caller");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic payload carries the formatted message");
        assert!(msg.contains("column 9 block 3"), "got: {msg}");
        assert!(msg.contains("bad block"), "got: {msg}");
    }

    #[test]
    fn corrupt_column_error_propagates() {
        let cfg = Config::default();
        let rel = sample(500);
        let mut compressed = compress_parallel(&rel, &cfg, 2).unwrap();
        compressed.columns[1].blocks[0][0] = 200; // invalid scheme code
        assert!(decompress_parallel(&compressed, &cfg, 2).is_err());
    }

    #[test]
    fn decode_costs_come_from_frame_headers() {
        let cfg = Config {
            block_size: 700,
            ..Config::default()
        };
        let rel = Relation::new(vec![Column::new(
            "v",
            ColumnData::Int((0..2_000).map(|i| i % 5).collect()),
        )]);
        let compressed = crate::relation::compress(&rel, &cfg).unwrap();
        let (items, costs) = decode_items(&compressed);
        assert_eq!(items.len(), 3, "2000 rows at block_size 700 is 3 blocks");
        assert_eq!(costs, vec![700, 700, 600], "costs are rows of output");
    }

    /// xorshift64* — deterministic pseudo-random stream for the matrix test
    /// (the workspace is hermetic: no proptest crate, so the randomized
    /// matrix is hand-rolled with a fixed seed).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn random_relation(rng: &mut Rng, single_column: bool) -> Relation {
        let n_cols = if single_column { 1 } else { 2 + rng.below(3) as usize };
        let rows = rng.below(3_000) as usize;
        let mut columns = Vec::new();
        for c in 0..n_cols {
            let data = match rng.below(3) {
                0 => ColumnData::Int((0..rows).map(|_| rng.below(500) as i32 - 250).collect()),
                1 => ColumnData::Double(
                    (0..rows).map(|_| rng.below(1 << 20) as f64 * 0.25).collect(),
                ),
                _ => {
                    let strings: Vec<String> =
                        (0..rows).map(|_| format!("s{}", rng.below(200))).collect();
                    let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
                    ColumnData::Str(StringArena::from_strs(&refs))
                }
            };
            columns.push(Column::new(format!("c{c}"), data));
        }
        Relation::new(columns)
    }

    #[test]
    fn morsel_matrix_is_byte_identical_to_serial() {
        // Randomized determinism matrix: workers × granularity × relation
        // shape. Every cell must produce byte-identical compressed output
        // and bit-identical decode vs the serial path.
        let mut rng = Rng(0x5eed_cafe_f00d_0001);
        let cfg = Config {
            block_size: 256,
            ..Config::default()
        };
        for case in 0..6 {
            let single = case % 2 == 0;
            let rel = random_relation(&mut rng, single);
            let seq = crate::relation::compress(&rel, &cfg).unwrap();
            let serial = crate::relation::decompress_relation(&seq, &cfg).unwrap();
            for threads in [1, 2, 3, 8] {
                for g in [Granularity::adaptive(128, 2048), Granularity::fixed(512)] {
                    let (par, _) = compress_parallel_stats(&rel, &cfg, threads, g).unwrap();
                    assert_eq!(
                        par.to_bytes(),
                        seq.to_bytes(),
                        "case {case} threads {threads} g {g:?}"
                    );
                    let (dec, stats) =
                        decompress_parallel_stats(&seq, &cfg, threads, g).unwrap();
                    assert_eq!(dec, serial, "case {case} threads {threads} g {g:?}");
                    let (items, costs) = decode_items(&seq);
                    assert_eq!(stats.total().items as usize, items.len());
                    assert_eq!(stats.total().cost_units, costs.iter().sum::<u64>());
                }
            }
        }
    }
}
