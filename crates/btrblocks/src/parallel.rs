//! Parallel compression and decompression.
//!
//! Blocks are self-contained, which is exactly what makes BtrBlocks easy to
//! parallelize (paper §2.2: "Blocks also facilitate parallelizing compression
//! and decompression"). These helpers fan columns out over a scoped thread
//! pool; results are returned in the original column order regardless of
//! completion order.

use crate::config::Config;
use crate::relation::{
    compress_column, decompress_column_with_scratch, Column, CompressedColumn, CompressedRelation,
    Relation,
};
use crate::scratch::DecodeScratch;
use crate::Result;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Per-worker decode arena: buffers leased while decoding one column are
    /// pooled on the worker thread and reused for every later block it
    /// decodes, so steady-state parallel decompression allocates nothing.
    static DECODE_SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::new());
}

/// Renders a caught panic payload (the `&str`/`String` cases `panic!`
/// produces; anything else becomes a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work(i)` for every `i in 0..n` on up to `threads` workers, storing
/// results in order.
///
/// A panicking `work(i)` is caught on the worker (so it neither poisons the
/// result slots nor kills the thread mid-queue — the remaining indices still
/// run) and resurfaced on the calling thread as a panic naming the failing
/// column index. When several workers panic, the lowest index wins.
fn for_each_indexed<T: Send>(
    n: usize,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = catch_unwind(AssertUnwindSafe(|| work(i)));
                // lint: allow(indexing) i < n was checked by the break above; slots has n entries
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let filled = s
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker filled slot");
            match filled {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(Box::new(format!(
                    "worker for column {i} panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            }
        })
        .collect()
}

/// Compresses a relation with one worker per column, `threads`-wide.
pub fn compress_parallel(rel: &Relation, cfg: &Config, threads: usize) -> Result<CompressedRelation> {
    let columns: Vec<CompressedColumn> =
        // lint: allow(indexing) for_each_indexed only passes i < columns.len()
        for_each_indexed(rel.columns.len(), threads, |i| compress_column(&rel.columns[i], cfg));
    Ok(CompressedRelation {
        rows: rel.rows() as u64,
        columns,
    })
}

/// Decompresses a relation with one worker per column, `threads`-wide.
pub fn decompress_parallel(
    compressed: &CompressedRelation,
    cfg: &Config,
    threads: usize,
) -> Result<Relation> {
    let results: Vec<Result<Column>> = for_each_indexed(compressed.columns.len(), threads, |i| {
        DECODE_SCRATCH.with(|scratch| {
            // lint: allow(indexing) for_each_indexed only passes i < columns.len()
            decompress_column_with_scratch(&compressed.columns[i], cfg, &mut scratch.borrow_mut())
        })
    });
    let mut columns = Vec::with_capacity(results.len());
    for r in results {
        columns.push(r?);
    }
    Ok(Relation { columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColumnData, StringArena};

    fn sample(rows: usize) -> Relation {
        let strings: Vec<String> = (0..rows).map(|i| format!("p{}", i % 31)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        Relation::new(vec![
            Column::new("a", ColumnData::Int((0..rows as i32).collect())),
            Column::new("b", ColumnData::Double((0..rows).map(|i| i as f64 * 0.5).collect())),
            Column::new("c", ColumnData::Str(StringArena::from_strs(&refs))),
            Column::new("d", ColumnData::Int(vec![9; rows])),
        ])
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = Config::default();
        let rel = sample(5_000);
        let seq = crate::relation::compress(&rel, &cfg).unwrap();
        for threads in [1, 2, 8] {
            let par = compress_parallel(&rel, &cfg, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
            let restored = decompress_parallel(&par, &cfg, threads).unwrap();
            assert_eq!(restored, rel);
        }
    }

    #[test]
    fn parallel_handles_empty_relation() {
        let cfg = Config::default();
        let rel = Relation::new(vec![]);
        let compressed = compress_parallel(&rel, &cfg, 4).unwrap();
        assert_eq!(decompress_parallel(&compressed, &cfg, 4).unwrap(), rel);
    }

    #[test]
    fn worker_panic_resurfaces_with_column_index() {
        let caught = std::panic::catch_unwind(|| {
            for_each_indexed(6, 3, |i| {
                if i == 4 {
                    panic!("boom in column four");
                }
                i * 2
            })
        })
        .expect_err("the worker panic must propagate to the caller");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic payload carries the formatted message");
        assert!(msg.contains("column 4"), "got: {msg}");
        assert!(msg.contains("boom in column four"), "got: {msg}");
    }

    #[test]
    fn panic_in_one_slot_does_not_lose_other_results() {
        // The panicking index must not prevent later indices assigned to the
        // same worker from completing (the old behaviour killed the thread).
        let completed = std::sync::atomic::AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(|| {
            for_each_indexed(8, 1, |i| {
                assert!(i != 0, "index 0 panics first on the only worker");
                completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                i
            })
        });
        assert!(caught.is_err());
        assert_eq!(
            completed.load(std::sync::atomic::Ordering::Relaxed),
            7,
            "the single worker must survive the panic and finish the queue"
        );
    }

    #[test]
    fn parallel_scratch_decode_is_byte_identical_to_serial() {
        // Worker-local scratch reuse must not perturb a single decoded bit,
        // including NaN payloads and signed zeros that `==` would gloss over.
        let cfg = Config {
            block_size: 512,
            ..Config::default()
        };
        let doubles: Vec<f64> = (0..4_000)
            .map(|i| match i % 5 {
                0 => f64::NAN,
                1 => -0.0,
                2 => i as f64 * 0.125,
                3 => f64::INFINITY,
                _ => -(i as f64),
            })
            .collect();
        let strings: Vec<String> = (0..4_000).map(|i| format!("row-{}", i % 97)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        let rel = Relation::new(vec![
            Column::new("i", ColumnData::Int((0..4_000).map(|i| i % 300).collect())),
            Column::new("d", ColumnData::Double(doubles)),
            Column::new("s", ColumnData::Str(StringArena::from_strs(&refs))),
        ]);
        let compressed = crate::relation::compress(&rel, &cfg).unwrap();
        let serial = crate::relation::decompress_relation(&compressed, &cfg).unwrap();
        for threads in [1, 3, 8] {
            let parallel = decompress_parallel(&compressed, &cfg, threads).unwrap();
            for (a, b) in serial.columns.iter().zip(&parallel.columns) {
                assert_eq!(a.name, b.name);
                match (&a.data, &b.data) {
                    (ColumnData::Int(x), ColumnData::Int(y)) => assert_eq!(x, y),
                    (ColumnData::Double(x), ColumnData::Double(y)) => {
                        assert_eq!(x.len(), y.len());
                        for (u, v) in x.iter().zip(y) {
                            assert_eq!(u.to_bits(), v.to_bits(), "threads = {threads}");
                        }
                    }
                    (ColumnData::Str(x), ColumnData::Str(y)) => {
                        assert_eq!(x.len(), y.len());
                        for i in 0..x.len() {
                            assert_eq!(x.get(i), y.get(i), "threads = {threads}");
                        }
                    }
                    _ => panic!("column type changed between serial and parallel"),
                }
            }
        }
    }

    #[test]
    fn corrupt_column_error_propagates() {
        let cfg = Config::default();
        let rel = sample(500);
        let mut compressed = compress_parallel(&rel, &cfg, 2).unwrap();
        compressed.columns[1].blocks[0][0] = 200; // invalid scheme code
        assert!(decompress_parallel(&compressed, &cfg, 2).is_err());
    }
}
