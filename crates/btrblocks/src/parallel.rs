//! Parallel compression and decompression.
//!
//! Blocks are self-contained, which is exactly what makes BtrBlocks easy to
//! parallelize (paper §2.2: "Blocks also facilitate parallelizing compression
//! and decompression"). These helpers fan columns out over a scoped thread
//! pool; results are returned in the original column order regardless of
//! completion order.

use crate::config::Config;
use crate::relation::{
    compress_column, decompress_column, Column, CompressedColumn, CompressedRelation, Relation,
};
use crate::Result;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `work(i)` for every `i in 0..n` on up to `threads` workers, storing
/// results in order.
fn for_each_indexed<T: Send>(
    n: usize,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = work(i);
                *slots[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("poisoned slot").expect("worker filled slot"))
        .collect()
}

/// Compresses a relation with one worker per column, `threads`-wide.
pub fn compress_parallel(rel: &Relation, cfg: &Config, threads: usize) -> Result<CompressedRelation> {
    let columns: Vec<CompressedColumn> =
        for_each_indexed(rel.columns.len(), threads, |i| compress_column(&rel.columns[i], cfg));
    Ok(CompressedRelation {
        rows: rel.rows() as u64,
        columns,
    })
}

/// Decompresses a relation with one worker per column, `threads`-wide.
pub fn decompress_parallel(
    compressed: &CompressedRelation,
    cfg: &Config,
    threads: usize,
) -> Result<Relation> {
    let results: Vec<Result<Column>> = for_each_indexed(compressed.columns.len(), threads, |i| {
        decompress_column(&compressed.columns[i], cfg)
    });
    let mut columns = Vec::with_capacity(results.len());
    for r in results {
        columns.push(r?);
    }
    Ok(Relation { columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColumnData, StringArena};

    fn sample(rows: usize) -> Relation {
        let strings: Vec<String> = (0..rows).map(|i| format!("p{}", i % 31)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        Relation::new(vec![
            Column::new("a", ColumnData::Int((0..rows as i32).collect())),
            Column::new("b", ColumnData::Double((0..rows).map(|i| i as f64 * 0.5).collect())),
            Column::new("c", ColumnData::Str(StringArena::from_strs(&refs))),
            Column::new("d", ColumnData::Int(vec![9; rows])),
        ])
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = Config::default();
        let rel = sample(5_000);
        let seq = crate::relation::compress(&rel, &cfg).unwrap();
        for threads in [1, 2, 8] {
            let par = compress_parallel(&rel, &cfg, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
            let restored = decompress_parallel(&par, &cfg, threads).unwrap();
            assert_eq!(restored, rel);
        }
    }

    #[test]
    fn parallel_handles_empty_relation() {
        let cfg = Config::default();
        let rel = Relation::new(vec![]);
        let compressed = compress_parallel(&rel, &cfg, 4).unwrap();
        assert_eq!(decompress_parallel(&compressed, &cfg, 4).unwrap(), rel);
    }

    #[test]
    fn corrupt_column_error_propagates() {
        let cfg = Config::default();
        let rel = sample(500);
        let mut compressed = compress_parallel(&rel, &cfg, 2).unwrap();
        compressed.columns[1].blocks[0][0] = 200; // invalid scheme code
        assert!(decompress_parallel(&compressed, &cfg, 2).is_err());
    }
}
