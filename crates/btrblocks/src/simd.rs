//! Vectorized decompression kernels (paper §5) with scalar twins.
//!
//! Every kernel exists twice: an AVX2 implementation using the exact tricks
//! the paper describes (splat-store RLE runs that deliberately write past the
//! run end, gather-based dictionary decode) and a scalar implementation used
//! when AVX2 is unavailable or when [`SimdMode::ForceScalar`] is set — the
//! ablation of §6.8.
//!
//! The RLE kernels may write up to [`DECODE_SLACK`] elements past the logical
//! output end; all output vectors are allocated with that much spare
//! capacity and their length is fixed up afterwards, mirroring the paper's
//! "correct the buffer length afterwards" approach (Listing 3).

use crate::config::SimdMode;

/// Elements of over-write slack required after the logical end of RLE output.
pub const DECODE_SLACK: usize = 8;

/// Whether AVX2 kernels should be used under `mode`.
#[inline]
pub fn use_avx2(mode: SimdMode) -> bool {
    match mode {
        SimdMode::ForceScalar => false,
        SimdMode::Auto => avx2_available(),
    }
}

/// Runtime AVX2 detection (cached by the standard library).
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------- RLE decode

/// Decodes RLE runs of i32 into a fresh vector of `total` values.
pub fn rle_decode_i32(values: &[i32], lengths: &[u32], total: usize, mode: SimdMode) -> Vec<i32> {
    let mut out = Vec::new();
    rle_decode_i32_into(values, lengths, total, mode, &mut out);
    out
}

/// Decodes RLE runs of i32 into `out`, clearing it first and reusing its
/// capacity (plus [`DECODE_SLACK`] for the splat-store overshoot).
pub fn rle_decode_i32_into(
    values: &[i32],
    lengths: &[u32],
    total: usize,
    mode: SimdMode,
    out: &mut Vec<i32>,
) {
    debug_assert_eq!(values.len(), lengths.len());
    out.clear();
    out.reserve(total + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: capacity reserved above includes DECODE_SLACK; lengths sum
        // to `total` (validated by the caller).
        unsafe {
            rle_decode_i32_avx2(values, lengths, out.as_mut_ptr());
            out.set_len(total);
        }
        return;
    }
    let _ = mode;
    for (&v, &l) in values.iter().zip(lengths) {
        out.extend(std::iter::repeat_n(v, l as usize));
    }
    debug_assert_eq!(out.len(), total);
}

/// Decodes RLE runs of f64 into a fresh vector of `total` values.
pub fn rle_decode_f64(values: &[f64], lengths: &[u32], total: usize, mode: SimdMode) -> Vec<f64> {
    let mut out = Vec::new();
    rle_decode_f64_into(values, lengths, total, mode, &mut out);
    out
}

/// Decodes RLE runs of f64 into `out`; see [`rle_decode_i32_into`].
pub fn rle_decode_f64_into(
    values: &[f64],
    lengths: &[u32],
    total: usize,
    mode: SimdMode,
    out: &mut Vec<f64>,
) {
    debug_assert_eq!(values.len(), lengths.len());
    out.clear();
    out.reserve(total + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: as above.
        unsafe {
            rle_decode_f64_avx2(values, lengths, out.as_mut_ptr());
            out.set_len(total);
        }
        return;
    }
    let _ = mode;
    for (&v, &l) in values.iter().zip(lengths) {
        out.extend(std::iter::repeat_n(v, l as usize));
    }
    debug_assert_eq!(out.len(), total);
}

/// Decodes RLE runs of u64 (used for fused RLE+Dict string views).
pub fn rle_decode_u64(values: &[u64], lengths: &[u32], total: usize, mode: SimdMode) -> Vec<u64> {
    let mut out = Vec::new();
    rle_decode_u64_into(values, lengths, total, mode, &mut out);
    out
}

/// Decodes RLE runs of u64 into `out`; see [`rle_decode_i32_into`].
pub fn rle_decode_u64_into(
    values: &[u64],
    lengths: &[u32],
    total: usize,
    mode: SimdMode,
    out: &mut Vec<u64>,
) {
    debug_assert_eq!(values.len(), lengths.len());
    out.clear();
    out.reserve(total + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: as above.
        unsafe {
            rle_decode_u64_avx2(values, lengths, out.as_mut_ptr());
            out.set_len(total);
        }
        return;
    }
    let _ = mode;
    for (&v, &l) in values.iter().zip(lengths) {
        out.extend(std::iter::repeat_n(v, l as usize));
    }
    debug_assert_eq!(out.len(), total);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available, that `values.len() ==
// lengths.len()`, and that `out` has capacity for the sum of `lengths` plus
// DECODE_SLACK elements — each splat store may overshoot a run end by up to
// one full vector, and the final run's overshoot lands in the slack.
unsafe fn rle_decode_i32_avx2(values: &[i32], lengths: &[u32], out: *mut i32) {
    use std::arch::x86_64::*;
    let mut dst = out;
    for (&v, &l) in values.iter().zip(lengths) {
        let target = dst.add(l as usize);
        let splat = _mm256_set1_epi32(v);
        // Deliberately overshoot past `target`; the caller reserved slack.
        while dst < target {
            _mm256_storeu_si256(dst as *mut __m256i, splat);
            dst = dst.add(8);
        }
        dst = target;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: same contract as `rle_decode_i32_avx2` (AVX2 present; `out` holds
// sum(lengths) + DECODE_SLACK elements), with 4-wide f64 stores.
unsafe fn rle_decode_f64_avx2(values: &[f64], lengths: &[u32], out: *mut f64) {
    use std::arch::x86_64::*;
    let mut dst = out;
    for (&v, &l) in values.iter().zip(lengths) {
        let target = dst.add(l as usize);
        let splat = _mm256_set1_pd(v);
        while dst < target {
            _mm256_storeu_pd(dst, splat);
            dst = dst.add(4);
        }
        dst = target;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: same contract as `rle_decode_i32_avx2` (AVX2 present; `out` holds
// sum(lengths) + DECODE_SLACK elements), with 4-wide u64 stores.
unsafe fn rle_decode_u64_avx2(values: &[u64], lengths: &[u32], out: *mut u64) {
    use std::arch::x86_64::*;
    let mut dst = out;
    for (&v, &l) in values.iter().zip(lengths) {
        let target = dst.add(l as usize);
        let splat = _mm256_set1_epi64x(v as i64);
        while dst < target {
            _mm256_storeu_si256(dst as *mut __m256i, splat);
            dst = dst.add(4);
        }
        dst = target;
    }
}

// --------------------------------------------------------------- Dict decode

/// Decodes dictionary codes to i32 values: `out[i] = dict[codes[i]]`.
pub fn dict_decode_i32(codes: &[u32], dict: &[i32], mode: SimdMode) -> Vec<i32> {
    let mut out = Vec::new();
    dict_decode_i32_into(codes, dict, mode, &mut out);
    out
}

/// Decodes dictionary codes to i32 values into `out`, clearing it first and
/// reusing its capacity.
pub fn dict_decode_i32_into(codes: &[u32], dict: &[i32], mode: SimdMode, out: &mut Vec<i32>) {
    out.clear();
    out.reserve(codes.len() + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: codes are validated against dict length by the caller.
        unsafe {
            dict_decode_i32_avx2(codes, dict, out.as_mut_ptr());
            out.set_len(codes.len());
        }
        return;
    }
    let _ = mode;
    // lint: allow(indexing) hot path; codes validated < dict.len() by the block decoder
    out.extend(codes.iter().map(|&c| dict[c as usize]));
}

/// Decodes dictionary codes to f64 values.
pub fn dict_decode_f64(codes: &[u32], dict: &[f64], mode: SimdMode) -> Vec<f64> {
    let mut out = Vec::new();
    dict_decode_f64_into(codes, dict, mode, &mut out);
    out
}

/// Decodes dictionary codes to f64 values into `out`; see
/// [`dict_decode_i32_into`].
pub fn dict_decode_f64_into(codes: &[u32], dict: &[f64], mode: SimdMode, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(codes.len() + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: as above.
        unsafe {
            dict_decode_f64_avx2(codes, dict, out.as_mut_ptr());
            out.set_len(codes.len());
        }
        return;
    }
    let _ = mode;
    // lint: allow(indexing) hot path; codes validated < dict.len() by the block decoder
    out.extend(codes.iter().map(|&c| dict[c as usize]));
}

/// Decodes dictionary codes to u64 values (string `(offset, len)` views —
/// the paper's copy-free string dictionary decode).
pub fn dict_decode_u64(codes: &[u32], dict: &[u64], mode: SimdMode) -> Vec<u64> {
    let mut out = Vec::new();
    dict_decode_u64_into(codes, dict, mode, &mut out);
    out
}

/// Decodes dictionary codes to u64 string views into `out`; see
/// [`dict_decode_i32_into`].
pub fn dict_decode_u64_into(codes: &[u32], dict: &[u64], mode: SimdMode, out: &mut Vec<u64>) {
    out.clear();
    out.reserve(codes.len() + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: as above.
        unsafe {
            dict_decode_u64_avx2(codes, dict, out.as_mut_ptr());
            out.set_len(codes.len());
        }
        return;
    }
    let _ = mode;
    // lint: allow(indexing) hot path; codes validated < dict.len() by the block decoder
    out.extend(codes.iter().map(|&c| dict[c as usize]));
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available, every code in `codes` is
// `< dict.len()` (gathers read `dict[code]` unmasked), and `out` has
// capacity for `codes.len()` elements; stores stay within that bound.
unsafe fn dict_decode_i32_avx2(codes: &[u32], dict: &[i32], out: *mut i32) {
    use std::arch::x86_64::*;
    let n = codes.len();
    let mut i = 0usize;
    // Manually 4x-unrolled 8-wide gather, as in Listing 3 (bottom).
    while i + 32 <= n {
        for j in 0..4 {
            let idx = _mm256_loadu_si256(codes.as_ptr().add(i + j * 8) as *const __m256i);
            let vals = _mm256_i32gather_epi32::<4>(dict.as_ptr(), idx);
            _mm256_storeu_si256(out.add(i + j * 8) as *mut __m256i, vals);
        }
        i += 32;
    }
    while i + 8 <= n {
        let idx = _mm256_loadu_si256(codes.as_ptr().add(i) as *const __m256i);
        let vals = _mm256_i32gather_epi32::<4>(dict.as_ptr(), idx);
        _mm256_storeu_si256(out.add(i) as *mut __m256i, vals);
        i += 8;
    }
    while i < n {
        // lint: allow(indexing) i < n = codes.len(); codes validated < dict.len() by caller
        *out.add(i) = dict[codes[i] as usize];
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: same contract as `dict_decode_i32_avx2` (AVX2 present; codes in
// range; `out` holds `codes.len()` elements), 8-byte gather stride.
unsafe fn dict_decode_f64_avx2(codes: &[u32], dict: &[f64], out: *mut f64) {
    use std::arch::x86_64::*;
    let n = codes.len();
    let mut i = 0usize;
    while i + 16 <= n {
        for j in 0..4 {
            let idx = _mm_loadu_si128(codes.as_ptr().add(i + j * 4) as *const __m128i);
            let vals = _mm256_i32gather_pd::<8>(dict.as_ptr(), idx);
            _mm256_storeu_pd(out.add(i + j * 4), vals);
        }
        i += 16;
    }
    while i + 4 <= n {
        let idx = _mm_loadu_si128(codes.as_ptr().add(i) as *const __m128i);
        let vals = _mm256_i32gather_pd::<8>(dict.as_ptr(), idx);
        _mm256_storeu_pd(out.add(i), vals);
        i += 4;
    }
    while i < n {
        // lint: allow(indexing) i < n = codes.len(); codes validated < dict.len() by caller
        *out.add(i) = dict[codes[i] as usize];
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: same contract as `dict_decode_i32_avx2` (AVX2 present; codes in
// range; `out` holds `codes.len()` elements), 8-byte gather stride.
unsafe fn dict_decode_u64_avx2(codes: &[u32], dict: &[u64], out: *mut u64) {
    use std::arch::x86_64::*;
    let n = codes.len();
    let mut i = 0usize;
    while i + 4 <= n {
        let idx = _mm_loadu_si128(codes.as_ptr().add(i) as *const __m128i);
        let vals = _mm256_i32gather_epi64::<8>(dict.as_ptr() as *const i64, idx);
        _mm256_storeu_si256(out.add(i) as *mut __m256i, vals);
        i += 4;
    }
    while i < n {
        // lint: allow(indexing) i < n = codes.len(); codes validated < dict.len() by caller
        *out.add(i) = dict[codes[i] as usize];
        i += 1;
    }
}

// ------------------------------------------------ Frequency fill + patch

/// Fills `out` with `count` copies of `value`, clearing it first (the
/// Frequency scheme's "everything is the top value" base layer). The AVX2
/// path splat-stores 8-wide and may overshoot into [`DECODE_SLACK`].
pub fn fill_i32(value: i32, count: usize, mode: SimdMode, out: &mut Vec<i32>) {
    out.clear();
    out.reserve(count + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: capacity reserved above includes DECODE_SLACK, so the
        // 8-wide splat stores may overshoot `count` by up to one vector.
        unsafe {
            let dst = out.as_mut_ptr();
            use std::arch::x86_64::*;
            let splat = _mm256_set1_epi32(value);
            let mut i = 0usize;
            while i < count {
                _mm256_storeu_si256(dst.add(i) as *mut __m256i, splat);
                i += 8;
            }
            out.set_len(count);
        }
        return;
    }
    let _ = mode;
    out.resize(count, value);
}

/// Fills `out` with `count` copies of `value`; see [`fill_i32`].
pub fn fill_f64(value: f64, count: usize, mode: SimdMode, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(count + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: as in `fill_i32`, with 4-wide f64 stores overshooting into
        // the DECODE_SLACK reserve.
        unsafe {
            let dst = out.as_mut_ptr();
            use std::arch::x86_64::*;
            let splat = _mm256_set1_pd(value);
            let mut i = 0usize;
            while i < count {
                _mm256_storeu_pd(dst.add(i), splat);
                i += 4;
            }
            out.set_len(count);
        }
        return;
    }
    let _ = mode;
    out.resize(count, value);
}

/// Validates that every position is `< limit`: the range check of the
/// Frequency scheme's exception patch, vectorized as an 8-wide unsigned max
/// reduction instead of a branch per element.
pub fn positions_in_range(positions: &[u32], limit: usize, mode: SimdMode) -> bool {
    if positions.is_empty() {
        return true;
    }
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: positions is non-empty; reads stay within the slice
        // (8-wide body, scalar tail), no writes.
        let max = unsafe { max_u32_avx2(positions) };
        return (max as usize) < limit;
    }
    let _ = mode;
    let max = positions.iter().copied().max().unwrap_or(0);
    (max as usize) < limit
}

/// Applies Frequency exceptions: `out[positions[i]] = values[i]`. Returns
/// `false` (writing nothing) if any position is out of range — the caller
/// maps that to a corruption error. With a vectorized range check up front,
/// the patch loop itself needs no per-element branch.
pub fn patch_i32(out: &mut [i32], positions: &[u32], values: &[i32], mode: SimdMode) -> bool {
    debug_assert_eq!(positions.len(), values.len());
    if !positions_in_range(positions, out.len(), mode) {
        return false;
    }
    for (&pos, &v) in positions.iter().zip(values) {
        // lint: allow(indexing) every position was range-checked above
        out[pos as usize] = v;
    }
    true
}

/// Applies Frequency exceptions for f64; see [`patch_i32`].
pub fn patch_f64(out: &mut [f64], positions: &[u32], values: &[f64], mode: SimdMode) -> bool {
    debug_assert_eq!(positions.len(), values.len());
    if !positions_in_range(positions, out.len(), mode) {
        return false;
    }
    for (&pos, &v) in positions.iter().zip(values) {
        // lint: allow(indexing) every position was range-checked above
        out[pos as usize] = v;
    }
    true
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available and `values` is non-empty;
// all reads stay within `values` (8-wide body, scalar tail), no writes.
unsafe fn max_u32_avx2(values: &[u32]) -> u32 {
    use std::arch::x86_64::*;
    let n = values.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i);
        acc = _mm256_max_epu32(acc, v);
        i += 8;
    }
    let mut lanes = [0u32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut max = lanes.iter().copied().max().unwrap_or(0);
    while i < n {
        max = max.max(*values.get_unchecked(i));
        i += 1;
    }
    max
}

// ---------------------------------------------------------- Zone-map min/max

/// Min/max over an i32 slice (zone-map construction); `None` when empty.
pub fn minmax_i32(values: &[i32], mode: SimdMode) -> Option<(i32, i32)> {
    if values.is_empty() {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: values is non-empty; reads stay within the slice.
        return Some(unsafe { minmax_i32_avx2(values) });
    }
    let _ = mode;
    let mut min = i32::MAX;
    let mut max = i32::MIN;
    for &x in values {
        min = min.min(x);
        max = max.max(x);
    }
    Some((min, max))
}

/// NaN-aware min/max over an f64 slice (zone-map construction): returns
/// `(min, max, has_nan)` over the non-NaN values, with the
/// `(INFINITY, NEG_INFINITY)` identity when every value is NaN or the slice
/// is empty (callers detect that as `min > max`).
pub fn minmax_f64(values: &[f64], mode: SimdMode) -> (f64, f64, bool) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) && !values.is_empty() {
        // SAFETY: values is non-empty; reads stay within the slice.
        return unsafe { minmax_f64_avx2(values) };
    }
    let _ = mode;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut has_nan = false;
    for &x in values {
        if x.is_nan() {
            has_nan = true;
        } else {
            min = min.min(x);
            max = max.max(x);
        }
    }
    (min, max, has_nan)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available and `values` is non-empty;
// all reads stay within `values` (8-wide body, scalar tail), no writes.
unsafe fn minmax_i32_avx2(values: &[i32]) -> (i32, i32) {
    use std::arch::x86_64::*;
    let n = values.len();
    let mut vmin = _mm256_set1_epi32(i32::MAX);
    let mut vmax = _mm256_set1_epi32(i32::MIN);
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i);
        vmin = _mm256_min_epi32(vmin, v);
        vmax = _mm256_max_epi32(vmax, v);
        i += 8;
    }
    let mut lo = [0i32; 8];
    let mut hi = [0i32; 8];
    _mm256_storeu_si256(lo.as_mut_ptr() as *mut __m256i, vmin);
    _mm256_storeu_si256(hi.as_mut_ptr() as *mut __m256i, vmax);
    let mut min = lo.iter().copied().min().unwrap_or(i32::MAX);
    let mut max = hi.iter().copied().max().unwrap_or(i32::MIN);
    while i < n {
        let x = *values.get_unchecked(i);
        min = min.min(x);
        max = max.max(x);
        i += 1;
    }
    (min, max)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available and `values` is non-empty;
// all reads stay within `values` (4-wide body, scalar tail), no writes.
unsafe fn minmax_f64_avx2(values: &[f64]) -> (f64, f64, bool) {
    use std::arch::x86_64::*;
    let n = values.len();
    let pos_inf = _mm256_set1_pd(f64::INFINITY);
    let neg_inf = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut vmin = pos_inf;
    let mut vmax = neg_inf;
    let mut vnan = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 4 <= n {
        let v = _mm256_loadu_pd(values.as_ptr().add(i));
        // NaN lanes are masked to the min/max identities so they never
        // poison the accumulators, but they do set the NaN flag.
        let nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(v, v);
        vnan = _mm256_or_pd(vnan, nan);
        vmin = _mm256_min_pd(vmin, _mm256_blendv_pd(v, pos_inf, nan));
        vmax = _mm256_max_pd(vmax, _mm256_blendv_pd(v, neg_inf, nan));
        i += 4;
    }
    let mut lo = [0f64; 4];
    let mut hi = [0f64; 4];
    _mm256_storeu_pd(lo.as_mut_ptr(), vmin);
    _mm256_storeu_pd(hi.as_mut_ptr(), vmax);
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for l in lo {
        min = min.min(l);
    }
    for h in hi {
        max = max.max(h);
    }
    let mut has_nan = _mm256_movemask_pd(vnan) != 0;
    while i < n {
        let x = *values.get_unchecked(i);
        if x.is_nan() {
            has_nan = true;
        } else {
            min = min.min(x);
            max = max.max(x);
        }
        i += 1;
    }
    (min, max, has_nan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_modes() -> Vec<SimdMode> {
        vec![SimdMode::Auto, SimdMode::ForceScalar]
    }

    #[test]
    fn rle_i32_both_paths_match() {
        let values = vec![5, -3, 7, 0, 123];
        let lengths = vec![1u32, 13, 8, 3, 100];
        let total: usize = lengths.iter().map(|&l| l as usize).sum();
        let mut expected = Vec::new();
        for (&v, &l) in values.iter().zip(&lengths) {
            expected.extend(std::iter::repeat_n(v, l as usize));
        }
        for mode in both_modes() {
            assert_eq!(rle_decode_i32(&values, &lengths, total, mode), expected);
        }
    }

    #[test]
    fn rle_f64_both_paths_match() {
        let values = vec![1.5, -2.25, 0.0];
        let lengths = vec![7u32, 1, 22];
        let total = 30usize;
        let mut expected = Vec::new();
        for (&v, &l) in values.iter().zip(&lengths) {
            expected.extend(std::iter::repeat_n(v, l as usize));
        }
        for mode in both_modes() {
            assert_eq!(rle_decode_f64(&values, &lengths, total, mode), expected);
        }
    }

    #[test]
    fn rle_empty_runs() {
        for mode in both_modes() {
            assert!(rle_decode_i32(&[], &[], 0, mode).is_empty());
            // Zero-length runs are legal and contribute nothing.
            assert_eq!(rle_decode_i32(&[9, 8], &[0, 2], 2, mode), vec![8, 8]);
        }
    }

    #[test]
    fn dict_decode_both_paths_match() {
        let dict_i: Vec<i32> = (0..100).map(|i| i * 7 - 50).collect();
        let dict_f: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
        let dict_u: Vec<u64> = (0..100).map(|i| (i as u64) << 32 | 0xABC).collect();
        let codes: Vec<u32> = (0..1000).map(|i| (i * 37) % 100).collect();
        for mode in both_modes() {
            let out = dict_decode_i32(&codes, &dict_i, mode);
            assert!(codes.iter().zip(&out).all(|(&c, &o)| dict_i[c as usize] == o));
            let out = dict_decode_f64(&codes, &dict_f, mode);
            assert!(codes.iter().zip(&out).all(|(&c, &o)| dict_f[c as usize] == o));
            let out = dict_decode_u64(&codes, &dict_u, mode);
            assert!(codes.iter().zip(&out).all(|(&c, &o)| dict_u[c as usize] == o));
        }
    }

    #[test]
    fn dict_decode_tail_lengths() {
        // Exercise every remainder vs the unrolled widths.
        let dict: Vec<i32> = (0..16).collect();
        for n in 0..70usize {
            let codes: Vec<u32> = (0..n as u32).map(|i| i % 16).collect();
            for mode in both_modes() {
                let out = dict_decode_i32(&codes, &dict, mode);
                assert_eq!(out.len(), n);
                assert!(codes.iter().zip(&out).all(|(&c, &o)| dict[c as usize] == o));
            }
        }
    }

    #[test]
    fn into_variants_clear_dirty_buffers() {
        let values = vec![5, -3];
        let lengths = vec![3u32, 2];
        let dict: Vec<i32> = (0..8).collect();
        let codes = vec![3u32, 0, 7];
        for mode in both_modes() {
            let mut out = vec![42; 17];
            rle_decode_i32_into(&values, &lengths, 5, mode, &mut out);
            assert_eq!(out, vec![5, 5, 5, -3, -3]);
            let mut out = vec![-1; 100];
            dict_decode_i32_into(&codes, &dict, mode, &mut out);
            assert_eq!(out, vec![3, 0, 7]);
        }
    }

    #[test]
    fn fill_both_paths_match_including_dirty_out() {
        for mode in both_modes() {
            for count in [0usize, 1, 7, 8, 9, 63, 64, 100] {
                let mut out = vec![99i32; 5]; // dirty buffer must be cleared
                fill_i32(-42, count, mode, &mut out);
                assert_eq!(out, vec![-42; count], "mode {mode:?} count {count}");
                let mut out = vec![3.5f64; 11];
                fill_f64(0.25, count, mode, &mut out);
                assert_eq!(out, vec![0.25; count], "mode {mode:?} count {count}");
            }
        }
    }

    #[test]
    fn patch_both_paths_match() {
        for mode in both_modes() {
            let mut base = vec![7i32; 50];
            let positions: Vec<u32> = vec![0, 3, 8, 17, 31, 49];
            let values: Vec<i32> = vec![-1, -2, -3, -4, -5, -6];
            assert!(patch_i32(&mut base, &positions, &values, mode));
            let mut expected = vec![7i32; 50];
            for (&p, &v) in positions.iter().zip(&values) {
                expected[p as usize] = v;
            }
            assert_eq!(base, expected, "mode {mode:?}");

            let mut based = vec![1.0f64; 20];
            assert!(patch_f64(&mut based, &[2, 19], &[f64::NAN, -0.0], mode));
            assert!(based[2].is_nan());
            assert_eq!(based[19].to_bits(), (-0.0f64).to_bits());
        }
    }

    #[test]
    fn patch_rejects_out_of_range_without_writing() {
        for mode in both_modes() {
            let mut base = vec![7i32; 10];
            // One in-range position followed by an out-of-range one: the
            // whole patch must be refused with no partial writes.
            assert!(!patch_i32(&mut base, &[1, 10], &[5, 6], mode));
            assert_eq!(base, vec![7; 10], "mode {mode:?} must not partially patch");
            let mut based = vec![0.0f64; 4];
            assert!(!patch_f64(&mut based, &[4], &[1.0], mode));
            assert_eq!(based, vec![0.0; 4]);
            // Empty patch always succeeds, even on an empty output.
            assert!(patch_i32(&mut [], &[], &[], mode));
        }
    }

    #[test]
    fn positions_in_range_tail_lengths() {
        for mode in both_modes() {
            for n in 0..40usize {
                let positions: Vec<u32> = (0..n as u32).collect();
                assert!(positions_in_range(&positions, n.max(1), mode));
                if n > 0 {
                    assert!(!positions_in_range(&positions, n - 1, mode), "n = {n}");
                }
            }
        }
    }

    #[test]
    fn minmax_i32_both_paths_match() {
        for mode in both_modes() {
            assert_eq!(minmax_i32(&[], mode), None);
            assert_eq!(minmax_i32(&[5], mode), Some((5, 5)));
            for n in [1usize, 7, 8, 9, 33, 100] {
                let values: Vec<i32> = (0..n as i32).map(|i| (i * 37 % 91) - 45).collect();
                let min = values.iter().copied().min().unwrap();
                let max = values.iter().copied().max().unwrap();
                assert_eq!(minmax_i32(&values, mode), Some((min, max)), "mode {mode:?} n {n}");
            }
            assert_eq!(minmax_i32(&[i32::MIN, i32::MAX], mode), Some((i32::MIN, i32::MAX)));
        }
    }

    #[test]
    fn minmax_f64_is_nan_aware_on_both_paths() {
        for mode in both_modes() {
            let (min, max, nan) = minmax_f64(&[], mode);
            assert!(min > max && !nan, "empty slice yields the fold identity");
            let (min, max, nan) = minmax_f64(&[f64::NAN, f64::NAN, f64::NAN], mode);
            assert!(min > max && nan, "all-NaN yields identity plus the flag");
            let values = [3.0, f64::NAN, -7.5, 0.0, f64::NAN, 11.25, -0.0];
            let (min, max, nan) = minmax_f64(&values, mode);
            assert_eq!((min, max), (-7.5, 11.25), "mode {mode:?}");
            assert!(nan);
            // NaN in the scalar tail (length not a multiple of 4) counts too.
            let values = [1.0, 2.0, 3.0, 4.0, f64::NAN];
            let (min, max, nan) = minmax_f64(&values, mode);
            assert_eq!((min, max), (1.0, 4.0));
            assert!(nan, "tail NaN must set the flag under mode {mode:?}");
            let (min, max, nan) = minmax_f64(&[f64::INFINITY, f64::NEG_INFINITY], mode);
            assert_eq!((min, max), (f64::NEG_INFINITY, f64::INFINITY));
            assert!(!nan);
        }
    }

    #[test]
    fn u64_rle_both_paths_match() {
        let values = vec![u64::MAX, 1, 0x1234_5678_9ABC_DEF0];
        let lengths = vec![3u32, 9, 2];
        let mut expected = Vec::new();
        for (&v, &l) in values.iter().zip(&lengths) {
            expected.extend(std::iter::repeat_n(v, l as usize));
        }
        for mode in both_modes() {
            assert_eq!(rle_decode_u64(&values, &lengths, 14, mode), expected);
        }
    }
}
