//! Vectorized decompression kernels (paper §5) with scalar twins.
//!
//! Every kernel exists twice: an AVX2 implementation using the exact tricks
//! the paper describes (splat-store RLE runs that deliberately write past the
//! run end, gather-based dictionary decode) and a scalar implementation used
//! when AVX2 is unavailable or when [`SimdMode::ForceScalar`] is set — the
//! ablation of §6.8.
//!
//! The RLE kernels may write up to [`DECODE_SLACK`] elements past the logical
//! output end; all output vectors are allocated with that much spare
//! capacity and their length is fixed up afterwards, mirroring the paper's
//! "correct the buffer length afterwards" approach (Listing 3).

use crate::config::SimdMode;

/// Elements of over-write slack required after the logical end of RLE output.
pub const DECODE_SLACK: usize = 8;

/// Whether AVX2 kernels should be used under `mode`.
#[inline]
pub fn use_avx2(mode: SimdMode) -> bool {
    match mode {
        SimdMode::ForceScalar => false,
        SimdMode::Auto => avx2_available(),
    }
}

/// Runtime AVX2 detection (cached by the standard library).
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------- RLE decode

/// Decodes RLE runs of i32 into a fresh vector of `total` values.
pub fn rle_decode_i32(values: &[i32], lengths: &[u32], total: usize, mode: SimdMode) -> Vec<i32> {
    let mut out = Vec::new();
    rle_decode_i32_into(values, lengths, total, mode, &mut out);
    out
}

/// Decodes RLE runs of i32 into `out`, clearing it first and reusing its
/// capacity (plus [`DECODE_SLACK`] for the splat-store overshoot).
pub fn rle_decode_i32_into(
    values: &[i32],
    lengths: &[u32],
    total: usize,
    mode: SimdMode,
    out: &mut Vec<i32>,
) {
    debug_assert_eq!(values.len(), lengths.len());
    out.clear();
    out.reserve(total + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: capacity reserved above includes DECODE_SLACK; lengths sum
        // to `total` (validated by the caller).
        unsafe {
            rle_decode_i32_avx2(values, lengths, out.as_mut_ptr());
            out.set_len(total);
        }
        return;
    }
    let _ = mode;
    for (&v, &l) in values.iter().zip(lengths) {
        out.extend(std::iter::repeat_n(v, l as usize));
    }
    debug_assert_eq!(out.len(), total);
}

/// Decodes RLE runs of f64 into a fresh vector of `total` values.
pub fn rle_decode_f64(values: &[f64], lengths: &[u32], total: usize, mode: SimdMode) -> Vec<f64> {
    let mut out = Vec::new();
    rle_decode_f64_into(values, lengths, total, mode, &mut out);
    out
}

/// Decodes RLE runs of f64 into `out`; see [`rle_decode_i32_into`].
pub fn rle_decode_f64_into(
    values: &[f64],
    lengths: &[u32],
    total: usize,
    mode: SimdMode,
    out: &mut Vec<f64>,
) {
    debug_assert_eq!(values.len(), lengths.len());
    out.clear();
    out.reserve(total + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: as above.
        unsafe {
            rle_decode_f64_avx2(values, lengths, out.as_mut_ptr());
            out.set_len(total);
        }
        return;
    }
    let _ = mode;
    for (&v, &l) in values.iter().zip(lengths) {
        out.extend(std::iter::repeat_n(v, l as usize));
    }
    debug_assert_eq!(out.len(), total);
}

/// Decodes RLE runs of u64 (used for fused RLE+Dict string views).
pub fn rle_decode_u64(values: &[u64], lengths: &[u32], total: usize, mode: SimdMode) -> Vec<u64> {
    let mut out = Vec::new();
    rle_decode_u64_into(values, lengths, total, mode, &mut out);
    out
}

/// Decodes RLE runs of u64 into `out`; see [`rle_decode_i32_into`].
pub fn rle_decode_u64_into(
    values: &[u64],
    lengths: &[u32],
    total: usize,
    mode: SimdMode,
    out: &mut Vec<u64>,
) {
    debug_assert_eq!(values.len(), lengths.len());
    out.clear();
    out.reserve(total + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: as above.
        unsafe {
            rle_decode_u64_avx2(values, lengths, out.as_mut_ptr());
            out.set_len(total);
        }
        return;
    }
    let _ = mode;
    for (&v, &l) in values.iter().zip(lengths) {
        out.extend(std::iter::repeat_n(v, l as usize));
    }
    debug_assert_eq!(out.len(), total);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available, that `values.len() ==
// lengths.len()`, and that `out` has capacity for the sum of `lengths` plus
// DECODE_SLACK elements — each splat store may overshoot a run end by up to
// one full vector, and the final run's overshoot lands in the slack.
unsafe fn rle_decode_i32_avx2(values: &[i32], lengths: &[u32], out: *mut i32) {
    use std::arch::x86_64::*;
    let mut dst = out;
    for (&v, &l) in values.iter().zip(lengths) {
        let target = dst.add(l as usize);
        let splat = _mm256_set1_epi32(v);
        // Deliberately overshoot past `target`; the caller reserved slack.
        while dst < target {
            _mm256_storeu_si256(dst as *mut __m256i, splat);
            dst = dst.add(8);
        }
        dst = target;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: same contract as `rle_decode_i32_avx2` (AVX2 present; `out` holds
// sum(lengths) + DECODE_SLACK elements), with 4-wide f64 stores.
unsafe fn rle_decode_f64_avx2(values: &[f64], lengths: &[u32], out: *mut f64) {
    use std::arch::x86_64::*;
    let mut dst = out;
    for (&v, &l) in values.iter().zip(lengths) {
        let target = dst.add(l as usize);
        let splat = _mm256_set1_pd(v);
        while dst < target {
            _mm256_storeu_pd(dst, splat);
            dst = dst.add(4);
        }
        dst = target;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: same contract as `rle_decode_i32_avx2` (AVX2 present; `out` holds
// sum(lengths) + DECODE_SLACK elements), with 4-wide u64 stores.
unsafe fn rle_decode_u64_avx2(values: &[u64], lengths: &[u32], out: *mut u64) {
    use std::arch::x86_64::*;
    let mut dst = out;
    for (&v, &l) in values.iter().zip(lengths) {
        let target = dst.add(l as usize);
        let splat = _mm256_set1_epi64x(v as i64);
        while dst < target {
            _mm256_storeu_si256(dst as *mut __m256i, splat);
            dst = dst.add(4);
        }
        dst = target;
    }
}

// --------------------------------------------------------------- Dict decode

/// Decodes dictionary codes to i32 values: `out[i] = dict[codes[i]]`.
pub fn dict_decode_i32(codes: &[u32], dict: &[i32], mode: SimdMode) -> Vec<i32> {
    let mut out = Vec::new();
    dict_decode_i32_into(codes, dict, mode, &mut out);
    out
}

/// Decodes dictionary codes to i32 values into `out`, clearing it first and
/// reusing its capacity.
pub fn dict_decode_i32_into(codes: &[u32], dict: &[i32], mode: SimdMode, out: &mut Vec<i32>) {
    out.clear();
    out.reserve(codes.len() + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: codes are validated against dict length by the caller.
        unsafe {
            dict_decode_i32_avx2(codes, dict, out.as_mut_ptr());
            out.set_len(codes.len());
        }
        return;
    }
    let _ = mode;
    // lint: allow(indexing) hot path; codes validated < dict.len() by the block decoder
    out.extend(codes.iter().map(|&c| dict[c as usize]));
}

/// Decodes dictionary codes to f64 values.
pub fn dict_decode_f64(codes: &[u32], dict: &[f64], mode: SimdMode) -> Vec<f64> {
    let mut out = Vec::new();
    dict_decode_f64_into(codes, dict, mode, &mut out);
    out
}

/// Decodes dictionary codes to f64 values into `out`; see
/// [`dict_decode_i32_into`].
pub fn dict_decode_f64_into(codes: &[u32], dict: &[f64], mode: SimdMode, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(codes.len() + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: as above.
        unsafe {
            dict_decode_f64_avx2(codes, dict, out.as_mut_ptr());
            out.set_len(codes.len());
        }
        return;
    }
    let _ = mode;
    // lint: allow(indexing) hot path; codes validated < dict.len() by the block decoder
    out.extend(codes.iter().map(|&c| dict[c as usize]));
}

/// Decodes dictionary codes to u64 values (string `(offset, len)` views —
/// the paper's copy-free string dictionary decode).
pub fn dict_decode_u64(codes: &[u32], dict: &[u64], mode: SimdMode) -> Vec<u64> {
    let mut out = Vec::new();
    dict_decode_u64_into(codes, dict, mode, &mut out);
    out
}

/// Decodes dictionary codes to u64 string views into `out`; see
/// [`dict_decode_i32_into`].
pub fn dict_decode_u64_into(codes: &[u32], dict: &[u64], mode: SimdMode, out: &mut Vec<u64>) {
    out.clear();
    out.reserve(codes.len() + DECODE_SLACK);
    #[cfg(target_arch = "x86_64")]
    if use_avx2(mode) {
        // SAFETY: as above.
        unsafe {
            dict_decode_u64_avx2(codes, dict, out.as_mut_ptr());
            out.set_len(codes.len());
        }
        return;
    }
    let _ = mode;
    // lint: allow(indexing) hot path; codes validated < dict.len() by the block decoder
    out.extend(codes.iter().map(|&c| dict[c as usize]));
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 is available, every code in `codes` is
// `< dict.len()` (gathers read `dict[code]` unmasked), and `out` has
// capacity for `codes.len()` elements; stores stay within that bound.
unsafe fn dict_decode_i32_avx2(codes: &[u32], dict: &[i32], out: *mut i32) {
    use std::arch::x86_64::*;
    let n = codes.len();
    let mut i = 0usize;
    // Manually 4x-unrolled 8-wide gather, as in Listing 3 (bottom).
    while i + 32 <= n {
        for j in 0..4 {
            let idx = _mm256_loadu_si256(codes.as_ptr().add(i + j * 8) as *const __m256i);
            let vals = _mm256_i32gather_epi32::<4>(dict.as_ptr(), idx);
            _mm256_storeu_si256(out.add(i + j * 8) as *mut __m256i, vals);
        }
        i += 32;
    }
    while i + 8 <= n {
        let idx = _mm256_loadu_si256(codes.as_ptr().add(i) as *const __m256i);
        let vals = _mm256_i32gather_epi32::<4>(dict.as_ptr(), idx);
        _mm256_storeu_si256(out.add(i) as *mut __m256i, vals);
        i += 8;
    }
    while i < n {
        // lint: allow(indexing) i < n = codes.len(); codes validated < dict.len() by caller
        *out.add(i) = dict[codes[i] as usize];
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: same contract as `dict_decode_i32_avx2` (AVX2 present; codes in
// range; `out` holds `codes.len()` elements), 8-byte gather stride.
unsafe fn dict_decode_f64_avx2(codes: &[u32], dict: &[f64], out: *mut f64) {
    use std::arch::x86_64::*;
    let n = codes.len();
    let mut i = 0usize;
    while i + 16 <= n {
        for j in 0..4 {
            let idx = _mm_loadu_si128(codes.as_ptr().add(i + j * 4) as *const __m128i);
            let vals = _mm256_i32gather_pd::<8>(dict.as_ptr(), idx);
            _mm256_storeu_pd(out.add(i + j * 4), vals);
        }
        i += 16;
    }
    while i + 4 <= n {
        let idx = _mm_loadu_si128(codes.as_ptr().add(i) as *const __m128i);
        let vals = _mm256_i32gather_pd::<8>(dict.as_ptr(), idx);
        _mm256_storeu_pd(out.add(i), vals);
        i += 4;
    }
    while i < n {
        // lint: allow(indexing) i < n = codes.len(); codes validated < dict.len() by caller
        *out.add(i) = dict[codes[i] as usize];
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: same contract as `dict_decode_i32_avx2` (AVX2 present; codes in
// range; `out` holds `codes.len()` elements), 8-byte gather stride.
unsafe fn dict_decode_u64_avx2(codes: &[u32], dict: &[u64], out: *mut u64) {
    use std::arch::x86_64::*;
    let n = codes.len();
    let mut i = 0usize;
    while i + 4 <= n {
        let idx = _mm_loadu_si128(codes.as_ptr().add(i) as *const __m128i);
        let vals = _mm256_i32gather_epi64::<8>(dict.as_ptr() as *const i64, idx);
        _mm256_storeu_si256(out.add(i) as *mut __m256i, vals);
        i += 4;
    }
    while i < n {
        // lint: allow(indexing) i < n = codes.len(); codes validated < dict.len() by caller
        *out.add(i) = dict[codes[i] as usize];
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_modes() -> Vec<SimdMode> {
        vec![SimdMode::Auto, SimdMode::ForceScalar]
    }

    #[test]
    fn rle_i32_both_paths_match() {
        let values = vec![5, -3, 7, 0, 123];
        let lengths = vec![1u32, 13, 8, 3, 100];
        let total: usize = lengths.iter().map(|&l| l as usize).sum();
        let mut expected = Vec::new();
        for (&v, &l) in values.iter().zip(&lengths) {
            expected.extend(std::iter::repeat_n(v, l as usize));
        }
        for mode in both_modes() {
            assert_eq!(rle_decode_i32(&values, &lengths, total, mode), expected);
        }
    }

    #[test]
    fn rle_f64_both_paths_match() {
        let values = vec![1.5, -2.25, 0.0];
        let lengths = vec![7u32, 1, 22];
        let total = 30usize;
        let mut expected = Vec::new();
        for (&v, &l) in values.iter().zip(&lengths) {
            expected.extend(std::iter::repeat_n(v, l as usize));
        }
        for mode in both_modes() {
            assert_eq!(rle_decode_f64(&values, &lengths, total, mode), expected);
        }
    }

    #[test]
    fn rle_empty_runs() {
        for mode in both_modes() {
            assert!(rle_decode_i32(&[], &[], 0, mode).is_empty());
            // Zero-length runs are legal and contribute nothing.
            assert_eq!(rle_decode_i32(&[9, 8], &[0, 2], 2, mode), vec![8, 8]);
        }
    }

    #[test]
    fn dict_decode_both_paths_match() {
        let dict_i: Vec<i32> = (0..100).map(|i| i * 7 - 50).collect();
        let dict_f: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
        let dict_u: Vec<u64> = (0..100).map(|i| (i as u64) << 32 | 0xABC).collect();
        let codes: Vec<u32> = (0..1000).map(|i| (i * 37) % 100).collect();
        for mode in both_modes() {
            let out = dict_decode_i32(&codes, &dict_i, mode);
            assert!(codes.iter().zip(&out).all(|(&c, &o)| dict_i[c as usize] == o));
            let out = dict_decode_f64(&codes, &dict_f, mode);
            assert!(codes.iter().zip(&out).all(|(&c, &o)| dict_f[c as usize] == o));
            let out = dict_decode_u64(&codes, &dict_u, mode);
            assert!(codes.iter().zip(&out).all(|(&c, &o)| dict_u[c as usize] == o));
        }
    }

    #[test]
    fn dict_decode_tail_lengths() {
        // Exercise every remainder vs the unrolled widths.
        let dict: Vec<i32> = (0..16).collect();
        for n in 0..70usize {
            let codes: Vec<u32> = (0..n as u32).map(|i| i % 16).collect();
            for mode in both_modes() {
                let out = dict_decode_i32(&codes, &dict, mode);
                assert_eq!(out.len(), n);
                assert!(codes.iter().zip(&out).all(|(&c, &o)| dict[c as usize] == o));
            }
        }
    }

    #[test]
    fn into_variants_clear_dirty_buffers() {
        let values = vec![5, -3];
        let lengths = vec![3u32, 2];
        let dict: Vec<i32> = (0..8).collect();
        let codes = vec![3u32, 0, 7];
        for mode in both_modes() {
            let mut out = vec![42; 17];
            rle_decode_i32_into(&values, &lengths, 5, mode, &mut out);
            assert_eq!(out, vec![5, 5, 5, -3, -3]);
            let mut out = vec![-1; 100];
            dict_decode_i32_into(&codes, &dict, mode, &mut out);
            assert_eq!(out, vec![3, 0, 7]);
        }
    }

    #[test]
    fn u64_rle_both_paths_match() {
        let values = vec![u64::MAX, 1, 0x1234_5678_9ABC_DEF0];
        let lengths = vec![3u32, 9, 2];
        let mut expected = Vec::new();
        for (&v, &l) in values.iter().zip(&lengths) {
            expected.extend(std::iter::repeat_n(v, l as usize));
        }
        for mode in both_modes() {
            assert_eq!(rle_decode_u64(&values, &lengths, 14, mode), expected);
        }
    }
}
