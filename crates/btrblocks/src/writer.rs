//! Little-endian byte reading/writing helpers for the block format.
//!
//! [`Reader`] is public because the per-scheme `decompress` entry points take
//! it; typical users go through [`crate::decompress`] instead.

use crate::{Error, Result};

/// Appends primitives to a byte buffer.
pub trait WriteLe {
    fn put_u8(&mut self, v: u8);
    fn put_u32(&mut self, v: u32);
    fn put_i32(&mut self, v: i32);
    fn put_f64(&mut self, v: f64);
    fn put_u32_slice(&mut self, v: &[u32]);
    fn put_i32_slice(&mut self, v: &[i32]);
    fn put_f64_slice(&mut self, v: &[f64]);
}

impl WriteLe for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_i32(&mut self, v: i32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f64(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_slice(&mut self, v: &[u32]) {
        self.reserve(v.len() * 4);
        for &x in v {
            self.extend_from_slice(&x.to_le_bytes());
        }
    }

    fn put_i32_slice(&mut self, v: &[i32]) {
        self.reserve(v.len() * 4);
        for &x in v {
            self.extend_from_slice(&x.to_le_bytes());
        }
    }

    fn put_f64_slice(&mut self, v: &[f64]) {
        self.reserve(v.len() * 8);
        for &x in v {
            self.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// A cursor over encoded bytes with bounds-checked reads.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        // Checked add: a hostile length close to usize::MAX must not wrap
        // around and alias an in-bounds range.
        let end = self.pos.checked_add(n).ok_or(Error::UnexpectedEnd)?;
        if end > self.buf.len() {
            return Err(Error::UnexpectedEnd);
        }
        // lint: allow(indexing) end was bounds-checked against buf.len() above
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a fixed-size array; length mismatch is impossible after `take`.
    #[inline]
    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?.try_into().map_err(|_| Error::UnexpectedEnd)
    }

    /// Bytes left between the cursor and the end of the buffer.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(u8::from_le_bytes(self.array::<1>()?))
    }

    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.array::<2>()?))
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    pub fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.array::<4>()?))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array::<8>()?))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn u32_vec(&mut self, count: usize) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        self.u32_vec_into(count, &mut out)?;
        Ok(out)
    }

    pub fn i32_vec(&mut self, count: usize) -> Result<Vec<i32>> {
        let mut out = Vec::new();
        self.i32_vec_into(count, &mut out)?;
        Ok(out)
    }

    pub fn f64_vec(&mut self, count: usize) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.f64_vec_into(count, &mut out)?;
        Ok(out)
    }

    /// Reads `count` little-endian u32s into `out`, clearing it first.
    /// Reuses `out`'s existing capacity — the zero-allocation decode path's
    /// primitive reader. `out` is left empty on error.
    pub fn u32_vec_into(&mut self, count: usize, out: &mut Vec<u32>) -> Result<()> {
        out.clear();
        let bytes = count.checked_mul(4).ok_or(Error::UnexpectedEnd)?;
        let raw = self.take(bytes)?;
        out.reserve(count);
        out.extend(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap_or_default())),
        );
        Ok(())
    }

    /// Reads `count` little-endian i32s into `out`; see [`Self::u32_vec_into`].
    pub fn i32_vec_into(&mut self, count: usize, out: &mut Vec<i32>) -> Result<()> {
        out.clear();
        let bytes = count.checked_mul(4).ok_or(Error::UnexpectedEnd)?;
        let raw = self.take(bytes)?;
        out.reserve(count);
        out.extend(
            raw.chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().unwrap_or_default())),
        );
        Ok(())
    }

    /// Reads `count` little-endian f64s into `out`; see [`Self::u32_vec_into`].
    pub fn f64_vec_into(&mut self, count: usize, out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        let bytes = count.checked_mul(8).ok_or(Error::UnexpectedEnd)?;
        let raw = self.take(bytes)?;
        out.reserve(count);
        out.extend(
            raw.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap_or_default())),
        );
        Ok(())
    }

    /// Remaining unread bytes.
    pub fn rest(&self) -> &'a [u8] {
        // lint: allow(indexing) pos never exceeds buf.len() (see take)
        &self.buf[self.pos..]
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Advances the cursor by `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32(123_456);
        buf.put_i32(-99);
        buf.put_f64(2.5);
        buf.put_i32_slice(&[1, -2, 3]);
        buf.put_f64_slice(&[0.5, -0.5]);
        buf.put_u32_slice(&[10, 20]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.i32().unwrap(), -99);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.i32_vec(3).unwrap(), vec![1, -2, 3]);
        assert_eq!(r.f64_vec(2).unwrap(), vec![0.5, -0.5]);
        assert_eq!(r.u32_vec(2).unwrap(), vec![10, 20]);
        assert!(r.rest().is_empty());
    }

    #[test]
    fn vec_into_clears_dirty_buffers() {
        let mut buf = Vec::new();
        buf.put_i32_slice(&[4, 5]);
        let mut out = vec![9, 9, 9, 9];
        let mut r = Reader::new(&buf);
        r.i32_vec_into(2, &mut out).unwrap();
        assert_eq!(out, vec![4, 5]);
        // Error paths leave the buffer empty, never with stale garbage.
        let mut r = Reader::new(&buf);
        let mut out = vec![9, 9];
        assert!(r.i32_vec_into(3, &mut out).is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn reads_past_end_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.i32_vec(1).is_err());
    }
}
