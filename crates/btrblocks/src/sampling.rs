//! Sampling for compression-ratio estimation (paper §3.1, Figure 2).
//!
//! The sample must balance two needs: preserving *spatial locality* (so RLE
//! and FSST see realistic runs/substrings) and covering the *whole value
//! range* of the block (so dictionaries and Frequency see true cardinality).
//! BtrBlocks therefore draws several short runs from non-overlapping parts of
//! the block: the block is divided into `runs` equal parts and one
//! `run_len`-value window is taken from a pseudo-random position inside each
//! part.
//!
//! Randomness is a small deterministic xorshift seeded per block, keeping
//! compression reproducible without a RNG dependency.

use crate::types::StringArena;

/// A deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a generator; a zero seed is replaced with a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Returns `(start, len)` windows for a sample of `runs` runs of `run_len`
/// values over a block of `n` values.
///
/// The block is split into `runs` non-overlapping parts; each part
/// contributes one window at a pseudo-random offset. Small blocks degrade
/// gracefully: if `n` is at most the total sample size, the entire block is
/// returned as a single window (sampling would not save any work).
pub fn sample_ranges(n: usize, runs: usize, run_len: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    sample_ranges_into(n, runs, run_len, seed, &mut out);
    out
}

/// [`sample_ranges`] writing into a caller-owned vector (cleared first) so
/// the selection loop can reuse one ranges buffer across candidate trials
/// and cascade levels.
pub fn sample_ranges_into(
    n: usize,
    runs: usize,
    run_len: usize,
    seed: u64,
    out: &mut Vec<(usize, usize)>,
) {
    out.clear();
    let total = runs * run_len;
    if n == 0 {
        return;
    }
    if n <= total || runs == 0 || run_len == 0 {
        out.push((0, n));
        return;
    }
    let part = n / runs;
    let mut rng = XorShift::new(seed ^ n as u64);
    for r in 0..runs {
        let part_start = r * part;
        let part_len = if r == runs - 1 { n - part_start } else { part };
        let max_off = part_len.saturating_sub(run_len);
        let off = rng.below(max_off + 1);
        out.push((part_start + off, run_len));
    }
}

/// Gathers sampled integers.
pub fn gather_int(values: &[i32], ranges: &[(usize, usize)]) -> Vec<i32> {
    let mut out = Vec::with_capacity(ranges.iter().map(|&(_, l)| l).sum());
    gather_int_into(values, ranges, &mut out);
    out
}

/// [`gather_int`] into a caller-owned buffer (cleared first).
pub fn gather_int_into(values: &[i32], ranges: &[(usize, usize)], out: &mut Vec<i32>) {
    out.clear();
    for &(start, len) in ranges {
        // lint: allow(indexing) sample_ranges only yields in-bounds ranges
        out.extend_from_slice(&values[start..start + len]);
    }
}

/// Gathers sampled doubles.
pub fn gather_double(values: &[f64], ranges: &[(usize, usize)]) -> Vec<f64> {
    let mut out = Vec::with_capacity(ranges.iter().map(|&(_, l)| l).sum());
    gather_double_into(values, ranges, &mut out);
    out
}

/// [`gather_double`] into a caller-owned buffer (cleared first).
pub fn gather_double_into(values: &[f64], ranges: &[(usize, usize)], out: &mut Vec<f64>) {
    out.clear();
    for &(start, len) in ranges {
        // lint: allow(indexing) sample_ranges only yields in-bounds ranges
        out.extend_from_slice(&values[start..start + len]);
    }
}

/// Gathers sampled strings.
pub fn gather_str(arena: &StringArena, ranges: &[(usize, usize)]) -> StringArena {
    let mut out = StringArena::new();
    gather_str_into(arena, ranges, &mut out);
    out
}

/// [`gather_str`] into a caller-owned arena (cleared first) — the encode
/// path leases one arena per worker instead of allocating a fresh
/// [`StringArena`] for every block's sample.
pub fn gather_str_into(arena: &StringArena, ranges: &[(usize, usize)], out: &mut StringArena) {
    arena.gather_into(
        ranges
            .iter()
            .flat_map(|&(start, len)| start..start + len),
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sampling_is_one_percent() {
        let ranges = sample_ranges(64_000, 10, 64, 42);
        assert_eq!(ranges.len(), 10);
        let total: usize = ranges.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 640);
    }

    #[test]
    fn ranges_are_non_overlapping_and_in_bounds() {
        let n = 64_000;
        let ranges = sample_ranges(n, 10, 64, 7);
        for w in ranges.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
        }
        for &(s, l) in &ranges {
            assert!(s + l <= n);
        }
    }

    #[test]
    fn small_blocks_return_everything() {
        assert_eq!(sample_ranges(100, 10, 64, 1), vec![(0, 100)]);
        assert_eq!(sample_ranges(640, 10, 64, 1), vec![(0, 640)]);
        assert!(sample_ranges(0, 10, 64, 1).is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(sample_ranges(64_000, 10, 64, 5), sample_ranges(64_000, 10, 64, 5));
        assert_ne!(sample_ranges(64_000, 10, 64, 5), sample_ranges(64_000, 10, 64, 6));
    }

    #[test]
    fn gather_pulls_correct_values() {
        let values: Vec<i32> = (0..1000).collect();
        let ranges = vec![(10, 3), (500, 2)];
        assert_eq!(gather_int(&values, &ranges), vec![10, 11, 12, 500, 501]);
        let doubles: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(gather_double(&doubles, &ranges), vec![10.0, 11.0, 12.0, 500.0, 501.0]);
    }

    #[test]
    fn gather_strings() {
        let arena = StringArena::from_strs(&["a", "b", "c", "d", "e"]);
        let sampled = gather_str(&arena, &[(1, 2), (4, 1)]);
        assert_eq!(sampled.get(0), b"b");
        assert_eq!(sampled.get(1), b"c");
        assert_eq!(sampled.get(2), b"e");
    }

    #[test]
    fn extreme_strategies_from_figure5() {
        // 640 single-tuple runs.
        let singles = sample_ranges(64_000, 640, 1, 3);
        assert_eq!(singles.len(), 640);
        assert!(singles.iter().all(|&(_, l)| l == 1));
        // One contiguous 640-tuple range.
        let single_range = sample_ranges(64_000, 1, 640, 3);
        assert_eq!(single_range.len(), 1);
        assert_eq!(single_range[0].1, 640);
    }
}
