//! Back-compat facade for predicate evaluation on compressed blocks.
//!
//! The actual machinery moved when the vectorized expression engine
//! (crate `btr-expr`) was extracted:
//!
//! * the predicate vocabulary ([`CmpOp`], [`Literal`]) lives in
//!   [`crate::types`] next to the column model it describes;
//! * the per-scheme compressed-domain kernels ([`filter_block`],
//!   [`filter_decoded`], [`has_fast_path`]) live in
//!   [`crate::scheme::filter`] next to the schemes they exploit.
//!
//! Everything this module ever exported is re-exported here unchanged, so
//! `btrblocks::query::*` call sites keep compiling.

pub use crate::scheme::filter::{filter_block, filter_decoded, has_fast_path};
pub use crate::types::{CmpOp, Literal};
