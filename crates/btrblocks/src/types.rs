//! Column data model: typed columns, the string arena, NULL bitmaps.

use btr_roaring::RoaringBitmap;

/// The three column types BtrBlocks compresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 32-bit signed integers.
    Integer,
    /// 64-bit IEEE 754 doubles.
    Double,
    /// Variable-length byte strings.
    String,
}

impl ColumnType {
    /// Tag byte used in the serialized format.
    pub(crate) fn tag(self) -> u8 {
        match self {
            ColumnType::Integer => 0,
            ColumnType::Double => 1,
            ColumnType::String => 2,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ColumnType::Integer),
            1 => Some(ColumnType::Double),
            2 => Some(ColumnType::String),
            _ => None,
        }
    }
}

/// Variable-length strings stored as one byte pool plus offsets.
///
/// `offsets` has `len + 1` entries; string `i` is
/// `bytes[offsets[i] .. offsets[i + 1]]`. This layout (rather than
/// `Vec<String>`) is what allows decompression to hand out string *views*
/// without copying — the optimization the paper credits with >10× speedups on
/// low-cardinality string columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringArena {
    /// Concatenated string bytes.
    pub bytes: Vec<u8>,
    /// Start offsets; `offsets[len]` equals `bytes.len()`.
    pub offsets: Vec<u32>,
}

impl StringArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        StringArena {
            bytes: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Creates an arena with reserved capacity.
    pub fn with_capacity(strings: usize, bytes: usize) -> Self {
        let mut offsets = Vec::with_capacity(strings + 1);
        offsets.push(0);
        StringArena {
            bytes: Vec::with_capacity(bytes),
            offsets,
        }
    }

    /// Builds an arena from string slices.
    pub fn from_strs<S: AsRef<[u8]>>(strings: &[S]) -> Self {
        let total: usize = strings.iter().map(|s| s.as_ref().len()).sum();
        let mut arena = StringArena::with_capacity(strings.len(), total);
        for s in strings {
            arena.push(s.as_ref());
        }
        arena
    }

    /// Appends one string.
    pub fn push(&mut self, s: &[u8]) {
        self.bytes.extend_from_slice(s);
        // lint: allow(cast) encode side: arena pools are far smaller than 4 GiB
        self.offsets.push(self.bytes.len() as u32);
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the arena holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns string `i` as a byte slice.
    #[inline]
    pub fn get(&self, i: usize) -> &[u8] {
        // lint: allow(indexing) arena invariant: offsets are monotone and end at bytes.len()
        &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Length in bytes of string `i`.
    #[inline]
    pub fn str_len(&self, i: usize) -> usize {
        // lint: allow(indexing) arena invariant: offsets has len()+1 entries
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates all strings.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Uncompressed in-memory size (bytes + offsets), the numerator of every
    /// compression-ratio computation for strings.
    pub fn heap_size(&self) -> usize {
        self.bytes.len() + self.offsets.len() * 4
    }

    /// Returns a sub-arena with the strings at `indices` (used by sampling).
    pub fn gather(&self, indices: impl Iterator<Item = usize>) -> StringArena {
        let mut out = StringArena::new();
        self.gather_into(indices, &mut out);
        out
    }

    /// [`gather`](Self::gather) into a caller-owned arena (cleared first),
    /// so block slicing and sample gathers can reuse a leased arena.
    pub fn gather_into(&self, indices: impl Iterator<Item = usize>, out: &mut StringArena) {
        out.clear();
        for i in indices {
            out.push(self.get(i));
        }
    }

    /// Empties the arena, keeping both buffers' capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Bytes of backing capacity (bytes pool + offsets), used by the encode
    /// scratch arena to charge pooled arenas against its byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.bytes.capacity() + self.offsets.capacity() * 4
    }
}

/// Typed column values (without NULL information).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 32-bit integers.
    Int(Vec<i32>),
    /// 64-bit doubles.
    Double(Vec<f64>),
    /// Variable-length strings.
    Str(StringArena),
}

impl ColumnData {
    /// The column's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::Int(_) => ColumnType::Integer,
            ColumnData::Double(_) => ColumnType::Double,
            ColumnData::Str(_) => ColumnType::String,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(a) => a.len(),
        }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Uncompressed in-memory size in bytes (the paper's "binary format").
    pub fn heap_size(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len() * 4,
            ColumnData::Double(v) => v.len() * 8,
            ColumnData::Str(a) => a.heap_size(),
        }
    }
}

/// Decompressed strings as `(offset, length)` views into a shared pool.
///
/// This is the paper's copy-free string decompression (§5): a dictionary
/// block decodes each code to a fixed-size 64-bit `(offset, len)` tuple
/// pointing into the dictionary's pool instead of copying string bytes. The
/// views are *not* necessarily contiguous or ordered within the pool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringViews {
    /// Byte pool the views point into.
    pub pool: Vec<u8>,
    /// Per-string `(offset << 32) | length` packed views.
    pub views: Vec<u64>,
}

impl StringViews {
    /// Packs an `(offset, len)` pair into a view word.
    #[inline]
    pub fn pack(offset: u32, len: u32) -> u64 {
        (u64::from(offset) << 32) | u64::from(len)
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether there are no strings.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Returns string `i` as a byte slice.
    #[inline]
    pub fn get(&self, i: usize) -> &[u8] {
        // lint: allow(indexing) views invariant: every view was validated against the pool at decode time
        let v = self.views[i];
        let off = (v >> 32) as usize;
        let len = (v & 0xFFFF_FFFF) as usize;
        // lint: allow(indexing) views invariant: every view was validated against the pool at decode time
        &self.pool[off..off + len]
    }

    /// Iterates all strings.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Materializes into a contiguous [`StringArena`] (copies bytes).
    pub fn to_arena(&self) -> StringArena {
        let total: usize = self
            .views
            .iter()
            .map(|&v| (v & 0xFFFF_FFFF) as usize)
            .sum();
        let mut arena = StringArena::with_capacity(self.len(), total);
        for i in 0..self.len() {
            arena.push(self.get(i));
        }
        arena
    }

    /// Builds views over an arena's pool (sequential layout).
    pub fn from_arena(arena: &StringArena) -> StringViews {
        let views = (0..arena.len())
            // lint: allow(indexing) arena invariant: offsets has len()+1 entries
            .map(|i| StringViews::pack(arena.offsets[i], arena.offsets[i + 1] - arena.offsets[i]))
            .collect();
        StringViews {
            pool: arena.bytes.clone(),
            views,
        }
    }
}

/// A decompressed column block, as handed back to scan consumers.
///
/// Strings come back as views into one pool — no per-string copies were made
/// during decompression.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedColumn {
    /// 32-bit integers.
    Int(Vec<i32>),
    /// 64-bit doubles.
    Double(Vec<f64>),
    /// Strings as a pool + views.
    Str(StringViews),
}

impl DecodedColumn {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            DecodedColumn::Int(v) => v.len(),
            DecodedColumn::Double(v) => v.len(),
            DecodedColumn::Str(a) => a.len(),
        }
    }

    /// Whether the block holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column type this decoded block holds.
    pub fn column_type(&self) -> ColumnType {
        match self {
            DecodedColumn::Int(_) => ColumnType::Integer,
            DecodedColumn::Double(_) => ColumnType::Double,
            DecodedColumn::Str(_) => ColumnType::String,
        }
    }

    /// Converts into owned [`ColumnData`] (materializes string views).
    pub fn into_column_data(self) -> ColumnData {
        match self {
            DecodedColumn::Int(v) => ColumnData::Int(v),
            DecodedColumn::Double(v) => ColumnData::Double(v),
            DecodedColumn::Str(v) => ColumnData::Str(v.to_arena()),
        }
    }
}

/// NULL positions for one column block.
pub type NullBitmap = RoaringBitmap;

/// Comparison operator of a pushed-down predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `value == literal`
    Eq,
    /// `value < literal`
    Lt,
    /// `value <= literal`
    Le,
    /// `value > literal`
    Gt,
    /// `value >= literal`
    Ge,
}

impl CmpOp {
    /// Whether `value op literal` holds (`PartialOrd`; NaN never matches).
    #[inline]
    pub fn matches<T: PartialOrd>(self, value: &T, literal: &T) -> bool {
        match self {
            CmpOp::Eq => value == literal,
            CmpOp::Lt => value < literal,
            CmpOp::Le => value <= literal,
            CmpOp::Gt => value > literal,
            CmpOp::Ge => value >= literal,
        }
    }

    /// The operator with its operands swapped: `a op b == b op.flip() a`.
    /// Used when normalizing `literal op column` comparisons into the
    /// canonical `column op literal` form.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// A typed predicate literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i32),
    /// Double literal (compared by `PartialOrd`; NaN never matches).
    Double(f64),
    /// String literal (byte-wise comparison).
    Str(Vec<u8>),
}

impl Literal {
    /// The column type this literal compares against.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Literal::Int(_) => ColumnType::Integer,
            Literal::Double(_) => ColumnType::Double,
            Literal::Str(_) => ColumnType::String,
        }
    }
}

impl From<i32> for Literal {
    fn from(v: i32) -> Literal {
        Literal::Int(v)
    }
}

impl From<f64> for Literal {
    fn from(v: f64) -> Literal {
        Literal::Double(v)
    }
}

impl From<&str> for Literal {
    fn from(v: &str) -> Literal {
        Literal::Str(v.as_bytes().to_vec())
    }
}

impl From<&[u8]> for Literal {
    fn from(v: &[u8]) -> Literal {
        Literal::Str(v.to_vec())
    }
}

impl From<Vec<u8>> for Literal {
    fn from(v: Vec<u8>) -> Literal {
        Literal::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_roundtrip() {
        let arena = StringArena::from_strs(&["hello", "", "world", "Maceió"]);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.get(0), b"hello");
        assert_eq!(arena.get(1), b"");
        assert_eq!(arena.get(2), b"world");
        assert_eq!(arena.get(3), "Maceió".as_bytes());
        assert_eq!(arena.str_len(3), 7);
        assert_eq!(arena.iter().count(), 4);
    }

    #[test]
    fn arena_gather() {
        let arena = StringArena::from_strs(&["a", "bb", "ccc", "dddd"]);
        let sub = arena.gather([3usize, 1].into_iter());
        assert_eq!(sub.get(0), b"dddd");
        assert_eq!(sub.get(1), b"bb");
    }

    #[test]
    fn empty_arena() {
        let arena = StringArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.heap_size(), 4);
    }

    #[test]
    fn column_data_sizes() {
        assert_eq!(ColumnData::Int(vec![1, 2, 3]).heap_size(), 12);
        assert_eq!(ColumnData::Double(vec![1.0]).heap_size(), 8);
        let s = ColumnData::Str(StringArena::from_strs(&["ab", "c"]));
        assert_eq!(s.heap_size(), 3 + 3 * 4);
    }

    #[test]
    fn type_tags_roundtrip() {
        for t in [ColumnType::Integer, ColumnType::Double, ColumnType::String] {
            assert_eq!(ColumnType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(ColumnType::from_tag(9), None);
    }
}
