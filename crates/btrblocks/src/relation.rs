//! Relation-level API: columns, block splitting, and the file format.
//!
//! Following the paper's design position (§2.1), the format is deliberately
//! minimal: it is *only* compressed blocks plus the little framing needed to
//! find them. Statistics, zone maps and indexes are orthogonal concerns that
//! belong outside the data file.
//!
//! # Format v2 (current) — checksummed
//!
//! Data-lake files live on object stores and cross many networks and disks;
//! v2 adds end-to-end corruption detection so a flipped bit is reported as a
//! checksum error *before* any scheme decoder runs on the damaged bytes.
//!
//! File layout (little-endian):
//! ```text
//! magic "BTRB" | version: u32 = 2 | row_count: u64 | column_count: u32
//! per column:
//!   name_len: u16 | name bytes | type tag: u8
//!   null_len: u32 | roaring NULL bitmap (0 length = no NULLs)
//!   block_count: u32
//!   per block: byte_len: u32 | crc32c: u32 | block bytes
//! footer: crc32c: u32   (CRC32C of every byte before the footer)
//! ```
//!
//! Two checksum layers, both CRC32C ([`crate::crc32c`]):
//!
//! - **per column part**: each block carries the CRC of its payload. On
//!   read it is verified before the block's scheme byte is even inspected;
//!   a mismatch is reported as [`Error::ChecksumMismatch`] with the column
//!   and part index, which lets a reader re-fetch just that part.
//! - **whole file**: the footer CRC covers the complete file body. It
//!   catches corruption in the framing itself (names, counts, lengths, the
//!   NULL bitmaps) and any trailing garbage; a mismatch that cannot be
//!   localized to a part is [`Error::FileChecksumMismatch`].
//!
//! Version-1 files (no checksums, `byte_len | block bytes`, no footer) are
//! still read transparently; [`CompressedRelation::to_bytes_v1`] writes the
//! legacy layout for interop. All length/count fields parsed from the wire
//! are capped against the bytes actually remaining, so a corrupt count can
//! never trigger an oversized allocation.

use crate::block::{self, BlockRef};
use crate::config::Config;
use crate::crc32c::crc32c;
use crate::scheme::SchemeCode;
use crate::scratch::{DecodeScratch, EncodeScratch};
use crate::types::{ColumnData, ColumnType, DecodedColumn, StringArena};
use crate::writer::{Reader, WriteLe};
use crate::{Error, Result};
use btr_roaring::RoaringBitmap;

const MAGIC: &[u8; 4] = b"BTRB";
const VERSION_V1: u32 = 1;
const VERSION: u32 = 2;

/// A named, typed column with optional NULLs.
///
/// NULL positions are tracked in a Roaring bitmap; the value slots at NULL
/// positions still exist and should hold a neutral value (0 / 0.0 / "") so
/// they compress away.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Values.
    pub data: ColumnData,
    /// NULL positions, if any.
    pub nulls: Option<RoaringBitmap>,
}

impl Column {
    /// A column without NULLs.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
            nulls: None,
        }
    }

    /// A column with a NULL bitmap.
    pub fn with_nulls(name: impl Into<String>, data: ColumnData, nulls: RoaringBitmap) -> Self {
        Column {
            name: name.into(),
            data,
            nulls: Some(nulls),
        }
    }

    /// Builds an integer column from optional values. NULL slots become `0`
    /// so they compress away; positions go into the Roaring bitmap (the
    /// paper's NULL representation).
    pub fn from_int_options(name: impl Into<String>, values: &[Option<i32>]) -> Self {
        let nulls = RoaringBitmap::from_sorted_iter(
            values
                .iter()
                .enumerate()
                // lint: allow(cast) row index: columns are in-memory Vecs well under u32::MAX rows
                .filter_map(|(i, v)| v.is_none().then_some(i as u32)),
        );
        let data = ColumnData::Int(values.iter().map(|v| v.unwrap_or(0)).collect());
        if nulls.is_empty() {
            Column::new(name, data)
        } else {
            Column::with_nulls(name, data, nulls)
        }
    }

    /// Builds a double column from optional values (NULL slots become `0.0`).
    pub fn from_double_options(name: impl Into<String>, values: &[Option<f64>]) -> Self {
        let nulls = RoaringBitmap::from_sorted_iter(
            values
                .iter()
                .enumerate()
                // lint: allow(cast) row index: columns are in-memory Vecs well under u32::MAX rows
                .filter_map(|(i, v)| v.is_none().then_some(i as u32)),
        );
        let data = ColumnData::Double(values.iter().map(|v| v.unwrap_or(0.0)).collect());
        if nulls.is_empty() {
            Column::new(name, data)
        } else {
            Column::with_nulls(name, data, nulls)
        }
    }

    /// Builds a string column from optional values (NULL slots become `""`).
    pub fn from_str_options(name: impl Into<String>, values: &[Option<&str>]) -> Self {
        let nulls = RoaringBitmap::from_sorted_iter(
            values
                .iter()
                .enumerate()
                // lint: allow(cast) row index: columns are in-memory Vecs well under u32::MAX rows
                .filter_map(|(i, v)| v.is_none().then_some(i as u32)),
        );
        let mut arena = StringArena::new();
        for v in values {
            arena.push(v.unwrap_or("").as_bytes());
        }
        let data = ColumnData::Str(arena);
        if nulls.is_empty() {
            Column::new(name, data)
        } else {
            Column::with_nulls(name, data, nulls)
        }
    }

    /// Returns `true` when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        // lint: allow(cast) row index: columns are in-memory Vecs well under u32::MAX rows
        self.nulls.as_ref().is_some_and(|b| b.contains(i as u32))
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.nulls.as_ref().map_or(0, |b| b.cardinality() as usize)
    }
}

/// A set of equal-length columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// The columns.
    pub columns: Vec<Column>,
}

impl Relation {
    /// Builds a relation, asserting equal column lengths.
    pub fn new(columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            let n = first.data.len();
            assert!(
                columns.iter().all(|c| c.data.len() == n),
                "all columns must have equal length"
            );
        }
        Relation { columns }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.data.len())
    }

    /// Total uncompressed size in bytes.
    pub fn heap_size(&self) -> usize {
        self.columns.iter().map(|c| c.data.heap_size()).sum()
    }
}

/// One compressed column: independent blocks plus the NULL bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedColumn {
    /// Column name.
    pub name: String,
    /// Column type.
    pub column_type: ColumnType,
    /// Serialized NULL bitmap (empty = no NULLs).
    pub nulls: Vec<u8>,
    /// Independent compressed blocks.
    pub blocks: Vec<Vec<u8>>,
    /// Root scheme chosen per block (not serialized; introspection only).
    pub schemes: Vec<SchemeCode>,
}

impl CompressedColumn {
    /// Compressed size in bytes (blocks + per-part checksums + null bitmap
    /// + framing), matching the v2 on-disk layout.
    pub fn compressed_size(&self) -> usize {
        self.blocks.iter().map(|b| b.len() + 8).sum::<usize>() + self.nulls.len() + 16
    }
}

/// A compressed relation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedRelation {
    /// Row count.
    pub rows: u64,
    /// Compressed columns.
    pub columns: Vec<CompressedColumn>,
}

/// Byte range of one block's payload inside the v2 single-file layout, plus
/// the CRC32C the framing stores for it. Produced by
/// [`CompressedRelation::block_byte_ranges`]; lets a reader fetch and verify
/// a single block with one ranged GET instead of downloading the whole file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRange {
    /// Offset of the block payload from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC32C of the payload (the same value the v2 framing stores).
    pub crc32c: u32,
}

impl CompressedRelation {
    /// Total compressed size in bytes, including framing and the footer.
    pub fn compressed_size(&self) -> usize {
        self.columns.iter().map(|c| c.compressed_size()).sum::<usize>() + 16 + 4
    }

    /// Exact serialized length of [`CompressedRelation::to_bytes`] output.
    pub fn file_len(&self) -> u64 {
        let mut len = 4 + 4 + 8 + 4u64; // magic | version | rows | column_count
        for col in &self.columns {
            len += 2 + col.name.len() as u64 + 1 + 4 + col.nulls.len() as u64 + 4;
            len += col.blocks.iter().map(|b| 8 + b.len() as u64).sum::<u64>();
        }
        len + 4 // footer CRC
    }

    /// Byte ranges of every block payload within the v2 file written by
    /// [`CompressedRelation::to_bytes`], per column in file order.
    ///
    /// This is the export hook for selective scans: a planner that prunes
    /// blocks via a zone-map sidecar can fetch only the surviving payloads
    /// with ranged GETs and verify each against its CRC, never touching the
    /// rest of the file.
    pub fn block_byte_ranges(&self) -> Vec<Vec<BlockRange>> {
        let mut pos = 4 + 4 + 8 + 4u64; // magic | version | rows | column_count
        self.columns
            .iter()
            .map(|col| {
                pos += 2 + col.name.len() as u64 + 1 + 4 + col.nulls.len() as u64 + 4;
                col.blocks
                    .iter()
                    .map(|b| {
                        pos += 8; // byte_len u32 | crc32c u32
                        let r = BlockRange {
                            offset: pos,
                            // lint: allow(cast) encode side: a block is far smaller than 4 GiB
                            len: b.len() as u32,
                            crc32c: crc32c(b),
                        };
                        pos += b.len() as u64;
                        r
                    })
                    .collect()
            })
            .collect()
    }

    /// Serializes to the checksummed v2 layout described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.compressed_size() + 64);
        out.extend_from_slice(MAGIC);
        out.put_u32(VERSION);
        out.extend_from_slice(&self.rows.to_le_bytes());
        // lint: allow(cast) encode side: in-memory field sizes fit the wire widths
        out.put_u32(self.columns.len() as u32);
        for col in &self.columns {
            let name = col.name.as_bytes();
            // lint: allow(cast) encode side: column names are short identifiers
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            out.put_u8(col.column_type.tag());
            // lint: allow(cast) encode side: serialized bitmap is far smaller than 4 GiB
            out.put_u32(col.nulls.len() as u32);
            out.extend_from_slice(&col.nulls);
            // lint: allow(cast) encode side: block count fits u32
            out.put_u32(col.blocks.len() as u32);
            for b in &col.blocks {
                // lint: allow(cast) encode side: a block is far smaller than 4 GiB
                out.put_u32(b.len() as u32);
                out.put_u32(crc32c(b));
                out.extend_from_slice(b);
            }
        }
        let footer = crc32c(&out);
        out.put_u32(footer);
        out
    }

    /// Serializes to the legacy v1 layout (no checksums). For interop with
    /// readers that predate format v2; new files should use [`to_bytes`].
    ///
    /// [`to_bytes`]: CompressedRelation::to_bytes
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.compressed_size() + 64);
        out.extend_from_slice(MAGIC);
        out.put_u32(VERSION_V1);
        out.extend_from_slice(&self.rows.to_le_bytes());
        // lint: allow(cast) encode side: in-memory field sizes fit the wire widths
        out.put_u32(self.columns.len() as u32);
        for col in &self.columns {
            let name = col.name.as_bytes();
            // lint: allow(cast) encode side: column names are short identifiers
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            out.put_u8(col.column_type.tag());
            // lint: allow(cast) encode side: serialized bitmap is far smaller than 4 GiB
            out.put_u32(col.nulls.len() as u32);
            out.extend_from_slice(&col.nulls);
            // lint: allow(cast) encode side: block count fits u32
            out.put_u32(col.blocks.len() as u32);
            for b in &col.blocks {
                // lint: allow(cast) encode side: a block is far smaller than 4 GiB
                out.put_u32(b.len() as u32);
                out.extend_from_slice(b);
            }
        }
        out
    }

    /// Parses the single-file layout (v1 or v2).
    ///
    /// For v2 the whole-file footer CRC is computed up front, then every
    /// column part's CRC is verified before its scheme byte is inspected.
    /// The most localized error wins: a part mismatch is reported as
    /// [`Error::ChecksumMismatch`]; corruption that only the footer catches
    /// (framing bytes, trailing garbage) as [`Error::FileChecksumMismatch`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(Error::Corrupt("bad magic"));
        }
        match r.u32()? {
            VERSION_V1 => Self::parse_columns(&mut r, None),
            VERSION => {
                // The footer is the last 4 bytes; everything before it is
                // covered by the file CRC. Verify the footer first so the
                // outcome is decided before any parsing of corrupt framing.
                let body_len = bytes
                    .len()
                    .checked_sub(4)
                    .filter(|&l| l >= r.position())
                    .ok_or(Error::UnexpectedEnd)?;
                let body = bytes.get(..body_len).ok_or(Error::UnexpectedEnd)?;
                let footer_bytes: [u8; 4] = bytes
                    .get(body_len..)
                    .and_then(|s| s.try_into().ok())
                    .ok_or(Error::UnexpectedEnd)?;
                let footer = u32::from_le_bytes(footer_bytes);
                let footer_ok = crc32c(body) == footer;
                let parsed = Self::parse_columns(&mut r, Some(body_len));
                match parsed {
                    // A localized part checksum failure beats the footer.
                    Err(e @ Error::ChecksumMismatch { .. }) => Err(e),
                    // Structural damage the part CRCs couldn't localize.
                    Err(e) => Err(if footer_ok { e } else { Error::FileChecksumMismatch }),
                    Ok(_) if !footer_ok => Err(Error::FileChecksumMismatch),
                    Ok(rel) => Ok(rel),
                }
            }
            _ => Err(Error::Corrupt("unsupported version")),
        }
    }

    /// Parses the column table. `checksummed_until` is `Some(body_len)` for
    /// v2 (per-part CRCs present, parsing must stop exactly at `body_len`)
    /// and `None` for v1 (no CRCs, no footer).
    fn parse_columns(r: &mut Reader<'_>, checksummed_until: Option<usize>) -> Result<Self> {
        let v2 = checksummed_until.is_some();
        // In v2, never read framing out of the footer's bytes.
        let limit = |r: &Reader<'_>| match checksummed_until {
            Some(body_len) => body_len - r.position().min(body_len),
            None => r.remaining(),
        };
        let rows = r.u64()?;
        let n_cols = r.u32()? as usize;
        // A column needs at least name_len + tag + null_len + block_count
        // bytes; cap the count so a corrupt field can't reserve gigabytes.
        if n_cols > limit(r) / 11 {
            return Err(Error::LimitExceeded("column count"));
        }
        let mut columns = Vec::with_capacity(n_cols);
        for col_idx in 0..n_cols {
            let name_len = r.u16()? as usize;
            if name_len > limit(r) {
                return Err(Error::UnexpectedEnd);
            }
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|_| Error::Corrupt("column name not utf-8"))?;
            let column_type =
                ColumnType::from_tag(r.u8()?).ok_or(Error::Corrupt("bad column type tag"))?;
            let null_len = r.u32()? as usize;
            if null_len > limit(r) {
                return Err(Error::UnexpectedEnd);
            }
            let nulls = r.take(null_len)?.to_vec();
            let n_blocks = r.u32()? as usize;
            // Each block occupies at least its length field (+ CRC in v2).
            if n_blocks > limit(r) / if v2 { 8 } else { 4 } {
                return Err(Error::LimitExceeded("block count"));
            }
            let mut blocks = Vec::with_capacity(n_blocks);
            let mut schemes = Vec::with_capacity(n_blocks);
            for part_idx in 0..n_blocks {
                let len = r.u32()? as usize;
                let stored_crc = if v2 { Some(r.u32()?) } else { None };
                if len > limit(r) {
                    return Err(Error::UnexpectedEnd);
                }
                let raw = r.take(len)?;
                if let Some(crc) = stored_crc {
                    // Verified before the scheme byte is even peeked at:
                    // damaged parts never reach a decoder.
                    if crc32c(raw) != crc {
                        return Err(Error::ChecksumMismatch {
                            // lint: allow(cast) bounded by a count read from a u32 field
                            column: col_idx as u32,
                            // lint: allow(cast) bounded by a count read from a u32 field
                            part: part_idx as u32,
                        });
                    }
                }
                let b = raw.to_vec();
                schemes.push(block::peek_scheme(&b)?);
                blocks.push(b);
            }
            columns.push(CompressedColumn {
                name,
                column_type,
                nulls,
                blocks,
                schemes,
            });
        }
        if let Some(body_len) = checksummed_until {
            if r.position() != body_len {
                return Err(Error::Corrupt("trailing bytes before footer"));
            }
        }
        Ok(CompressedRelation { rows, columns })
    }
}

/// Compresses every column of `rel` into independent blocks.
///
/// One [`EncodeScratch`] is shared across all columns, so the sample, trial,
/// and side-array buffers warmed up by the first block serve every block of
/// every column after it.
pub fn compress(rel: &Relation, cfg: &Config) -> Result<CompressedRelation> {
    let mut scratch = EncodeScratch::new();
    let mut columns = Vec::with_capacity(rel.columns.len());
    for col in &rel.columns {
        columns.push(compress_column_with_scratch(col, cfg, &mut scratch));
    }
    Ok(CompressedRelation {
        rows: rel.rows() as u64,
        columns,
    })
}

/// Compresses a single column.
pub fn compress_column(col: &Column, cfg: &Config) -> CompressedColumn {
    let mut scratch = EncodeScratch::new();
    compress_column_with_scratch(col, cfg, &mut scratch)
}

/// [`compress_column`] with a caller-provided scratch arena: every encode
/// temporary (sample gathers, candidate trial buffers, scheme side-arrays,
/// cascade recursion) is leased from `scratch` instead of allocated fresh.
pub fn compress_column_with_scratch(
    col: &Column,
    cfg: &Config,
    scratch: &mut EncodeScratch,
) -> CompressedColumn {
    let mut out = CompressedColumn {
        name: String::new(),
        column_type: col.data.column_type(),
        nulls: Vec::new(),
        blocks: Vec::new(),
        schemes: Vec::new(),
    };
    compress_column_into(col, cfg, scratch, &mut out);
    out
}

/// Compresses `col` into an existing [`CompressedColumn`] shell, reusing its
/// name/nulls/blocks/schemes buffers in place.
///
/// With a warm `scratch` *and* a warm `out` (both already used for a column
/// of similar shape), recompressing an integer or double column performs
/// zero heap allocations for the pooled scheme set — the property the
/// `alloc_regression_encode` test pins down. String columns still allocate
/// in borrowed-key stats maps and FSST symbol-table training (DESIGN.md §12).
pub fn compress_column_into(
    col: &Column,
    cfg: &Config,
    scratch: &mut EncodeScratch,
    out: &mut CompressedColumn,
) {
    let n = col.data.len();
    let bs = cfg.block_size.max(1);
    let n_blocks = if n == 0 { 1 } else { n.div_ceil(bs) };
    // Reuse the shell's block buffers: trim extras into the scratch pool so
    // a shrinking recompression feeds later leases; grow with empty vectors
    // that size themselves on first write.
    while out.blocks.len() > n_blocks {
        if let Some(b) = out.blocks.pop() {
            scratch.release_u8(b);
        }
    }
    while out.blocks.len() < n_blocks {
        out.blocks.push(Vec::new());
    }
    out.schemes.clear();
    out.name.clear();
    out.name.push_str(&col.name);
    out.column_type = col.data.column_type();
    out.nulls.clear();
    if let Some(b) = col.nulls.as_ref() {
        out.nulls.extend_from_slice(&b.serialize());
    }
    let mut blocks = out.blocks.iter_mut();
    match &col.data {
        ColumnData::Int(values) => {
            for chunk in values.chunks(bs) {
                let buf = blocks.next().expect("shell sized to n_blocks above");
                out.schemes
                    .push(block::compress_block_into(BlockRef::Int(chunk), cfg, scratch, buf));
            }
        }
        ColumnData::Double(values) => {
            for chunk in values.chunks(bs) {
                let buf = blocks.next().expect("shell sized to n_blocks above");
                out.schemes
                    .push(block::compress_block_into(BlockRef::Double(chunk), cfg, scratch, buf));
            }
        }
        ColumnData::Str(arena) => {
            let mut sub = scratch.lease_arena();
            let mut start = 0;
            while start < n {
                let end = (start + bs).min(n);
                arena.gather_into(start..end, &mut sub);
                let buf = blocks.next().expect("shell sized to n_blocks above");
                out.schemes
                    .push(block::compress_block_into(BlockRef::Str(&sub), cfg, scratch, buf));
                start = end;
            }
            scratch.release_arena(sub);
        }
    }
    if n == 0 {
        // Keep an explicit empty block so decompression restores the column.
        let buf = blocks.next().expect("empty column shell holds one block");
        let code = match col.data.column_type() {
            ColumnType::Integer => {
                block::compress_block_into(BlockRef::Int(&[]), cfg, scratch, buf)
            }
            ColumnType::Double => {
                block::compress_block_into(BlockRef::Double(&[]), cfg, scratch, buf)
            }
            ColumnType::String => {
                let empty = scratch.lease_arena();
                let code = block::compress_block_into(BlockRef::Str(&empty), cfg, scratch, buf);
                scratch.release_arena(empty);
                code
            }
        };
        out.schemes.push(code);
    }
}

/// Decompresses a file produced by [`CompressedRelation::to_bytes`].
pub fn decompress(bytes: &[u8], cfg: &Config) -> Result<Relation> {
    let compressed = CompressedRelation::from_bytes(bytes)?;
    decompress_relation(&compressed, cfg)
}

/// Decompresses an in-memory [`CompressedRelation`].
pub fn decompress_relation(compressed: &CompressedRelation, cfg: &Config) -> Result<Relation> {
    let mut scratch = DecodeScratch::new();
    let mut columns = Vec::with_capacity(compressed.columns.len());
    for col in &compressed.columns {
        columns.push(decompress_column_with_scratch(col, cfg, &mut scratch)?);
    }
    Ok(Relation { columns })
}

/// Decompresses a single column (all blocks, concatenated).
pub fn decompress_column(col: &CompressedColumn, cfg: &Config) -> Result<Column> {
    let mut scratch = DecodeScratch::new();
    decompress_column_with_scratch(col, cfg, &mut scratch)
}

/// [`decompress_column`] with a caller-provided scratch arena: one leased
/// block buffer is reused across all of the column's blocks and returned to
/// the pool at the end, so a warm pool makes per-block decode allocation-free.
pub fn decompress_column_with_scratch(
    col: &CompressedColumn,
    cfg: &Config,
    scratch: &mut DecodeScratch,
) -> Result<Column> {
    let mut data = match col.column_type {
        ColumnType::Integer => ColumnData::Int(Vec::new()),
        ColumnType::Double => ColumnData::Double(Vec::new()),
        ColumnType::String => ColumnData::Str(StringArena::new()),
    };
    let mut decoded = scratch.lease_decoded(col.column_type);
    let result = (|| -> Result<()> {
        for b in &col.blocks {
            block::decompress_block_into(b, col.column_type, cfg, scratch, &mut decoded)?;
            match (&mut data, &decoded) {
                (ColumnData::Int(acc), DecodedColumn::Int(v)) => acc.extend_from_slice(v),
                (ColumnData::Double(acc), DecodedColumn::Double(v)) => acc.extend_from_slice(v),
                (ColumnData::Str(acc), DecodedColumn::Str(v)) => {
                    for i in 0..v.len() {
                        acc.push(v.get(i));
                    }
                }
                _ => return Err(Error::Corrupt("mixed block types in column")),
            }
        }
        Ok(())
    })();
    scratch.recycle(decoded);
    result?;
    let nulls = if col.nulls.is_empty() {
        None
    } else {
        Some(RoaringBitmap::deserialize(&col.nulls)?)
    };
    Ok(Column {
        name: col.name.clone(),
        data,
        nulls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_relation(rows: usize) -> Relation {
        let strings: Vec<String> = (0..rows).map(|i| format!("val-{}", i % 100)).collect();
        let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
        Relation::new(vec![
            Column::new("id", ColumnData::Int((0..rows as i32).collect())),
            Column::new(
                "price",
                ColumnData::Double((0..rows).map(|i| (i % 500) as f64 * 0.25).collect()),
            ),
            Column::new("label", ColumnData::Str(StringArena::from_strs(&refs))),
        ])
    }

    #[test]
    fn relation_roundtrip_via_bytes() {
        let cfg = Config::default();
        let rel = sample_relation(10_000);
        let compressed = compress(&rel, &cfg).unwrap();
        let bytes = compressed.to_bytes();
        assert!(bytes.len() < rel.heap_size(), "must compress overall");
        let restored = decompress(&bytes, &cfg).unwrap();
        assert_eq!(rel, restored);
    }

    #[test]
    fn multi_block_columns() {
        let cfg = Config {
            block_size: 1000,
            ..Config::default()
        };
        let rel = sample_relation(3_500);
        let compressed = compress(&rel, &cfg).unwrap();
        assert_eq!(compressed.columns[0].blocks.len(), 4);
        let restored = decompress(&compressed.to_bytes(), &cfg).unwrap();
        assert_eq!(rel, restored);
    }

    #[test]
    fn nulls_roundtrip() {
        let cfg = Config::default();
        let nulls = RoaringBitmap::from_sorted_iter([1u32, 5, 7]);
        let rel = Relation::new(vec![Column::with_nulls(
            "x",
            ColumnData::Int(vec![1, 0, 3, 4, 5, 0, 7, 0]),
            nulls.clone(),
        )]);
        let restored = decompress(&compress(&rel, &cfg).unwrap().to_bytes(), &cfg).unwrap();
        assert_eq!(restored.columns[0].nulls.as_ref(), Some(&nulls));
        assert_eq!(rel, restored);
    }

    #[test]
    fn empty_relation_roundtrip() {
        let cfg = Config::default();
        let rel = Relation::new(vec![
            Column::new("a", ColumnData::Int(Vec::new())),
            Column::new("b", ColumnData::Str(StringArena::new())),
        ]);
        let restored = decompress(&compress(&rel, &cfg).unwrap().to_bytes(), &cfg).unwrap();
        assert_eq!(rel, restored);
    }

    #[test]
    fn corrupt_magic_is_error() {
        let cfg = Config::default();
        let rel = sample_relation(100);
        let mut bytes = compress(&rel, &cfg).unwrap().to_bytes();
        bytes[0] = b'X';
        assert!(decompress(&bytes, &cfg).is_err());
    }

    #[test]
    fn from_options_builders() {
        let col = Column::from_int_options("i", &[Some(1), None, Some(3), None]);
        assert_eq!(col.null_count(), 2);
        assert!(col.is_null(1) && col.is_null(3));
        assert!(!col.is_null(0));
        assert_eq!(col.data, ColumnData::Int(vec![1, 0, 3, 0]));

        let col = Column::from_double_options("d", &[None, Some(2.5)]);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.data, ColumnData::Double(vec![0.0, 2.5]));

        let col = Column::from_str_options("s", &[Some("x"), None]);
        assert_eq!(col.null_count(), 1);
        match &col.data {
            ColumnData::Str(a) => {
                assert_eq!(a.get(0), b"x");
                assert_eq!(a.get(1), b"");
            }
            _ => panic!(),
        }

        // No NULLs → no bitmap at all.
        let col = Column::from_int_options("n", &[Some(1), Some(2)]);
        assert!(col.nulls.is_none());
    }

    #[test]
    fn null_columns_roundtrip_through_compression() {
        let cfg = Config::default();
        let values: Vec<Option<i32>> = (0..5_000)
            .map(|i| if i % 7 == 0 { None } else { Some(i % 50) })
            .collect();
        let rel = Relation::new(vec![Column::from_int_options("x", &values)]);
        let restored = decompress(&compress(&rel, &cfg).unwrap().to_bytes(), &cfg).unwrap();
        assert_eq!(restored, rel);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(restored.columns[0].is_null(i), v.is_none());
        }
    }

    #[test]
    fn v1_files_still_decompress() {
        let cfg = Config::default();
        let rel = sample_relation(2_000);
        let compressed = compress(&rel, &cfg).unwrap();
        let v1 = compressed.to_bytes_v1();
        let v2 = compressed.to_bytes();
        assert_eq!(decompress(&v1, &cfg).unwrap(), rel);
        // v1 is smaller (no checksums), v2 carries 8 bytes/block + footer.
        assert!(v1.len() < v2.len());
        let extra: usize =
            compressed.columns.iter().map(|c| 4 * c.blocks.len()).sum::<usize>() + 4;
        assert_eq!(v1.len() + extra, v2.len());
    }

    #[test]
    fn flipped_block_bit_is_a_part_checksum_mismatch() {
        let cfg = Config {
            block_size: 500,
            ..Config::default()
        };
        let rel = sample_relation(2_000);
        let compressed = compress(&rel, &cfg).unwrap();
        let bytes = compressed.to_bytes();
        // Locate the last block of the last column inside the file: its
        // bytes are the `block.len()` bytes just before the footer.
        let last = compressed.columns.last().unwrap().blocks.last().unwrap();
        let part = compressed.columns.last().unwrap().blocks.len() as u32 - 1;
        let col = compressed.columns.len() as u32 - 1;
        let start = bytes.len() - 4 - last.len();
        for offset in [0, last.len() / 2, last.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[start + offset] ^= 0x10;
            assert_eq!(
                CompressedRelation::from_bytes(&corrupt).unwrap_err(),
                Error::ChecksumMismatch { column: col, part },
                "flip at block offset {offset}"
            );
        }
    }

    #[test]
    fn framing_corruption_is_a_file_checksum_mismatch() {
        let cfg = Config::default();
        let rel = sample_relation(500);
        let bytes = compress(&rel, &cfg).unwrap().to_bytes();
        // Flip a bit in the column name (byte after the header + name_len).
        let mut corrupt = bytes.clone();
        corrupt[22] ^= 0x01; // first byte of the first column name "id"
        assert_eq!(
            CompressedRelation::from_bytes(&corrupt).unwrap_err(),
            Error::FileChecksumMismatch
        );
        // Flip the footer itself.
        let mut corrupt = bytes.clone();
        let n = corrupt.len();
        corrupt[n - 1] ^= 0x80;
        assert_eq!(
            CompressedRelation::from_bytes(&corrupt).unwrap_err(),
            Error::FileChecksumMismatch
        );
        // Trailing garbage is also caught.
        let mut corrupt = bytes.clone();
        corrupt.push(0xAB);
        assert!(CompressedRelation::from_bytes(&corrupt).is_err());
    }

    #[test]
    fn truncations_error_cleanly() {
        let cfg = Config::default();
        let rel = sample_relation(300);
        let bytes = compress(&rel, &cfg).unwrap().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                CompressedRelation::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must not parse"
            );
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A file claiming 4 billion columns must be rejected by the limit
        // check, not by attempting the reservation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.put_u32(VERSION);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.put_u32(u32::MAX);
        let footer = crc32c(&bytes);
        bytes.put_u32(footer);
        assert_eq!(
            CompressedRelation::from_bytes(&bytes).unwrap_err(),
            Error::LimitExceeded("column count")
        );
    }

    #[test]
    fn block_byte_ranges_address_the_file() {
        let cfg = Config {
            block_size: 700,
            ..Config::default()
        };
        let rel = sample_relation(2_400);
        let compressed = compress(&rel, &cfg).unwrap();
        let bytes = compressed.to_bytes();
        assert_eq!(compressed.file_len(), bytes.len() as u64);
        let ranges = compressed.block_byte_ranges();
        assert_eq!(ranges.len(), compressed.columns.len());
        for (col, col_ranges) in compressed.columns.iter().zip(&ranges) {
            assert_eq!(col.blocks.len(), col_ranges.len());
            for (block, range) in col.blocks.iter().zip(col_ranges) {
                let start = range.offset as usize;
                let end = start + range.len as usize;
                assert_eq!(&bytes[start..end], block.as_slice());
                assert_eq!(crc32c(block), range.crc32c);
                // The framing immediately before the payload holds the same
                // length and CRC the range reports.
                let framed_len =
                    u32::from_le_bytes(bytes[start - 8..start - 4].try_into().unwrap());
                let framed_crc =
                    u32::from_le_bytes(bytes[start - 4..start].try_into().unwrap());
                assert_eq!(framed_len, range.len);
                assert_eq!(framed_crc, range.crc32c);
            }
        }
    }

    #[test]
    fn schemes_are_reported() {
        let cfg = Config::default();
        let rel = Relation::new(vec![Column::new("zeros", ColumnData::Int(vec![0; 5000]))]);
        let compressed = compress(&rel, &cfg).unwrap();
        assert_eq!(compressed.columns[0].schemes, vec![SchemeCode::OneValue]);
        let parsed = CompressedRelation::from_bytes(&compressed.to_bytes()).unwrap();
        assert_eq!(parsed.columns[0].schemes, vec![SchemeCode::OneValue]);
    }
}
