//! Randomized round-trip tests: all four baseline float codecs must be
//! bit-exact lossless on arbitrary doubles, including NaN payloads.
//! Deterministic (seeded xorshift) so runs are reproducible offline.

use btr_corrupt::rng::Xorshift;
use btr_float::FloatCodec;

/// Covers both "nice" values and raw bit patterns (NaNs, denormals...).
fn arb_f64(rng: &mut Xorshift) -> f64 {
    match rng.gen_range(0..3u32) {
        0 => rng.next_f64() * 1e12 - 5e11,
        1 => f64::from_bits(rng.next_u64()),
        _ => rng.gen_range(-1_000_000i64..1_000_000) as f64 / 100.0,
    }
}

fn vec_f64(rng: &mut Xorshift, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| arb_f64(rng)).collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], codec: FloatCodec) {
    assert_eq!(a.len(), b.len(), "{} length", codec.name());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{} index {i}", codec.name());
    }
}

fn roundtrips(codec: FloatCodec, seed: u64) {
    let mut rng = Xorshift::new(seed);
    for _ in 0..200 {
        let values = vec_f64(&mut rng, 500);
        let out = codec.decompress(&codec.compress(&values)).unwrap();
        assert_bits_eq(&values, &out, codec);
    }
}

#[test]
fn fpc_roundtrips() {
    roundtrips(FloatCodec::Fpc, 0x11);
}

#[test]
fn gorilla_roundtrips() {
    roundtrips(FloatCodec::Gorilla, 0x12);
}

#[test]
fn chimp_roundtrips() {
    roundtrips(FloatCodec::Chimp, 0x13);
}

#[test]
fn chimp128_roundtrips() {
    roundtrips(FloatCodec::Chimp128, 0x14);
}

#[test]
fn chimp128_roundtrips_low_cardinality() {
    // Low-cardinality data exercises the exact-match (flag 00) path heavily.
    let mut rng = Xorshift::new(0x15);
    const CHOICES: [f64; 4] = [0.0, 1.5, -7.25, 99.99];
    for _ in 0..200 {
        let len = rng.gen_range(0..800usize);
        let values: Vec<f64> = (0..len).map(|_| CHOICES[rng.gen_range(0usize..4)]).collect();
        let out = FloatCodec::Chimp128
            .decompress(&FloatCodec::Chimp128.compress(&values))
            .unwrap();
        assert_bits_eq(&values, &out, FloatCodec::Chimp128);
    }
}
