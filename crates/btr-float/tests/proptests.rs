//! Property tests: all four baseline float codecs must be bit-exact lossless
//! on arbitrary doubles, including NaN payloads.

use btr_float::FloatCodec;
use proptest::prelude::*;

fn arb_f64() -> impl Strategy<Value = f64> {
    // Cover both "nice" values and raw bit patterns (NaNs, denormals...).
    prop_oneof![
        any::<f64>(),
        any::<u64>().prop_map(f64::from_bits),
        (-1_000_000i64..1_000_000).prop_map(|i| i as f64 / 100.0),
    ]
}

fn assert_bits_eq(a: &[f64], b: &[f64]) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.to_bits(), y.to_bits());
    }
    Ok(())
}

proptest! {
    #[test]
    fn fpc_roundtrips(values in proptest::collection::vec(arb_f64(), 0..500)) {
        let out = FloatCodec::Fpc.decompress(&FloatCodec::Fpc.compress(&values)).unwrap();
        assert_bits_eq(&values, &out)?;
    }

    #[test]
    fn gorilla_roundtrips(values in proptest::collection::vec(arb_f64(), 0..500)) {
        let out = FloatCodec::Gorilla.decompress(&FloatCodec::Gorilla.compress(&values)).unwrap();
        assert_bits_eq(&values, &out)?;
    }

    #[test]
    fn chimp_roundtrips(values in proptest::collection::vec(arb_f64(), 0..500)) {
        let out = FloatCodec::Chimp.decompress(&FloatCodec::Chimp.compress(&values)).unwrap();
        assert_bits_eq(&values, &out)?;
    }

    #[test]
    fn chimp128_roundtrips(values in proptest::collection::vec(arb_f64(), 0..500)) {
        let out = FloatCodec::Chimp128.decompress(&FloatCodec::Chimp128.compress(&values)).unwrap();
        assert_bits_eq(&values, &out)?;
    }

    #[test]
    fn chimp128_roundtrips_low_cardinality(values in proptest::collection::vec(
            prop_oneof![Just(0.0f64), Just(1.5), Just(-7.25), Just(99.99)], 0..800)) {
        // Low-cardinality data exercises the exact-match (flag 00) path heavily.
        let out = FloatCodec::Chimp128.decompress(&FloatCodec::Chimp128.compress(&values)).unwrap();
        assert_bits_eq(&values, &out)?;
    }
}
