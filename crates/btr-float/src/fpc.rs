//! FPC double compression (Burtscher & Ratanaworabhan, DCC 2007).
//!
//! FPC predicts each value with two hash-table predictors — FCM (finite
//! context method, hashing recent values) and DFCM (hashing recent deltas) —
//! and XORs the value with the better prediction. The XOR residual usually
//! has many leading zero *bytes*; FPC stores a 4-bit header per value (1 bit
//! predictor choice + 3 bits leading-zero-byte count) followed by the
//! remaining bytes. Headers are packed two per byte.

use crate::{Error, Result};

/// log2 of the predictor table sizes; the original uses configurable sizes,
/// 16 (64 Ki entries × 8 B = 512 KiB per table) is a common midpoint.
const TABLE_BITS: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

struct Predictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
}

impl Predictors {
    fn new() -> Self {
        Predictors {
            fcm: vec![0; TABLE_SIZE],
            dfcm: vec![0; TABLE_SIZE],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
        }
    }

    /// Returns `(fcm_prediction, dfcm_prediction)` for the next value.
    #[inline]
    fn predict(&self) -> (u64, u64) {
        (
            // lint: allow(indexing) hashes are masked with TABLE_SIZE - 1
            self.fcm[self.fcm_hash],
            // lint: allow(indexing) hashes are masked with TABLE_SIZE - 1
            self.dfcm[self.dfcm_hash].wrapping_add(self.last),
        )
    }

    /// Updates both predictors with the actual value.
    #[inline]
    fn update(&mut self, actual: u64) {
        // lint: allow(indexing) hashes are masked with TABLE_SIZE - 1
        self.fcm[self.fcm_hash] = actual;
        self.fcm_hash = (((self.fcm_hash as u64) << 6) ^ (actual >> 48)) as usize & (TABLE_SIZE - 1);
        let delta = actual.wrapping_sub(self.last);
        // lint: allow(indexing) hashes are masked with TABLE_SIZE - 1
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash = (((self.dfcm_hash as u64) << 2) ^ (delta >> 40)) as usize & (TABLE_SIZE - 1);
        self.last = actual;
    }
}

/// Number of leading zero *bytes* in `x`, capped at 7 so the residual always
/// has at least one byte (the original FPC skips the cap by special-casing 4;
/// capping at 7 keeps the header a clean 3 bits at negligible cost).
#[inline]
fn leading_zero_bytes(x: u64) -> u8 {
    // lint: allow(cast) leading_zeros / 8 is at most 8
    ((x.leading_zeros() / 8) as u8).min(7)
}

/// Compresses `values` with FPC.
pub fn compress(values: &[f64]) -> Vec<u8> {
    let n = values.len();
    let mut headers = Vec::with_capacity(n.div_ceil(2));
    let mut payload = Vec::with_capacity(n * 4);
    let mut pred = Predictors::new();
    let mut half: u8 = 0;
    for (i, &v) in values.iter().enumerate() {
        let bits = v.to_bits();
        let (p_fcm, p_dfcm) = pred.predict();
        let x_fcm = bits ^ p_fcm;
        let x_dfcm = bits ^ p_dfcm;
        let (sel, xor) = if leading_zero_bytes(x_fcm) >= leading_zero_bytes(x_dfcm) {
            (0u8, x_fcm)
        } else {
            (1u8, x_dfcm)
        };
        pred.update(bits);
        let lzb = leading_zero_bytes(xor);
        let nibble = (sel << 3) | lzb;
        if i % 2 == 0 {
            half = nibble;
        } else {
            headers.push((half << 4) | nibble);
        }
        let keep = 8 - lzb as usize;
        // lint: allow(indexing) keep = 8 - lzb <= 8 over an 8-byte array
        payload.extend_from_slice(&xor.to_le_bytes()[..keep]);
    }
    if n % 2 == 1 {
        headers.push(half << 4);
    }
    let mut out = Vec::with_capacity(8 + headers.len() + payload.len());
    // lint: allow(cast) encode side: block value counts are far smaller than 4 GiB
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&headers);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<f64>> {
    if data.len() < 4 {
        return Err(Error::UnexpectedEnd);
    }
    // lint: allow(indexing) data.len() >= 4 was checked above
    let n = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    let header_bytes = n.div_ceil(2);
    if data.len() < 4 + header_bytes {
        return Err(Error::UnexpectedEnd);
    }
    // lint: allow(indexing) data.len() >= 4 + header_bytes was checked above
    let headers = &data[4..4 + header_bytes];
    // lint: allow(indexing) data.len() >= 4 + header_bytes was checked above
    let mut payload = &data[4 + header_bytes..];
    let mut out = Vec::with_capacity(n);
    let mut pred = Predictors::new();
    for i in 0..n {
        // lint: allow(indexing) i < n and headers holds ceil(n / 2) bytes
        let byte = headers[i / 2];
        let nibble = if i % 2 == 0 { byte >> 4 } else { byte & 0x0F };
        let sel = nibble >> 3;
        let lzb = nibble & 0x07;
        let keep = 8 - lzb as usize;
        if payload.len() < keep {
            return Err(Error::UnexpectedEnd);
        }
        let mut buf = [0u8; 8];
        // lint: allow(indexing) keep <= 8 and payload.len() >= keep was checked above
        buf[..keep].copy_from_slice(&payload[..keep]);
        // lint: allow(indexing) payload.len() >= keep was checked above
        payload = &payload[keep..];
        let xor = u64::from_le_bytes(buf);
        let (p_fcm, p_dfcm) = pred.predict();
        let bits = xor ^ if sel == 0 { p_fcm } else { p_dfcm };
        pred.update(bits);
        out.push(f64::from_bits(bits));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_bits_eq;

    #[test]
    fn roundtrip_tricky() {
        let values = crate::tricky_values();
        assert_bits_eq(&values, &decompress(&compress(&values)).unwrap());
    }

    #[test]
    fn roundtrip_odd_and_even_counts() {
        for n in [0usize, 1, 2, 3, 100, 101] {
            let values: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 1e6).collect();
            assert_bits_eq(&values, &decompress(&compress(&values)).unwrap());
        }
    }

    #[test]
    fn repeated_values_compress_to_headers_only() {
        let values = vec![7.25f64; 1000];
        let comp = compress(&values);
        // After warm-up, every XOR is 0 -> 1-byte residual per value + headers.
        assert!(comp.len() < 1000 * 2, "got {}", comp.len());
        assert_bits_eq(&values, &decompress(&comp).unwrap());
    }

    #[test]
    fn linear_series_predicted_by_dfcm() {
        // Integer-valued doubles in arithmetic progression: DFCM's delta
        // prediction should kick in and shrink residuals.
        let values: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let comp = compress(&values);
        assert!(comp.len() < values.len() * 8 / 2);
        assert_bits_eq(&values, &decompress(&comp).unwrap());
    }

    #[test]
    fn truncated_is_error() {
        let comp = compress(&[1.5, 2.5, 3.5]);
        assert!(decompress(&comp[..comp.len() - 1]).is_err());
        assert!(decompress(&[3, 0, 0]).is_err());
    }
}
