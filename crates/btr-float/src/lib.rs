//! Baseline floating-point compression codecs.
//!
//! The BtrBlocks paper's Table 3 compares Pseudodecimal Encoding against four
//! published double-compression schemes. This crate re-implements all four
//! from scratch so the comparison can be reproduced:
//!
//! * [`gorilla`] — Facebook Gorilla's XOR scheme (Pelkonen et al., VLDB 2015):
//!   XOR with the previous value, then reuse or re-transmit the
//!   leading/trailing-zero window.
//! * [`chimp`] — Chimp (Liakos et al., VLDB 2022): a refinement of Gorilla
//!   with 2-bit flags, rounded leading-zero codes and a trailing-zero
//!   shortcut.
//! * [`chimp::compress128`] — Chimp128: a 128-value history window; each value
//!   may XOR against the most similar of the previous 128 values instead of
//!   only the immediately preceding one.
//! * [`fpc`] — FPC (Burtscher & Ratanaworabhan, DCC 2007): two hash-based
//!   value predictors (FCM and DFCM); the better prediction is XORed away and
//!   the nonzero residual bytes are stored after a 4-bit header.
//!
//! All codecs are *lossless at the bit level*: `f64::to_bits` round-trips
//! exactly, including NaN payloads, negative zero and infinities. Each codec
//! exposes `compress(&[f64]) -> Vec<u8>` and `decompress(&[u8]) -> Vec<f64>`.

pub mod bitio;
pub mod chimp;
pub mod fpc;
pub mod gorilla;

/// Errors from decoding a compressed float stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The stream ended before all promised values were decoded.
    UnexpectedEnd,
    /// The stream header or structure is malformed.
    Corrupt(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnexpectedEnd => write!(f, "float stream ended unexpectedly"),
            Error::Corrupt(m) => write!(f, "corrupt float stream: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The four baseline codecs behind one enum, used by the benchmark harness to
/// iterate over schemes in Table 3 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatCodec {
    Fpc,
    Gorilla,
    Chimp,
    Chimp128,
}

impl FloatCodec {
    /// All codecs in Table 3 order.
    pub const ALL: [FloatCodec; 4] = [
        FloatCodec::Fpc,
        FloatCodec::Gorilla,
        FloatCodec::Chimp,
        FloatCodec::Chimp128,
    ];

    /// Human-readable name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            FloatCodec::Fpc => "FPC",
            FloatCodec::Gorilla => "Gorilla",
            FloatCodec::Chimp => "Chimp",
            FloatCodec::Chimp128 => "Chimp128",
        }
    }

    /// Compresses `values` with this codec.
    pub fn compress(self, values: &[f64]) -> Vec<u8> {
        match self {
            FloatCodec::Fpc => fpc::compress(values),
            FloatCodec::Gorilla => gorilla::compress(values),
            FloatCodec::Chimp => chimp::compress(values),
            FloatCodec::Chimp128 => chimp::compress128(values),
        }
    }

    /// Decompresses a stream produced by [`FloatCodec::compress`].
    pub fn decompress(self, data: &[u8]) -> Result<Vec<f64>> {
        match self {
            FloatCodec::Fpc => fpc::decompress(data),
            FloatCodec::Gorilla => gorilla::decompress(data),
            FloatCodec::Chimp => chimp::decompress(data),
            FloatCodec::Chimp128 => chimp::decompress128(data),
        }
    }
}

#[cfg(test)]
pub(crate) fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "value {i}: {x} vs {y}");
    }
}

#[cfg(test)]
pub(crate) fn tricky_values() -> Vec<f64> {
    vec![
        0.0,
        -0.0,
        1.0,
        -1.0,
        3.25,
        0.99,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::MIN_POSITIVE,
        f64::MAX,
        5.5e-42,
        1.7976931348623157e308,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_codecs_roundtrip_tricky_values() {
        let values = tricky_values();
        for codec in FloatCodec::ALL {
            let comp = codec.compress(&values);
            let out = codec.decompress(&comp).unwrap();
            assert_bits_eq(&values, &out);
        }
    }

    #[test]
    fn all_codecs_roundtrip_empty() {
        for codec in FloatCodec::ALL {
            let comp = codec.compress(&[]);
            assert!(codec.decompress(&comp).unwrap().is_empty());
        }
    }

    #[test]
    fn all_codecs_compress_repeated_values() {
        let values = vec![42.5f64; 10_000];
        for codec in FloatCodec::ALL {
            let comp = codec.compress(&values);
            assert!(
                comp.len() < values.len() * 8 / 4,
                "{} produced {} bytes for {} doubles",
                codec.name(),
                comp.len(),
                values.len()
            );
            let out = codec.decompress(&comp).unwrap();
            assert_bits_eq(&values, &out);
        }
    }

    #[test]
    fn all_codecs_roundtrip_price_series() {
        // Price-like data: the distribution PDE targets; baselines must still
        // round-trip it even if they compress it poorly.
        let values: Vec<f64> = (0..5_000).map(|i| (i % 997) as f64 * 0.01 + 0.99).collect();
        for codec in FloatCodec::ALL {
            let comp = codec.compress(&values);
            let out = codec.decompress(&comp).unwrap();
            assert_bits_eq(&values, &out);
        }
    }

    #[test]
    fn all_codecs_roundtrip_single_value() {
        for codec in FloatCodec::ALL {
            let comp = codec.compress(&[std::f64::consts::PI]);
            let out = codec.decompress(&comp).unwrap();
            assert_bits_eq(&[std::f64::consts::PI], &out);
        }
    }
}
