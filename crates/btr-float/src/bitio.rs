//! Bit-granular reader/writer over byte buffers (MSB-first within bytes).

use crate::{Error, Result};

/// Appends bits to a byte vector, most-significant-bit first.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the final byte (0..8); 0 means byte-aligned.
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-reserved capacity in bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            used: 0,
        }
    }

    /// Writes the low `n` bits of `value` (n <= 64), MSB first.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        let mut left = n;
        while left > 0 {
            if self.used == 0 {
                self.buf.push(0);
            }
            let free = 8 - self.used;
            let take = free.min(left);
            let shift = left - take;
            // take <= 8, so the mask fits comfortably in u16.
            // lint: allow(cast) deliberate truncation to the low byte; mask fits u8 for take <= 8
            let bits = (value >> shift) as u8 & (((1u16 << take) - 1) as u8);
            let last = self.buf.len() - 1;
            // lint: allow(indexing) buf is non-empty: a byte is pushed when used == 0
            self.buf[last] |= bits << (free - take);
            self.used = (self.used + take) % 8;
            left -= take;
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + usize::from(self.used)
        }
    }

    /// Finishes and returns the underlying buffer (zero-padded to a byte).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos_bits: 0 }
    }

    /// Reads `n` bits (n <= 64) into the low bits of the result.
    #[inline]
    pub fn read_bits(&mut self, n: u8) -> Result<u64> {
        debug_assert!(n <= 64);
        if self.pos_bits + usize::from(n) > self.buf.len() * 8 {
            return Err(Error::UnexpectedEnd);
        }
        let mut out: u64 = 0;
        let mut left = n;
        while left > 0 {
            // lint: allow(indexing) pos_bits + n was bounds-checked against buf.len() * 8 at entry
            let byte = self.buf[self.pos_bits / 8];
            // lint: allow(cast) pos_bits % 8 < 8
            let off = (self.pos_bits % 8) as u8;
            let avail = 8 - off;
            let take = avail.min(left);
            let shifted = (byte << off) >> (8 - take);
            out = (out << take) | u64::from(shifted);
            self.pos_bits += usize::from(take);
            left -= take;
        }
        Ok(out)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Bits remaining in the stream.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bit(true);
        w.write_bits(0x3FF, 10);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(10).unwrap(), 0x3FF);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 12);
        assert_eq!(w.bit_len(), 13);
    }

    #[test]
    fn read_past_end_is_error() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1), Err(Error::UnexpectedEnd));
    }

    #[test]
    fn zero_bit_write_and_read() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn many_single_bits() {
        let pattern: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }
}
