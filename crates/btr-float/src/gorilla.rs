//! Gorilla XOR compression for doubles (Pelkonen et al., VLDB 2015, §4.1.2).
//!
//! Each value is XORed with its predecessor:
//! * XOR == 0 → control bit `0`.
//! * XOR fits the previous leading/trailing-zero window → `10` + meaningful
//!   bits at the previous width.
//! * otherwise → `11` + 5-bit leading-zero count + 6-bit meaningful-bit
//!   length + the meaningful bits, and the window is updated.
//!
//! Stream layout: `u32 count (LE)`, then the first value as 64 raw bits,
//! then the control/bit stream.

use crate::bitio::{BitReader, BitWriter};
use crate::{Error, Result};

/// Compresses `values` into a Gorilla XOR stream.
pub fn compress(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() + 8);
    // lint: allow(cast) encode side: block value counts are far smaller than 4 GiB
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    if values.is_empty() {
        return out;
    }
    let mut w = BitWriter::with_capacity(values.len() * 5);
    // lint: allow(indexing) values is non-empty (checked above)
    let mut prev = values[0].to_bits();
    w.write_bits(prev, 64);
    let mut prev_lead: u8 = 65; // sentinel: no window yet
    let mut prev_meaning: u8 = 0;
    // lint: allow(indexing) values is non-empty, so 1.. is in bounds
    for &v in &values[1..] {
        let bits = v.to_bits();
        let xor = bits ^ prev;
        prev = bits;
        if xor == 0 {
            w.write_bit(false);
            continue;
        }
        w.write_bit(true);
        // lint: allow(cast) leading_zeros is at most 64
        let lead = (xor.leading_zeros() as u8).min(31);
        // lint: allow(cast) trailing_zeros is at most 64
        let trail = xor.trailing_zeros() as u8;
        let meaning = 64 - lead - trail;
        let prev_trail = 64u8.saturating_sub(prev_lead).saturating_sub(prev_meaning);
        if prev_lead <= 64 && lead >= prev_lead && trail >= prev_trail && prev_meaning > 0 {
            // Control '0' after the 1: reuse previous window.
            w.write_bit(false);
            w.write_bits(xor >> prev_trail, prev_meaning);
        } else {
            w.write_bit(true);
            w.write_bits(u64::from(lead), 5);
            // meaning is in 1..=64; store 64 as 0 (6 bits).
            w.write_bits(u64::from(meaning) & 0x3F, 6);
            w.write_bits(xor >> trail, meaning);
            prev_lead = lead;
            prev_meaning = meaning;
        }
    }
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<f64>> {
    if data.len() < 4 {
        return Err(Error::UnexpectedEnd);
    }
    // lint: allow(indexing) data.len() >= 4 was checked above
    let count = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    // lint: allow(indexing) data.len() >= 4 was checked above
    let mut r = BitReader::new(&data[4..]);
    let mut prev = r.read_bits(64)?;
    out.push(f64::from_bits(prev));
    let mut lead: u8 = 0;
    let mut meaning: u8 = 0;
    while out.len() < count {
        if !r.read_bit()? {
            out.push(f64::from_bits(prev));
            continue;
        }
        if r.read_bit()? {
            // lint: allow(cast) read_bits(5) returns at most 31
            lead = r.read_bits(5)? as u8;
            // lint: allow(cast) read_bits(6) returns at most 63
            let m = r.read_bits(6)? as u8;
            meaning = if m == 0 { 64 } else { m };
            if u16::from(lead) + u16::from(meaning) > 64 {
                return Err(Error::Corrupt("gorilla window exceeds 64 bits"));
            }
        } else if meaning == 0 {
            return Err(Error::Corrupt("gorilla window reuse before definition"));
        }
        let trail = 64 - lead - meaning;
        let xor = r.read_bits(meaning)? << trail;
        prev ^= xor;
        out.push(f64::from_bits(prev));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_bits_eq;

    #[test]
    fn roundtrip_tricky() {
        let values = crate::tricky_values();
        assert_bits_eq(&values, &decompress(&compress(&values)).unwrap());
    }

    #[test]
    fn identical_values_cost_one_bit() {
        let values = vec![12.75f64; 1001];
        let comp = compress(&values);
        // 4 header + 8 first value + 1000 bits ≈ 125 bytes.
        assert!(comp.len() <= 4 + 8 + 130, "got {}", comp.len());
        assert_bits_eq(&values, &decompress(&comp).unwrap());
    }

    #[test]
    fn slowly_varying_series_compresses() {
        let values: Vec<f64> = (0..4096).map(|i| 1000.0 + (i as f64) * 0.5).collect();
        let comp = compress(&values);
        assert!(comp.len() < values.len() * 8 / 2);
        assert_bits_eq(&values, &decompress(&comp).unwrap());
    }

    #[test]
    fn truncated_stream_is_error() {
        let comp = compress(&[1.0, 2.0, 3.0]);
        assert!(decompress(&comp[..comp.len() - 1]).is_err());
        assert!(decompress(&[1, 0]).is_err());
    }

    #[test]
    fn meaning_64_roundtrips() {
        // Force a full-width XOR: values with opposite sign bits and noisy
        // mantissas produce 0 leading zeros.
        let values = vec![f64::from_bits(0x0000_0000_0000_0001), f64::from_bits(0xFFFF_FFFF_FFFF_FFFF)];
        assert_bits_eq(&values, &decompress(&compress(&values)).unwrap());
    }
}
