//! Chimp and Chimp128 compression for doubles (Liakos et al., VLDB 2022).
//!
//! Chimp refines Gorilla with two observations: leading-zero counts cluster
//! into a few buckets (so 3 bits suffice when rounded), and XORs with more
//! than 6 trailing zeros are worth a dedicated case that stores only the
//! center bits. Chimp128 additionally keeps the previous 128 values and XORs
//! against the most promising one (found via a hash of the low mantissa
//! bits), which helps on data whose periodicity is longer than one value.
//!
//! Flags (2 bits, per non-first value), plain Chimp:
//! * `00` — XOR with previous is zero.
//! * `01` — trailing zeros > 6: 3-bit rounded leading code + 6-bit center
//!   length + center bits.
//! * `10` — reuse previous leading-zero count: `64 - lead` bits of XOR.
//! * `11` — new leading-zero count: 3-bit code + `64 - lead` bits of XOR.
//!
//! Chimp128 repurposes `00`/`01` to reference one of the previous 128 values
//! by a 7-bit index (exact match and big-trailing-zero match respectively).

use crate::bitio::{BitReader, BitWriter};
use crate::{Error, Result};

/// Rounded leading-zero buckets (value stored in 3 bits).
const LEADING_ROUND: [u8; 65] = {
    let mut t = [0u8; 65];
    let mut i = 0;
    while i <= 64 {
        // lint: allow(indexing) i <= 64 over a 65-entry table
        t[i] = match i {
            0..=7 => 0,
            8..=11 => 8,
            12..=15 => 12,
            16..=17 => 16,
            18..=19 => 18,
            20..=21 => 20,
            22..=23 => 22,
            _ => 24,
        };
        i += 1;
    }
    t
};

/// 3-bit code for each rounded bucket.
#[inline]
fn lead_code(rounded: u8) -> u64 {
    match rounded {
        0 => 0,
        8 => 1,
        12 => 2,
        16 => 3,
        18 => 4,
        20 => 5,
        22 => 6,
        _ => 7,
    }
}

/// Bucket value for each 3-bit code.
const LEAD_FROM_CODE: [u8; 8] = [0, 8, 12, 16, 18, 20, 22, 24];

fn header(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 5 + 12);
    // lint: allow(cast) encode side: block value counts are far smaller than 4 GiB
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    out
}

/// Compresses with plain Chimp.
pub fn compress(values: &[f64]) -> Vec<u8> {
    let mut out = header(values);
    if values.is_empty() {
        return out;
    }
    let mut w = BitWriter::with_capacity(values.len() * 5);
    // lint: allow(indexing) values is non-empty (checked above)
    let mut prev = values[0].to_bits();
    w.write_bits(prev, 64);
    let mut stored_lead: Option<u8> = None;
    // lint: allow(indexing) values is non-empty, so 1.. is in bounds
    for &v in &values[1..] {
        let bits = v.to_bits();
        let xor = bits ^ prev;
        prev = bits;
        if xor == 0 {
            w.write_bits(0b00, 2);
            stored_lead = None;
            continue;
        }
        // lint: allow(indexing) leading_zeros is at most 64 over a 65-entry table
        let lead = LEADING_ROUND[xor.leading_zeros() as usize];
        // lint: allow(cast) trailing_zeros is at most 64
        let trail = xor.trailing_zeros() as u8;
        if trail > 6 {
            let sig = 64 - lead - trail;
            w.write_bits(0b01, 2);
            w.write_bits(lead_code(lead), 3);
            w.write_bits(u64::from(sig), 6);
            w.write_bits(xor >> trail, sig);
            stored_lead = None;
        } else if Some(lead) == stored_lead {
            w.write_bits(0b10, 2);
            w.write_bits(xor, 64 - lead);
        } else {
            w.write_bits(0b11, 2);
            w.write_bits(lead_code(lead), 3);
            w.write_bits(xor, 64 - lead);
            stored_lead = Some(lead);
        }
    }
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Decompresses a plain-Chimp stream.
pub fn decompress(data: &[u8]) -> Result<Vec<f64>> {
    if data.len() < 4 {
        return Err(Error::UnexpectedEnd);
    }
    // lint: allow(indexing) data.len() >= 4 was checked above
    let count = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    // lint: allow(indexing) data.len() >= 4 was checked above
    let mut r = BitReader::new(&data[4..]);
    let mut prev = r.read_bits(64)?;
    out.push(f64::from_bits(prev));
    let mut stored_lead: u8 = 0;
    while out.len() < count {
        match r.read_bits(2)? {
            0b00 => {}
            0b01 => {
                // lint: allow(indexing) read_bits(3) returns at most 7 over an 8-entry table
                let lead = LEAD_FROM_CODE[r.read_bits(3)? as usize];
                // lint: allow(cast) read_bits(6) returns at most 63
                let sig = r.read_bits(6)? as u8;
                if u16::from(lead) + u16::from(sig) > 64 {
                    return Err(Error::Corrupt("chimp center exceeds 64 bits"));
                }
                let trail = 64 - lead - sig;
                prev ^= r.read_bits(sig)? << trail;
            }
            0b10 => {
                prev ^= r.read_bits(64 - stored_lead)?;
            }
            _ => {
                // lint: allow(indexing) read_bits(3) returns at most 7 over an 8-entry table
                stored_lead = LEAD_FROM_CODE[r.read_bits(3)? as usize];
                prev ^= r.read_bits(64 - stored_lead)?;
            }
        }
        out.push(f64::from_bits(prev));
    }
    Ok(out)
}

/// History window size for Chimp128.
const N: usize = 128;
const N_LOG2: u8 = 7;
/// Trailing-zero threshold for referencing an older value.
const THRESHOLD: u8 = 6 + N_LOG2;
/// Hash key: low `THRESHOLD + 1` bits of the representation.
// lint: allow(cast) widening u8 -> u32 (const context, From is unavailable)
const KEY_BITS: u32 = THRESHOLD as u32 + 1;
const KEY_MASK: u64 = (1u64 << KEY_BITS) - 1;

/// Compresses with Chimp128 (128-value history window).
pub fn compress128(values: &[f64]) -> Vec<u8> {
    let mut out = header(values);
    if values.is_empty() {
        return out;
    }
    let mut w = BitWriter::with_capacity(values.len() * 5);
    let mut stored = [0u64; N];
    // indices[key] = absolute position (1-based; 0 = unset) of the latest
    // value whose low KEY_BITS equal `key`.
    let mut indices = vec![0usize; 1 << KEY_BITS];
    // lint: allow(indexing) values is non-empty (checked above)
    let first = values[0].to_bits();
    w.write_bits(first, 64);
    // lint: allow(indexing) N > 0
    stored[0] = first;
    // lint: allow(indexing) key is masked with KEY_MASK over a 1 << KEY_BITS table
    indices[(first & KEY_MASK) as usize] = 1;
    let mut stored_lead: Option<u8> = None;
    for (i, &v) in values.iter().enumerate().skip(1) {
        let bits = v.to_bits();
        let pos = i; // absolute position of this value
        let key = (bits & KEY_MASK) as usize;
        // lint: allow(indexing) key is masked with KEY_MASK over a 1 << KEY_BITS table
        let cand_abs = indices[key];
        let mut handled = false;
        if cand_abs > 0 && pos - (cand_abs - 1) <= N {
            let cand_idx = (cand_abs - 1) % N;
            // lint: allow(indexing) cand_idx is reduced mod N
            let cand = stored[cand_idx];
            let xor = bits ^ cand;
            if xor == 0 {
                w.write_bits(0b00, 2);
                w.write_bits(cand_idx as u64, N_LOG2);
                stored_lead = None;
                handled = true;
            // lint: allow(cast) trailing_zeros is at most 64
            } else if xor.trailing_zeros() as u8 > THRESHOLD {
                // lint: allow(cast) trailing_zeros is at most 64
                let trail = xor.trailing_zeros() as u8;
                // lint: allow(indexing) leading_zeros is at most 64 over a 65-entry table
                let lead = LEADING_ROUND[xor.leading_zeros() as usize];
                let sig = 64 - lead - trail;
                w.write_bits(0b01, 2);
                w.write_bits(cand_idx as u64, N_LOG2);
                w.write_bits(lead_code(lead), 3);
                w.write_bits(u64::from(sig), 6);
                w.write_bits(xor >> trail, sig);
                stored_lead = None;
                handled = true;
            }
        }
        if !handled {
            // Fall back to plain Chimp against the immediately previous value.
            // lint: allow(indexing) index is reduced mod N
            let prev = stored[(pos - 1) % N];
            let xor = bits ^ prev;
            // lint: allow(indexing) leading_zeros is at most 64 over a 65-entry table
            let lead = LEADING_ROUND[xor.leading_zeros() as usize];
            if Some(lead) == stored_lead && xor != 0 {
                w.write_bits(0b10, 2);
                w.write_bits(xor, 64 - lead);
            } else {
                w.write_bits(0b11, 2);
                w.write_bits(lead_code(lead), 3);
                w.write_bits(xor, 64 - lead);
                stored_lead = Some(lead);
            }
        }
        // lint: allow(indexing) index is reduced mod N
        stored[pos % N] = bits;
        // lint: allow(indexing) key is masked with KEY_MASK over a 1 << KEY_BITS table
        indices[key] = pos + 1;
    }
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Decompresses a Chimp128 stream.
pub fn decompress128(data: &[u8]) -> Result<Vec<f64>> {
    if data.len() < 4 {
        return Err(Error::UnexpectedEnd);
    }
    // lint: allow(indexing) data.len() >= 4 was checked above
    let count = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    // lint: allow(indexing) data.len() >= 4 was checked above
    let mut r = BitReader::new(&data[4..]);
    let mut stored = [0u64; N];
    let first = r.read_bits(64)?;
    out.push(f64::from_bits(first));
    // lint: allow(indexing) N > 0
    stored[0] = first;
    let mut stored_lead: u8 = 0;
    while out.len() < count {
        let pos = out.len();
        let bits = match r.read_bits(2)? {
            0b00 => {
                let idx = r.read_bits(N_LOG2)? as usize;
                // lint: allow(indexing) read_bits(7) returns at most 127 = N - 1
                stored[idx]
            }
            0b01 => {
                let idx = r.read_bits(N_LOG2)? as usize;
                // lint: allow(indexing) read_bits(3) returns at most 7 over an 8-entry table
                let lead = LEAD_FROM_CODE[r.read_bits(3)? as usize];
                // lint: allow(cast) read_bits(6) returns at most 63
                let sig = r.read_bits(6)? as u8;
                if u16::from(lead) + u16::from(sig) > 64 {
                    return Err(Error::Corrupt("chimp128 center exceeds 64 bits"));
                }
                let trail = 64 - lead - sig;
                // lint: allow(indexing) read_bits(7) returns at most 127 = N - 1
                stored[idx] ^ (r.read_bits(sig)? << trail)
            }
            0b10 => {
                // lint: allow(indexing) index is reduced mod N
                let prev = stored[(pos - 1) % N];
                prev ^ r.read_bits(64 - stored_lead)?
            }
            _ => {
                // lint: allow(indexing) read_bits(3) returns at most 7 over an 8-entry table
                stored_lead = LEAD_FROM_CODE[r.read_bits(3)? as usize];
                // lint: allow(indexing) index is reduced mod N
                let prev = stored[(pos - 1) % N];
                prev ^ r.read_bits(64 - stored_lead)?
            }
        };
        // lint: allow(indexing) index is reduced mod N
        stored[pos % N] = bits;
        out.push(f64::from_bits(bits));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_bits_eq;

    #[test]
    fn chimp_roundtrip_tricky() {
        let values = crate::tricky_values();
        assert_bits_eq(&values, &decompress(&compress(&values)).unwrap());
    }

    #[test]
    fn chimp128_roundtrip_tricky() {
        let values = crate::tricky_values();
        assert_bits_eq(&values, &decompress128(&compress128(&values)).unwrap());
    }

    #[test]
    fn chimp128_exploits_periodicity() {
        // Period-16 series: plain Chimp sees noise, Chimp128 sees exact
        // repeats of values 16 positions back.
        let values: Vec<f64> = (0..4096).map(|i| ((i % 16) as f64).sqrt() * 13.7).collect();
        let plain = compress(&values);
        let windowed = compress128(&values);
        assert!(
            windowed.len() < plain.len(),
            "chimp128 ({}) should beat chimp ({}) on periodic data",
            windowed.len(),
            plain.len()
        );
        assert_bits_eq(&values, &decompress128(&windowed).unwrap());
    }

    #[test]
    fn chimp_handles_leading_zero_buckets() {
        // Exercise each rounding bucket via crafted XOR patterns.
        let mut values = vec![0.0f64];
        for shift in [0u32, 8, 12, 16, 18, 20, 22, 24, 40, 56, 63] {
            let prev = values.last().unwrap().to_bits();
            values.push(f64::from_bits(prev ^ (1u64 << (63 - shift))));
        }
        assert_bits_eq(&values, &decompress(&compress(&values)).unwrap());
        assert_bits_eq(&values, &decompress128(&compress128(&values)).unwrap());
    }

    #[test]
    fn truncated_streams_error() {
        let values: Vec<f64> = (0..100).map(|i| i as f64 * 0.3).collect();
        let c = compress(&values);
        assert!(decompress(&c[..c.len() - 2]).is_err());
        let c = compress128(&values);
        assert!(decompress128(&c[..c.len() - 2]).is_err());
    }

    #[test]
    fn leading_round_table_is_monotone() {
        for i in 1..=64usize {
            assert!(LEADING_ROUND[i] >= LEADING_ROUND[i - 1]);
            assert!(LEADING_ROUND[i] <= i as u8);
        }
        for (code, &bucket) in LEAD_FROM_CODE.iter().enumerate() {
            assert_eq!(lead_code(bucket), code as u64);
        }
    }
}
