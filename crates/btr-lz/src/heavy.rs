//! The "heavy" codec: LZ77 with lazy matching + canonical Huffman (Zstd
//! stand-in).
//!
//! Stage 1 produces the same byte-aligned token stream as
//! [`crate::snappy_like`] but searches harder: a 4-entry hash chain and
//! one-step lazy matching (defer a match if the next position has a longer
//! one). Stage 2 Huffman-codes the token bytes.
//!
//! Format: `u32 LE uncompressed length`, `u32 LE token-stream length`,
//! 256 code lengths (1 byte each), then the Huffman-coded token stream.

use crate::{huffman, snappy_like, Error, Result};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 131;
const HASH_BITS: u32 = 16;
const WINDOW: usize = 65_535;
const CHAIN: usize = 8;

/// Callers guarantee `bytes` holds at least 4 bytes.
#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // lint: allow(indexing) caller guarantees at least 4 bytes
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E3779B1) >> (32 - HASH_BITS)) as usize
}

/// Finds the best match for `pos`, probing a small hash chain.
fn best_match(input: &[u8], pos: usize, table: &[Vec<u32>]) -> Option<(usize, usize)> {
    if pos + MIN_MATCH > input.len() {
        return None;
    }
    // lint: allow(indexing) pos + MIN_MATCH <= input.len() checked above; hash is masked to HASH_BITS
    let bucket = &table[hash4(&input[pos..])];
    let mut best: Option<(usize, usize)> = None;
    for &cand in bucket.iter().rev().take(CHAIN) {
        let cand = cand as usize;
        if pos - cand > WINDOW {
            break;
        }
        // lint: allow(indexing) cand < pos and pos + MIN_MATCH <= input.len()
        if input[cand..cand + MIN_MATCH] != input[pos..pos + MIN_MATCH] {
            continue;
        }
        let mut len = MIN_MATCH;
        let max = (input.len() - pos).min(MAX_MATCH);
        // lint: allow(indexing) len < max <= input.len() - pos and cand < pos
        while len < max && input[cand + len] == input[pos + len] {
            len += 1;
        }
        if best.is_none_or(|(blen, _)| len > blen) {
            best = Some((len, pos - cand));
        }
    }
    best
}

fn emit_literals(out: &mut Vec<u8>, lits: &[u8]) {
    for chunk in lits.chunks(128) {
        // lint: allow(cast) chunks(128) yields at most 128 bytes
        out.push((chunk.len() - 1) as u8);
        out.extend_from_slice(chunk);
    }
}

/// LZ77 stage with lazy matching; produces the snappy-like token format.
fn lz_tokens(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table: Vec<Vec<u32>> = vec![Vec::new(); 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut lit_start = 0usize;
    while pos + MIN_MATCH <= input.len() {
        let m = best_match(input, pos, &table);
        // lint: allow(indexing) loop condition guarantees pos + 4 <= input.len(); hash is masked
        // lint: allow(cast) encode side: position fits u32 for any realistic input
        table[hash4(&input[pos..])].push(pos as u32);
        let Some((len, offset)) = m else {
            pos += 1;
            continue;
        };
        // Lazy matching: if the next position has a strictly longer match,
        // emit this byte as a literal and take the later match instead.
        if pos + 1 + MIN_MATCH <= input.len() {
            if let Some((next_len, _)) = best_match(input, pos + 1, &table) {
                if next_len > len + 1 {
                    pos += 1;
                    continue;
                }
            }
        }
        // lint: allow(indexing) lit_start <= pos <= input.len()
        emit_literals(&mut out, &input[lit_start..pos]);
        // lint: allow(cast) len - MIN_MATCH <= MAX_MATCH - MIN_MATCH = 127
        out.push(0x80 | (len - MIN_MATCH) as u8);
        // lint: allow(cast) best_match offsets are bounded by WINDOW = 65535
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        // Index the skipped positions so later matches can reference them.
        for p in pos + 1..(pos + len).min(input.len().saturating_sub(MIN_MATCH - 1)) {
            // lint: allow(indexing) p + 4 <= input.len() by the range bound; hash is masked
            // lint: allow(cast) encode side: position fits u32 for any realistic input
            table[hash4(&input[p..])].push(p as u32);
        }
        pos += len;
        lit_start = pos;
    }
    // lint: allow(indexing) lit_start <= input.len()
    emit_literals(&mut out, &input[lit_start..]);
    out
}

/// Compresses `input`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let tokens = lz_tokens(input);
    let mut freqs = [0u64; 256];
    for &b in &tokens {
        // lint: allow(indexing) u8 index into a 256-entry array
        freqs[usize::from(b)] += 1;
    }
    let lens = huffman::code_lengths(&freqs);
    let encoded = huffman::encode(&tokens, &lens);
    let mut out = Vec::with_capacity(encoded.len() + 128 + 9);
    // lint: allow(cast) encode side: input is far smaller than 4 GiB
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    // lint: allow(cast) encode side: token stream is bounded by input size
    out.extend_from_slice(&(tokens.len() as u32).to_le_bytes());
    // Code-length table: sparse `[1][n][sym,len]*` when few symbols are
    // active, dense `[0][256 lens]` otherwise.
    // lint: allow(indexing) u8 index into a 256-entry array
    let nonzero: Vec<u8> = (0..=255u8).filter(|&s| lens[usize::from(s)] > 0).collect();
    if nonzero.len() < 120 {
        out.push(1);
        // lint: allow(cast) nonzero.len() < 120 was checked above
        out.push(nonzero.len() as u8);
        for &sym in &nonzero {
            out.push(sym);
            // lint: allow(indexing) u8 index into a 256-entry array
            out.push(lens[usize::from(sym)]);
        }
    } else {
        out.push(0);
        out.extend_from_slice(&lens);
    }
    out.extend_from_slice(&encoded);
    out
}

/// Decompresses data produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>> {
    if input.len() < 9 {
        return Err(Error::UnexpectedEnd);
    }
    // lint: allow(indexing) input.len() >= 9 was checked above
    let raw_len = u32::from_le_bytes([input[0], input[1], input[2], input[3]]) as usize;
    // lint: allow(indexing) input.len() >= 9 was checked above
    let token_len = u32::from_le_bytes([input[4], input[5], input[6], input[7]]) as usize;
    let mut lens = [0u8; 256];
    let body_start;
    // lint: allow(indexing) input.len() >= 9 was checked above
    if input[8] == 1 {
        let n = usize::from(*input.get(9).ok_or(Error::UnexpectedEnd)?);
        if input.len() < 10 + 2 * n {
            return Err(Error::UnexpectedEnd);
        }
        // lint: allow(indexing) input.len() >= 10 + 2n was checked above
        for pair in input[10..10 + 2 * n].chunks_exact(2) {
            // lint: allow(indexing) chunks_exact(2) yields exactly 2 bytes; u8 indexes a 256-entry array
            lens[usize::from(pair[0])] = pair[1];
        }
        body_start = 10 + 2 * n;
    } else {
        if input.len() < 9 + 256 {
            return Err(Error::UnexpectedEnd);
        }
        // lint: allow(indexing) input.len() >= 9 + 256 was checked above
        lens.copy_from_slice(&input[9..9 + 256]);
        body_start = 9 + 256;
    }
    let decoder = huffman::Decoder::new(&lens)?;
    // lint: allow(indexing) body_start <= input.len() by the header checks above
    let tokens = decoder.decode(&input[body_start..], token_len)?;
    // Reuse the snappy-like token decoder by prefixing the raw length.
    let mut framed = Vec::with_capacity(tokens.len() + 4);
    // lint: allow(cast) raw_len was read from a u32 field, so it round-trips
    framed.extend_from_slice(&(raw_len as u32).to_le_bytes());
    framed.extend_from_slice(&tokens);
    snappy_like::decompress(&framed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) {
        let comp = compress(input);
        assert_eq!(decompress(&comp).unwrap(), input);
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(&b"mississippi mississippi mississippi".repeat(10));
    }

    #[test]
    fn roundtrip_binary() {
        let input: Vec<u8> = (0u64..8192)
            .map(|i| (i.wrapping_mul(0x2545F4914F6CDD1D) >> 32) as u8)
            .collect();
        roundtrip(&input);
    }

    #[test]
    fn lazy_matching_tokens_roundtrip() {
        // Construct data where position p has a 4-match but p+1 has a longer
        // one, to exercise the lazy path.
        let mut input = Vec::new();
        input.extend_from_slice(b"abcdXYZ12345678");
        input.extend_from_slice(b"zabcd");
        input.extend_from_slice(b"XYZ12345678tail");
        roundtrip(&input);
    }

    #[test]
    fn dense_on_structured_data() {
        let input: Vec<u8> = (0..2000u32).flat_map(|i| (i % 50).to_le_bytes()).collect();
        let comp = compress(&input);
        assert!(comp.len() * 3 < input.len(), "got {} for {}", comp.len(), input.len());
        assert_eq!(decompress(&comp).unwrap(), input);
    }

    #[test]
    fn truncated_is_error() {
        let comp = compress(&b"hello world hello world".repeat(5));
        assert!(decompress(&comp[..comp.len() - 1]).is_err());
        assert!(decompress(&comp[..20]).is_err());
    }
}
