//! General-purpose byte compression for the BtrBlocks reproduction.
//!
//! The paper layers Snappy and Zstd on top of Parquet to get its
//! `Parquet+Snappy` / `Parquet+Zstd` baselines. Neither library is available
//! offline, so this crate provides two from-scratch codecs occupying the same
//! two points on the speed/ratio trade-off curve:
//!
//! * [`snappy_like`] — a greedy, byte-aligned LZ77 with a 64 KiB window and
//!   hash-table match finding. Fast to decompress (pure byte copies, no bit
//!   twiddling), moderate ratio. Stands in for Snappy/LZ4.
//! * [`heavy`] — the same LZ77 front end with a longer lazy-matching search,
//!   followed by a canonical-Huffman entropy stage over the token stream.
//!   Denser but slower to decompress (bit-level decoding). Stands in for
//!   Zstd.
//!
//! The substitution is documented in `DESIGN.md`; what the experiments need
//! is the *relationship* (heavy compresses better, decompresses slower), not
//! the exact byte streams.

pub mod heavy;
pub mod huffman;
pub mod snappy_like;

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The compressed buffer ended unexpectedly.
    UnexpectedEnd,
    /// Structurally invalid compressed data.
    Corrupt(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnexpectedEnd => write!(f, "compressed buffer ended unexpectedly"),
            Error::Corrupt(m) => write!(f, "corrupt compressed data: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// General-purpose codec selector used by the file formats, mirroring
/// Parquet's per-file `compression` option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// No general-purpose compression (plain encoded bytes).
    #[default]
    None,
    /// Fast byte-aligned LZ (Snappy/LZ4 stand-in).
    SnappyLike,
    /// LZ + Huffman (Zstd stand-in).
    Heavy,
}

impl Codec {
    /// Name used in benchmark output, matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Codec::None => "none",
            Codec::SnappyLike => "snappy",
            Codec::Heavy => "zstd",
        }
    }

    /// Compresses `input` with this codec.
    pub fn compress(self, input: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => input.to_vec(),
            Codec::SnappyLike => snappy_like::compress(input),
            Codec::Heavy => heavy::compress(input),
        }
    }

    /// Decompresses data produced by [`Codec::compress`].
    pub fn decompress(self, input: &[u8]) -> Result<Vec<u8>> {
        match self {
            Codec::None => Ok(input.to_vec()),
            Codec::SnappyLike => snappy_like::decompress(input),
            Codec::Heavy => heavy::decompress(input),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_text() -> Vec<u8> {
        b"the quick brown fox jumps over the lazy dog. the quick brown fox again. "
            .repeat(50)
    }

    #[test]
    fn all_codecs_roundtrip_text() {
        let input = sample_text();
        for codec in [Codec::None, Codec::SnappyLike, Codec::Heavy] {
            let comp = codec.compress(&input);
            assert_eq!(codec.decompress(&comp).unwrap(), input, "{}", codec.name());
        }
    }

    #[test]
    fn heavy_beats_snappy_on_text() {
        let input = sample_text();
        let s = Codec::SnappyLike.compress(&input).len();
        let h = Codec::Heavy.compress(&input).len();
        assert!(s < input.len(), "snappy-like must compress text");
        assert!(h < s, "heavy ({h}) must be denser than snappy-like ({s})");
    }

    #[test]
    fn all_codecs_roundtrip_empty_and_tiny() {
        for codec in [Codec::None, Codec::SnappyLike, Codec::Heavy] {
            for input in [b"".as_slice(), b"a", b"ab", b"abc"] {
                let comp = codec.compress(input);
                assert_eq!(codec.decompress(&comp).unwrap(), input);
            }
        }
    }

    #[test]
    fn all_codecs_roundtrip_incompressible() {
        // Pseudo-random bytes: must round-trip and not blow up badly.
        let input: Vec<u8> = (0u64..4096)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 56) as u8)
            .collect();
        for codec in [Codec::SnappyLike, Codec::Heavy] {
            let comp = codec.compress(&input);
            assert!(comp.len() < input.len() * 2, "{}", codec.name());
            assert_eq!(codec.decompress(&comp).unwrap(), input);
        }
    }
}
