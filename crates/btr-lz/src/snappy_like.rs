//! Fast byte-aligned LZ77 (Snappy/LZ4 stand-in).
//!
//! Format: `u32 LE uncompressed length`, then a token stream:
//! * control byte `< 0x80` — literal run of `control + 1` bytes (1..=128)
//!   follows inline,
//! * control byte `>= 0x80` — match of length `(control & 0x7F) + MIN_MATCH`
//!   (4..=131) at a 2-byte little-endian backwards `offset` (1..=65535).
//!
//! Match finding is a single-probe hash table over 4-byte prefixes — the
//! same "good enough, never slow" strategy Snappy uses.

use crate::{Error, Result};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 131;
const HASH_BITS: u32 = 15;
const WINDOW: usize = 65_535;

/// Callers guarantee `bytes` holds at least 4 bytes.
#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // lint: allow(indexing) caller guarantees at least 4 bytes (pos + MIN_MATCH <= len)
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E3779B1) >> (32 - HASH_BITS)) as usize
}

fn emit_literals(out: &mut Vec<u8>, lits: &[u8]) {
    for chunk in lits.chunks(128) {
        // lint: allow(cast) chunks(128) yields at most 128 bytes
        out.push((chunk.len() - 1) as u8);
        out.extend_from_slice(chunk);
    }
}

/// Compresses `input`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // lint: allow(cast) encode side: input is far smaller than 4 GiB
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut lit_start = 0usize;
    while pos + MIN_MATCH <= input.len() {
        // lint: allow(indexing) loop condition guarantees pos + 4 <= input.len()
        let h = hash4(&input[pos..]);
        // lint: allow(indexing) hash4 output is masked to HASH_BITS; table has 1 << HASH_BITS slots
        let cand = table[h];
        // lint: allow(indexing) hash4 output is masked to HASH_BITS; table has 1 << HASH_BITS slots
        table[h] = pos;
        if cand != usize::MAX
            && pos - cand <= WINDOW
            // lint: allow(indexing) cand < pos and pos + MIN_MATCH <= input.len()
            && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            // Extend the match.
            let mut len = MIN_MATCH;
            let max = (input.len() - pos).min(MAX_MATCH);
            // lint: allow(indexing) len < max <= input.len() - pos and cand < pos
            while len < max && input[cand + len] == input[pos + len] {
                len += 1;
            }
            // lint: allow(indexing) lit_start <= pos <= input.len()
            emit_literals(&mut out, &input[lit_start..pos]);
            // lint: allow(cast) pos - cand <= WINDOW = 65535 fits u16
            let offset = (pos - cand) as u16;
            // lint: allow(cast) len - MIN_MATCH <= MAX_MATCH - MIN_MATCH = 127
            out.push(0x80 | (len - MIN_MATCH) as u8);
            out.extend_from_slice(&offset.to_le_bytes());
            pos += len;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    // lint: allow(indexing) lit_start <= input.len()
    emit_literals(&mut out, &input[lit_start..]);
    out
}

/// Decompresses data produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>> {
    if input.len() < 4 {
        return Err(Error::UnexpectedEnd);
    }
    // lint: allow(indexing) input.len() >= 4 was checked above
    let n = u32::from_le_bytes([input[0], input[1], input[2], input[3]]) as usize;
    // The densest token is a 3-byte match emitting MAX_MATCH bytes, so no
    // honest stream expands further than that ratio. A corrupt length field
    // must be rejected here, before it becomes a multi-gigabyte reservation.
    if n > (input.len() - 4).saturating_mul(MAX_MATCH.div_ceil(3)) {
        return Err(Error::Corrupt("declared length exceeds maximum expansion"));
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 4usize;
    while out.len() < n {
        let Some(&control) = input.get(pos) else {
            return Err(Error::UnexpectedEnd);
        };
        pos += 1;
        if control < 0x80 {
            let len = usize::from(control) + 1;
            if pos + len > input.len() {
                return Err(Error::UnexpectedEnd);
            }
            // lint: allow(indexing) pos + len <= input.len() was checked above
            out.extend_from_slice(&input[pos..pos + len]);
            pos += len;
        } else {
            if pos + 2 > input.len() {
                return Err(Error::UnexpectedEnd);
            }
            // lint: allow(indexing) pos + 2 <= input.len() was checked above
            let offset = usize::from(u16::from_le_bytes([input[pos], input[pos + 1]]));
            pos += 2;
            let len = usize::from(control & 0x7F) + MIN_MATCH;
            if offset == 0 || offset > out.len() {
                return Err(Error::Corrupt("match offset out of range"));
            }
            let start = out.len() - offset;
            if offset >= len {
                // Non-overlapping: one bulk copy.
                out.extend_from_within(start..start + len);
            } else {
                // Overlapping (RLE-style, e.g. offset 1): the pattern repeats,
                // so copy in pattern-sized doublings.
                let mut copied = 0usize;
                while copied < len {
                    let take = offset.min(len - copied);
                    out.extend_from_within(start + copied..start + copied + take);
                    copied += take;
                }
            }
        }
    }
    if out.len() != n {
        return Err(Error::Corrupt("decompressed length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) {
        let comp = compress(input);
        assert_eq!(decompress(&comp).unwrap(), input);
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaa");
        roundtrip(b"abcabcabcabcabcabcabcabc");
        roundtrip(b"long literal with no repeats 0123456789".as_ref());
    }

    #[test]
    fn overlapping_match_rle_style() {
        let input = vec![7u8; 10_000];
        let comp = compress(&input);
        assert!(comp.len() < 400, "RLE-like input should shrink, got {}", comp.len());
        assert_eq!(decompress(&comp).unwrap(), input);
    }

    #[test]
    fn long_matches_split_at_max() {
        let pattern: Vec<u8> = (0..=255u8).collect();
        let input = pattern.repeat(40);
        roundtrip(&input);
    }

    #[test]
    fn corrupt_offset_is_error() {
        // control = match, offset 5 with empty output so far.
        let mut buf = 4u32.to_le_bytes().to_vec();
        buf.push(0x80);
        buf.extend_from_slice(&5u16.to_le_bytes());
        assert!(decompress(&buf).is_err());
    }

    #[test]
    fn truncated_is_error() {
        let comp = compress(b"hello hello hello hello");
        assert!(decompress(&comp[..comp.len() - 1]).is_err());
        assert!(decompress(&[0, 0]).is_err());
    }
}
