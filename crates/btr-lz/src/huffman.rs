//! Canonical Huffman coding over bytes.
//!
//! Used as the entropy stage of the [`crate::heavy`] codec. Code lengths are
//! limited to [`MAX_CODE_LEN`] bits by frequency flattening; the header
//! stores one length per symbol, from which both sides derive the canonical
//! code assignment (shorter codes first, ties by symbol value).

use crate::{Error, Result};

/// Upper bound on code length; keeps the decoder tables small.
pub const MAX_CODE_LEN: u8 = 15;

/// Computes Huffman code lengths for the given symbol frequencies, with all
/// lengths ≤ [`MAX_CODE_LEN`]. Zero-frequency symbols get length 0.
pub fn code_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    let mut freqs = *freqs;
    loop {
        let lens = unrestricted_lengths(&freqs);
        if lens.iter().all(|&l| l <= MAX_CODE_LEN) {
            return lens;
        }
        // Flatten the distribution and retry; converges quickly because each
        // halving shrinks the frequency ratio that causes deep trees.
        for f in freqs.iter_mut() {
            if *f > 0 {
                *f = (*f / 2).max(1);
            }
        }
    }
}

fn unrestricted_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    // Package the active symbols into a heap of (weight, node) and merge.
    #[derive(Clone)]
    enum Node {
        Leaf(u8),
        Internal(Box<Node>, Box<Node>),
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32, usize)>> =
        std::collections::BinaryHeap::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut seq = 0u32; // tie-breaker for determinism
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            // lint: allow(cast) sym enumerates a 256-entry array
            nodes.push(Node::Leaf(sym as u8));
            heap.push(std::cmp::Reverse((f, seq, nodes.len() - 1)));
            seq += 1;
        }
    }
    let mut lens = [0u8; 256];
    match heap.len() {
        0 => return lens,
        1 => {
            // A single distinct symbol still needs a 1-bit code.
            // lint: allow(indexing) heap.len() == 1 implies nodes is non-empty
            if let Node::Leaf(sym) = nodes[0] {
                // lint: allow(indexing) u8 index into a 256-entry array
                lens[usize::from(sym)] = 1;
            }
            return lens;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let std::cmp::Reverse((fa, _, ia)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse((fb, _, ib)) = heap.pop().expect("len > 1");
        let merged = Node::Internal(
            // lint: allow(indexing) heap entries always hold valid nodes indices
            Box::new(nodes[ia].clone()),
            // lint: allow(indexing) heap entries always hold valid nodes indices
            Box::new(nodes[ib].clone()),
        );
        nodes.push(merged);
        heap.push(std::cmp::Reverse((fa + fb, seq, nodes.len() - 1)));
        seq += 1;
    }
    let std::cmp::Reverse((_, _, root)) = heap.pop().expect("root");
    // Depth-first traversal assigning depths.
    fn assign(node: &Node, depth: u8, lens: &mut [u8; 256]) {
        match node {
            // lint: allow(indexing) u8 index into a 256-entry array
            Node::Leaf(sym) => lens[usize::from(*sym)] = depth.max(1),
            Node::Internal(a, b) => {
                assign(a, depth + 1, lens);
                assign(b, depth + 1, lens);
            }
        }
    }
    // lint: allow(indexing) root came off the heap, so it is a valid nodes index
    assign(&nodes[root], 0, &mut lens);
    lens
}

/// Canonical code assignment: returns `codes[sym]` (MSB-first bit patterns).
pub fn canonical_codes(lens: &[u8; 256]) -> [u16; 256] {
    let mut count = [0u16; MAX_CODE_LEN as usize + 1];
    for &l in lens.iter() {
        // lint: allow(indexing) callers validate l <= MAX_CODE_LEN; count has MAX_CODE_LEN + 1 slots
        count[usize::from(l)] += 1;
    }
    // lint: allow(indexing) constant index 0
    count[0] = 0;
    let mut next = [0u16; MAX_CODE_LEN as usize + 2];
    let mut code = 0u16;
    for len in 1..=usize::from(MAX_CODE_LEN) {
        // lint: allow(indexing) len ranges over 1..=MAX_CODE_LEN; both arrays are larger
        code = (code + count[len - 1]) << 1;
        // lint: allow(indexing) len ranges over 1..=MAX_CODE_LEN; both arrays are larger
        next[len] = code;
    }
    let mut codes = [0u16; 256];
    for sym in 0..256 {
        // lint: allow(indexing) sym < 256 over 256-entry arrays
        let l = usize::from(lens[sym]);
        if l > 0 {
            // lint: allow(indexing) sym < 256; l <= MAX_CODE_LEN bounds next
            codes[sym] = next[l];
            // lint: allow(indexing) l <= MAX_CODE_LEN bounds next
            next[l] += 1;
        }
    }
    codes
}

/// Encodes `input` with the canonical code defined by `lens`.
pub fn encode(input: &[u8], lens: &[u8; 256]) -> Vec<u8> {
    let codes = canonical_codes(lens);
    let mut out = Vec::with_capacity(input.len() / 2 + 8);
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &b in input {
        // lint: allow(indexing) u8 index into a 256-entry array
        let l = u32::from(lens[usize::from(b)]);
        debug_assert!(l > 0, "symbol without code");
        // lint: allow(indexing) u8 index into a 256-entry array
        acc = (acc << l) | u64::from(codes[usize::from(b)]);
        nbits += l;
        while nbits >= 8 {
            nbits -= 8;
            // lint: allow(cast) deliberate truncation: emit the low 8 bits of the reservoir
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        // lint: allow(cast) deliberate truncation: emit the final partial byte
        out.push((acc << (8 - nbits)) as u8);
    }
    out
}

/// Table-driven decoder: one [`MAX_CODE_LEN`]-bit peek resolves a symbol and
/// its code length in a single lookup, so decoding costs O(1) per symbol
/// instead of O(bits). The table has `2^15` entries of `(symbol, len)`.
pub struct Decoder {
    /// `lut[peek] = (symbol, code_len)`; `code_len == 0` marks invalid codes.
    lut: Vec<(u8, u8)>,
}

impl Decoder {
    /// Builds a decoder from code lengths.
    pub fn new(lens: &[u8; 256]) -> Result<Decoder> {
        if lens.iter().any(|&l| l > MAX_CODE_LEN) {
            return Err(Error::Corrupt("huffman code length too large"));
        }
        // A corrupt length table can over-subscribe the code space, pushing
        // the canonical assignment past the end of the lookup table. Kraft's
        // inequality is exactly the fits-in-the-table condition.
        let space: u64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_CODE_LEN - l))
            .sum();
        if space > 1u64 << MAX_CODE_LEN {
            return Err(Error::Corrupt("huffman code lengths over-subscribed"));
        }
        let codes = canonical_codes(lens);
        let mut lut = vec![(0u8, 0u8); 1 << MAX_CODE_LEN];
        for sym in 0..256usize {
            // lint: allow(indexing) sym < 256 over a 256-entry array
            let len = lens[sym];
            if len == 0 {
                continue;
            }
            // All table entries whose top `len` bits equal the code map here.
            let shift = MAX_CODE_LEN - len;
            // lint: allow(indexing) sym < 256 over a 256-entry array
            let base = usize::from(codes[sym]) << shift;
            for fill in 0..(1usize << shift) {
                // lint: allow(indexing) Kraft check above guarantees base | fill < 2^MAX_CODE_LEN
                // lint: allow(cast) sym < 256
                lut[base | fill] = (sym as u8, len);
            }
        }
        Ok(Decoder { lut })
    }

    /// Decodes exactly `n` symbols from `input`.
    pub fn decode(&self, input: &[u8], n: usize) -> Result<Vec<u8>> {
        // Every symbol consumes at least one bit, so a count beyond the
        // input's bit length cannot be satisfied; reject it before reserving.
        if n > input.len().saturating_mul(8) {
            return Err(Error::UnexpectedEnd);
        }
        let mut out = Vec::with_capacity(n);
        // Bit reservoir: `avail` valid bits in the low end of `acc`.
        let mut acc: u64 = 0;
        let mut avail: u32 = 0;
        let mut pos = 0usize;
        let max_len = u32::from(MAX_CODE_LEN);
        while out.len() < n {
            while avail < max_len && pos < input.len() {
                // lint: allow(indexing) pos < input.len() by the loop condition
                acc = (acc << 8) | u64::from(input[pos]);
                pos += 1;
                avail += 8;
            }
            if avail == 0 {
                return Err(Error::UnexpectedEnd);
            }
            // Left-align a MAX_CODE_LEN-bit peek (zero-padded at stream end).
            let peek = if avail >= max_len {
                (acc >> (avail - max_len)) as usize & ((1 << max_len) - 1)
            } else {
                ((acc << (max_len - avail)) as usize) & ((1 << max_len) - 1)
            };
            // lint: allow(indexing) peek is masked to MAX_CODE_LEN bits; lut has 2^MAX_CODE_LEN entries
            let (sym, len) = self.lut[peek];
            if len == 0 || u32::from(len) > avail {
                return Err(Error::UnexpectedEnd);
            }
            out.push(sym);
            avail -= u32::from(len);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freqs_of(input: &[u8]) -> [u64; 256] {
        let mut f = [0u64; 256];
        for &b in input {
            f[usize::from(b)] += 1;
        }
        f
    }

    fn roundtrip(input: &[u8]) {
        let lens = code_lengths(&freqs_of(input));
        let enc = encode(input, &lens);
        let dec = Decoder::new(&lens).unwrap().decode(&enc, input.len()).unwrap();
        assert_eq!(dec, input);
    }

    #[test]
    fn roundtrip_text() {
        roundtrip(b"abracadabra abracadabra abracadabra");
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[42u8; 100]);
    }

    #[test]
    fn roundtrip_two_symbols() {
        let input: Vec<u8> = (0..1000).map(|i| if i % 10 == 0 { 1 } else { 0 }).collect();
        roundtrip(&input);
    }

    #[test]
    fn roundtrip_all_bytes() {
        let input: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        roundtrip(&input);
    }

    #[test]
    fn skewed_distribution_respects_max_len() {
        // Fibonacci-like frequencies force deep unrestricted trees.
        let mut freqs = [0u64; 256];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut().take(40) {
            *f = a;
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs);
        assert!(lens.iter().all(|&l| l <= MAX_CODE_LEN));
        // And the resulting canonical code must still be decodable.
        let input: Vec<u8> = (0..40u8).flat_map(|s| std::iter::repeat_n(s, 3)).collect();
        let enc = encode(&input, &lens);
        let dec = Decoder::new(&lens).unwrap().decode(&enc, input.len()).unwrap();
        assert_eq!(dec, input);
    }

    #[test]
    fn entropy_reduction_on_skew() {
        let input: Vec<u8> = (0..10_000).map(|i| if i % 20 == 0 { b'x' } else { b'a' }).collect();
        let lens = code_lengths(&freqs_of(&input));
        let enc = encode(&input, &lens);
        assert!(enc.len() * 4 < input.len(), "got {} bytes", enc.len());
    }

    #[test]
    fn decoder_rejects_overlong_lengths() {
        let mut lens = [0u8; 256];
        lens[0] = MAX_CODE_LEN + 1;
        assert!(Decoder::new(&lens).is_err());
    }
}
