//! Property tests: both general-purpose codecs must round-trip arbitrary
//! bytes, including highly repetitive and incompressible inputs.

use btr_lz::Codec;
use proptest::prelude::*;

fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        proptest::collection::vec(any::<u8>(), 0..4000),
        // Repetitive text-like data (exercises long matches).
        ("[a-d]{1,40}", 1usize..60).prop_map(|(s, n)| s.repeat(n).into_bytes()),
        // Low-entropy data (exercises deep Huffman codes).
        proptest::collection::vec(prop_oneof![9 => Just(0u8), 1 => any::<u8>()], 0..4000),
    ]
}

proptest! {
    #[test]
    fn snappy_like_roundtrips(input in arb_bytes()) {
        let comp = Codec::SnappyLike.compress(&input);
        prop_assert_eq!(Codec::SnappyLike.decompress(&comp).unwrap(), input);
    }

    #[test]
    fn heavy_roundtrips(input in arb_bytes()) {
        let comp = Codec::Heavy.compress(&input);
        prop_assert_eq!(Codec::Heavy.decompress(&comp).unwrap(), input);
    }

    #[test]
    fn huffman_roundtrips(input in proptest::collection::vec(any::<u8>(), 1..3000)) {
        let mut freqs = [0u64; 256];
        for &b in &input {
            freqs[usize::from(b)] += 1;
        }
        let lens = btr_lz::huffman::code_lengths(&freqs);
        let enc = btr_lz::huffman::encode(&input, &lens);
        let dec = btr_lz::huffman::Decoder::new(&lens).unwrap().decode(&enc, input.len()).unwrap();
        prop_assert_eq!(dec, input);
    }
}
