//! Randomized round-trip tests: both general-purpose codecs must round-trip
//! arbitrary bytes, including highly repetitive and incompressible inputs.
//! Deterministic (seeded xorshift) so runs are reproducible offline.

use btr_corrupt::rng::Xorshift;
use btr_lz::Codec;

/// Three input shapes: arbitrary bytes, repetitive text-like data (exercises
/// long matches), and low-entropy data (exercises deep Huffman codes).
fn arb_bytes(rng: &mut Xorshift) -> Vec<u8> {
    match rng.gen_range(0..3u32) {
        0 => {
            let len = rng.gen_range(0..4000usize);
            let mut out = vec![0u8; len];
            rng.fill_bytes(&mut out);
            out
        }
        1 => {
            let unit_len = rng.gen_range(1..=40usize);
            let unit: Vec<u8> = (0..unit_len).map(|_| b'a' + rng.gen_range(0u8..4)).collect();
            let reps = rng.gen_range(1..60usize);
            unit.repeat(reps)
        }
        _ => {
            let len = rng.gen_range(0..4000usize);
            (0..len)
                .map(|_| if rng.gen_bool(0.9) { 0u8 } else { rng.next_u32() as u8 })
                .collect()
        }
    }
}

#[test]
fn snappy_like_roundtrips() {
    let mut rng = Xorshift::new(0x31);
    for _ in 0..300 {
        let input = arb_bytes(&mut rng);
        let comp = Codec::SnappyLike.compress(&input);
        assert_eq!(Codec::SnappyLike.decompress(&comp).unwrap(), input);
    }
}

#[test]
fn heavy_roundtrips() {
    let mut rng = Xorshift::new(0x32);
    for _ in 0..200 {
        let input = arb_bytes(&mut rng);
        let comp = Codec::Heavy.compress(&input);
        assert_eq!(Codec::Heavy.decompress(&comp).unwrap(), input);
    }
}

#[test]
fn huffman_roundtrips() {
    let mut rng = Xorshift::new(0x33);
    for _ in 0..200 {
        let len = rng.gen_range(1..3000usize);
        let mut input = vec![0u8; len];
        rng.fill_bytes(&mut input);
        let mut freqs = [0u64; 256];
        for &b in &input {
            freqs[usize::from(b)] += 1;
        }
        let lens = btr_lz::huffman::code_lengths(&freqs);
        let enc = btr_lz::huffman::encode(&input, &lens);
        let dec = btr_lz::huffman::Decoder::new(&lens).unwrap().decode(&enc, input.len()).unwrap();
        assert_eq!(dec, input);
    }
}
