//! TPC-H-like column generators.
//!
//! The paper contrasts Public BI with TPC-H (Table 2): TPC-H is normalized,
//! uniform and independent — unique keys, one-size-range prices, random-text
//! comments — which makes it compress far worse (strings 3.3× vs 10.2×,
//! integers 1.6× vs 5.4×). These generators reproduce dbgen's distributions
//! for the lineitem/orders columns that dominate TPC-H's volume.

use crate::{words, GenColumn};
use btrblocks::{ColumnData, StringArena};
use btr_corrupt::rng::Xorshift as StdRng;

fn rng_for(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ salt.wrapping_mul(0xD1B54A32D192ED03))
}

fn str_col(
    dataset: &'static str,
    column: &'static str,
    note: &'static str,
    strings: Vec<String>,
) -> GenColumn {
    let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
    GenColumn {
        dataset,
        column,
        note,
        data: ColumnData::Str(StringArena::from_strs(&refs)),
    }
}

/// l_orderkey: ascending keys repeated 1–7 times (lineitems per order).
pub fn l_orderkey(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 1);
    let mut values = Vec::with_capacity(rows);
    let mut key = 1i32;
    while values.len() < rows {
        let lines = rng.gen_range(1usize..=7).min(rows - values.len());
        values.extend(std::iter::repeat_n(key, lines));
        key += rng.gen_range(1..=4) * 8 - 7; // dbgen's sparse key space
    }
    GenColumn {
        dataset: "tpch",
        column: "l_orderkey",
        note: "ascending sparse keys, short runs",
        data: ColumnData::Int(values),
    }
}

/// l_partkey: uniform foreign key — the "unrealistically normalized" case.
pub fn l_partkey(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 2);
    GenColumn {
        dataset: "tpch",
        column: "l_partkey",
        note: "uniform FK; barely compressible",
        data: ColumnData::Int((0..rows).map(|_| rng.gen_range(1..200_000)).collect()),
    }
}

/// l_suppkey: uniform foreign key.
pub fn l_suppkey(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 3);
    GenColumn {
        dataset: "tpch",
        column: "l_suppkey",
        note: "uniform FK",
        data: ColumnData::Int((0..rows).map(|_| rng.gen_range(1..10_000)).collect()),
    }
}

/// l_linenumber: 1..=7 cycling.
pub fn l_linenumber(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 4);
    let mut values = Vec::with_capacity(rows);
    while values.len() < rows {
        let lines = rng.gen_range(1usize..=7).min(rows - values.len());
        values.extend((1..=lines as i32).take(rows - values.len()));
    }
    GenColumn {
        dataset: "tpch",
        column: "l_linenumber",
        note: "small cycling values",
        data: ColumnData::Int(values),
    }
}

/// l_quantity: uniform 1..=50 stored as double.
pub fn l_quantity(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 5);
    GenColumn {
        dataset: "tpch",
        column: "l_quantity",
        note: "50 distinct integer-valued doubles",
        data: ColumnData::Double((0..rows).map(|_| f64::from(rng.gen_range(1..=50))).collect()),
    }
}

/// l_extendedprice: wide-range prices with cents (one size range — the
/// property that makes TPC-H doubles compress 2.78× on average).
pub fn l_extendedprice(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 6);
    GenColumn {
        dataset: "tpch",
        column: "l_extendedprice",
        note: "one-range prices with cents; PDE-friendly",
        data: ColumnData::Double(
            (0..rows)
                .map(|_| f64::from(rng.gen_range(90_000..10_500_000)) * 0.01)
                .collect(),
        ),
    }
}

/// l_discount: 11 distinct values 0.00–0.10.
pub fn l_discount(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 7);
    GenColumn {
        dataset: "tpch",
        column: "l_discount",
        note: "11 distinct decimals",
        data: ColumnData::Double((0..rows).map(|_| f64::from(rng.gen_range(0..=10)) * 0.01).collect()),
    }
}

/// l_tax: 9 distinct values.
pub fn l_tax(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 8);
    GenColumn {
        dataset: "tpch",
        column: "l_tax",
        note: "9 distinct decimals",
        data: ColumnData::Double((0..rows).map(|_| f64::from(rng.gen_range(0..=8)) * 0.01).collect()),
    }
}

/// l_returnflag: three letters.
pub fn l_returnflag(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 9);
    let out = (0..rows)
        .map(|_| ["R", "A", "N"][rng.gen_range(0usize..3)].to_string())
        .collect();
    str_col("tpch", "l_returnflag", "3-value category", out)
}

/// l_linestatus: two letters.
pub fn l_linestatus(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 10);
    let out = (0..rows)
        .map(|_| ["O", "F"][rng.gen_range(0usize..2)].to_string())
        .collect();
    str_col("tpch", "l_linestatus", "2-value category", out)
}

/// l_shipdate encoded as integer days since epoch (dates are "representable
/// as integers", as the paper's dataset preparation notes).
pub fn l_shipdate(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 11);
    GenColumn {
        dataset: "tpch",
        column: "l_shipdate",
        note: "uniform dates over 7 years as ints",
        data: ColumnData::Int((0..rows).map(|_| 8766 + rng.gen_range(0..2_557)).collect()),
    }
}

/// l_shipinstruct: 4 phrases.
pub fn l_shipinstruct(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 12);
    let out = (0..rows)
        .map(|_| words::SHIP_INSTRUCT[rng.gen_range(0usize..4)].to_string())
        .collect();
    str_col("tpch", "l_shipinstruct", "4 phrases", out)
}

/// l_shipmode: 7 modes.
pub fn l_shipmode(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 13);
    let out = (0..rows)
        .map(|_| words::SHIP_MODES[rng.gen_range(0usize..7)].to_string())
        .collect();
    str_col("tpch", "l_shipmode", "7 modes", out)
}

/// l_comment: random word salad — dbgen's incompressible text.
pub fn l_comment(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 14);
    let out = (0..rows)
        .map(|_| {
            let n = rng.gen_range(3..8);
            (0..n)
                .map(|_| words::TPCH_WORDS[rng.gen_range(0..words::TPCH_WORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    str_col("tpch", "l_comment", "random text; compresses poorly (paper: 3.3x avg)", out)
}

/// o_orderstatus: 3 letters, skewed.
pub fn o_orderstatus(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 15);
    let out = (0..rows)
        .map(|_| {
            let r: f64 = rng.gen_range(0.0f64..1.0);
            if r < 0.49 { "F" } else if r < 0.98 { "O" } else { "P" }.to_string()
        })
        .collect();
    str_col("tpch", "o_orderstatus", "skewed 3-value category", out)
}

/// o_totalprice: wide-range totals.
pub fn o_totalprice(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 16);
    GenColumn {
        dataset: "tpch",
        column: "o_totalprice",
        note: "wide totals with cents",
        data: ColumnData::Double(
            (0..rows)
                .map(|_| f64::from(rng.gen_range(90_000..55_000_000)) * 0.01)
                .collect(),
        ),
    }
}

/// o_custkey: uniform FK with holes.
pub fn o_custkey(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 17);
    GenColumn {
        dataset: "tpch",
        column: "o_custkey",
        note: "uniform FK with holes",
        data: ColumnData::Int((0..rows).map(|_| rng.gen_range(1..150_000) * 3 - 1).collect()),
    }
}

/// o_comment: more random text.
pub fn o_comment(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 18);
    let out = (0..rows)
        .map(|_| {
            let n = rng.gen_range(4..10);
            (0..n)
                .map(|_| words::TPCH_WORDS[rng.gen_range(0..words::TPCH_WORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    str_col("tpch", "o_comment", "random text", out)
}

/// The TPC-H-like registry (lineitem + orders columns by volume).
pub fn registry(rows: usize, seed: u64) -> Vec<GenColumn> {
    vec![
        l_orderkey(rows, seed),
        l_partkey(rows, seed),
        l_suppkey(rows, seed),
        l_linenumber(rows, seed),
        l_quantity(rows, seed),
        l_extendedprice(rows, seed),
        l_discount(rows, seed),
        l_tax(rows, seed),
        l_returnflag(rows, seed),
        l_linestatus(rows, seed),
        l_shipdate(rows, seed),
        l_shipinstruct(rows, seed),
        l_shipmode(rows, seed),
        l_comment(rows, seed),
        o_orderstatus(rows, seed),
        o_totalprice(rows, seed),
        o_custkey(rows, seed),
        o_comment(rows, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderkey_is_non_decreasing() {
        match l_orderkey(5_000, 3).data {
            ColumnData::Int(v) => assert!(v.windows(2).all(|w| w[0] <= w[1])),
            _ => panic!(),
        }
    }

    #[test]
    fn discount_has_eleven_values() {
        match l_discount(10_000, 3).data {
            ColumnData::Double(v) => {
                let uniq: std::collections::BTreeSet<u64> =
                    v.iter().map(|x| x.to_bits()).collect();
                assert!(uniq.len() <= 11);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn comment_text_is_high_cardinality() {
        match l_comment(2_000, 3).data {
            ColumnData::Str(a) => {
                let uniq: std::collections::BTreeSet<&[u8]> = a.iter().collect();
                assert!(uniq.len() > 1_500);
            }
            _ => panic!(),
        }
    }
}
