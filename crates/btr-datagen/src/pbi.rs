//! Public BI Benchmark-like column generators.
//!
//! Each generator mimics one column the paper names (Tables 3 and 4, Figure 4
//! discussion) or one recurring pattern of the benchmark (denormalization
//! runs, skewed categories, string-encoded NULLs). Comments state the paper
//! behaviour being reproduced.

use crate::{words, GenColumn};
use btrblocks::{ColumnData, StringArena};
use btr_corrupt::rng::Xorshift as StdRng;

fn rng_for(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15))
}

/// Zipf-ish index: heavily skewed choice among `n` options.
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.gen_range(0.0f64..1.0);
    let idx = ((n as f64).powf(u) - 1.0) as usize;
    idx.min(n - 1)
}

fn str_col(
    dataset: &'static str,
    column: &'static str,
    note: &'static str,
    strings: Vec<String>,
) -> GenColumn {
    let refs: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
    GenColumn {
        dataset,
        column,
        note,
        data: ColumnData::Str(StringArena::from_strs(&refs)),
    }
}

// ---------------------------------------------------------------- strings

/// SalariesFrance/LIBDOM1 — Table 4 top row: almost everything is the
/// literal string "null" in long runs; Dictionary reaches >1000×.
pub fn salaries_france_libdom1(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 1);
    let mut out = Vec::with_capacity(rows);
    while out.len() < rows {
        let run = rng.gen_range(200usize..2000).min(rows - out.len());
        let s = if rng.gen_bool(0.97) {
            "null".to_string()
        } else {
            words::FR_DOMAINS[rng.gen_range(0..words::FR_DOMAINS.len())].to_string()
        };
        out.extend(std::iter::repeat_n(s, run));
    }
    str_col("SalariesFrance", "LIBDOM1", "string-encoded NULLs in long runs; Dict ~1800x", out)
}

/// MulheresMil/ped — near-empty strings, tiny cardinality; Dict ~240×.
pub fn mulheres_mil_ped(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 2);
    let opts = ["", "S", "N", "1"];
    let mut out = Vec::with_capacity(rows);
    while out.len() < rows {
        let run = rng.gen_range(30usize..300).min(rows - out.len());
        let s = opts[zipf(&mut rng, opts.len())].to_string();
        out.extend(std::iter::repeat_n(s, run));
    }
    str_col("MulheresMil", "ped", "tiny low-cardinality strings with runs; Dict ~240x", out)
}

/// Redfin2/property_type — a handful of categories, sorted-ish; Dict ~1200×.
pub fn redfin2_property_type(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 3);
    let mut out = Vec::with_capacity(rows);
    while out.len() < rows {
        let run = rng.gen_range(100usize..1500).min(rows - out.len());
        let s = words::PROPERTY_TYPES[zipf(&mut rng, words::PROPERTY_TYPES.len())].to_string();
        out.extend(std::iter::repeat_n(s, run));
    }
    str_col("Redfin2", "property_type", "few categories in long runs; Dict ~1200x", out)
}

/// Motos/Medio — one dominant constant value; OneValue ~5000×.
pub fn motos_medio(rows: usize, _seed: u64) -> GenColumn {
    let out = vec!["CABLE".to_string(); rows];
    str_col("Motos", "Medio", "constant column; OneValue ~5000x", out)
}

/// NYC/Community Board — "01 BRONX" style: number + shared borough word;
/// Dict+FSST ~8× (dictionary pool itself is compressible).
pub fn nyc_community_board(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 4);
    let out = (0..rows)
        .map(|_| {
            let b = words::BOROUGHS[rng.gen_range(0..words::BOROUGHS.len())];
            format!("{:02} {}", rng.gen_range(1..=18), b)
        })
        .collect();
    str_col("NYC", "Community Board", "structured codes sharing substrings; Dict+FSST ~8x", out)
}

/// PanCreactomy1/STREET1 — street addresses: high cardinality, shared
/// substrings; Dict+FSST ~5×.
pub fn pancreactomy1_street1(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 5);
    let out = (0..rows)
        .map(|_| {
            format!(
                "{} {} {} {}",
                rng.gen_range(100..9999),
                ["N", "S", "E", "W"][rng.gen_range(0usize..4)],
                words::STREET_NAMES[rng.gen_range(0..words::STREET_NAMES.len())],
                words::STREET_SUFFIX[rng.gen_range(0..words::STREET_SUFFIX.len())],
            )
        })
        .collect();
    str_col("PanCreactomy1", "STREET1", "addresses: high-cardinality, substring-rich; Dict+FSST ~5x", out)
}

/// Provider/nppes_provider_city — city names incl. string "null"; Dict+FSST ~5×.
pub fn provider_city(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 6);
    let out = (0..rows)
        .map(|_| {
            if rng.gen_bool(0.08) {
                "null".to_string()
            } else {
                words::CITIES_US[zipf(&mut rng, words::CITIES_US.len())].to_string()
            }
        })
        .collect();
    str_col("Provider", "nppes_provider_city", "skewed city names + literal nulls; Dict+FSST ~5x", out)
}

/// PanCreactomy1/CITY — like provider_city with a different mix.
pub fn pancreactomy1_city(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 7);
    let out = (0..rows)
        .map(|_| {
            if rng.gen_bool(0.05) {
                "null".to_string()
            } else {
                words::CITIES_US[rng.gen_range(0..words::CITIES_US.len())].to_string()
            }
        })
        .collect();
    str_col("PanCreactomy1", "CITY", "uniform city names + nulls; Dict+FSST ~5x", out)
}

/// Uberlandia/municipio_da_ue — Brazilian municipalities; Dict ~10×.
pub fn uberlandia_municipio(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 8);
    let out = (0..rows)
        .map(|_| words::CITIES_BR[zipf(&mut rng, words::CITIES_BR.len())].to_string())
        .collect();
    str_col("Uberlandia", "municipio_da_ue", "skewed unicode city names; Dict ~10x", out)
}

/// Generico/url — URLs with a common prefix; FSST-friendly.
pub fn generico_url(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 9);
    let out = (0..rows)
        .map(|_| {
            format!(
                "https://www.example-shop.com/catalog/{}/item-{}?ref=email",
                ["electronics", "garden", "toys", "office"][rng.gen_range(0usize..4)],
                rng.gen_range(0..100_000)
            )
        })
        .collect();
    str_col("Generico", "url", "shared-prefix URLs; FSST shines", out)
}

/// TrainsUK1/station — structured station codes.
pub fn trains_uk_station(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 10);
    let out = (0..rows)
        .map(|_| {
            format!(
                "GB-{}{}{}",
                (b'A' + rng.gen_range(0u8..26)) as char,
                (b'A' + rng.gen_range(0u8..26)) as char,
                rng.gen_range(100..999)
            )
        })
        .collect();
    str_col("TrainsUK1", "station", "short structured codes, high cardinality", out)
}

/// Arade/descriptor — free-ish text with moderate repetition.
pub fn arade_descriptor(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 11);
    let out = (0..rows)
        .map(|_| {
            let a = words::TPCH_WORDS[zipf(&mut rng, 30)];
            let b = words::TPCH_WORDS[rng.gen_range(0..words::TPCH_WORDS.len())];
            format!("{a} {b} record")
        })
        .collect();
    str_col("Arade", "descriptor", "semi-structured text; FSST/Dict contest", out)
}

// ---------------------------------------------------------------- integers

fn int_col(
    dataset: &'static str,
    column: &'static str,
    note: &'static str,
    values: Vec<i32>,
) -> GenColumn {
    GenColumn {
        dataset,
        column,
        note,
        data: ColumnData::Int(values),
    }
}

/// RealEstate1/New Build? — all zeros (Table 4: OneValue, 13 055×).
pub fn realestate1_new_build(rows: usize, _seed: u64) -> GenColumn {
    int_col("RealEstate1", "New Build?", "all-zero column; OneValue ~13000x", vec![0; rows])
}

/// Medicare1/TOTAL_DAY_SUPPLY — skewed counts (Table 4: FastPFOR 2.4×).
pub fn medicare1_total_day_supply(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 20);
    let values = (0..rows)
        .map(|_| {
            // Mostly small counts, occasionally large outliers (26994, ...).
            if rng.gen_bool(0.9) {
                rng.gen_range(0..3000)
            } else {
                rng.gen_range(3000..30_000)
            }
        })
        .collect();
    int_col("Medicare1", "TOTAL_DAY_SUPPLY", "skewed counts with outliers; FastPFOR ~2.4x", values)
}

/// Uberlandia/cod_ibge_da_ue — 7-digit municipality codes from a small set
/// (Table 4: FastPFOR 3.0×).
pub fn uberlandia_cod_ibge(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 21);
    let codes: Vec<i32> = (0..400).map(|_| rng.gen_range(1_100_000..5_300_000)).collect();
    let values = (0..rows).map(|_| codes[zipf(&mut rng, codes.len())]).collect();
    int_col("Uberlandia", "cod_ibge_da_ue", "7-digit codes from a small pool; FastPFOR ~3x", values)
}

/// Eixo/cod_ibge_da_ue — same distribution, different seed salt.
pub fn eixo_cod_ibge(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 22);
    let codes: Vec<i32> = (0..400).map(|_| rng.gen_range(1_100_000..5_300_000)).collect();
    let values = (0..rows).map(|_| codes[zipf(&mut rng, codes.len())]).collect();
    int_col("Eixo", "cod_ibge_da_ue", "7-digit codes from a small pool; FastPFOR ~3x", values)
}

/// CommonGovernment/agency_key — denormalized join key: long runs (the
/// paper's point about PBI integers compressing 5.4× vs TPC-H's 1.6×).
pub fn common_government_agency_key(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 23);
    let mut values = Vec::with_capacity(rows);
    let mut key = 1000;
    while values.len() < rows {
        let run = rng.gen_range(50usize..800).min(rows - values.len());
        values.extend(std::iter::repeat_n(key, run));
        key += rng.gen_range(1..5);
    }
    int_col("CommonGovernment", "agency_key", "denormalized FK runs; RLE wins", values)
}

/// Hatred/zero_or_one — boolean stored as int, skewed.
pub fn hatred_flag(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 24);
    let values = (0..rows).map(|_| i32::from(rng.gen_bool(0.05))).collect();
    int_col("Hatred", "flag", "skewed 0/1 flags; Frequency/bitpack", values)
}

/// Medicare2/row_id — dense ascending id (normalized-style, compresses via FOR).
pub fn medicare2_row_id(rows: usize, seed: u64) -> GenColumn {
    let start = 1_000_000 + (seed as i32 % 1000);
    let values = (0..rows as i32).map(|i| start + i).collect();
    int_col("Medicare2", "row_id", "dense ascending key; FOR+BP", values)
}

/// Telco/cell_id — moderate-cardinality categorical int.
pub fn telco_cell_id(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 25);
    let values = (0..rows).map(|_| rng.gen_range(0..5_000) * 7 + 13).collect();
    int_col("Telco", "cell_id", "moderate-cardinality categorical; Dict/BP contest", values)
}

/// Food/year — tiny-range values in long runs (sorted by year).
pub fn food_year(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 26);
    let mut values = Vec::with_capacity(rows);
    let mut year = 2005;
    while values.len() < rows {
        let run = rng.gen_range(500usize..4000).min(rows - values.len());
        values.extend(std::iter::repeat_n(year, run));
        year += 1;
    }
    int_col("Food", "year", "sorted year column; RLE then OneValue lengths", values)
}

// ---------------------------------------------------------------- doubles

fn dbl_col(
    dataset: &'static str,
    column: &'static str,
    note: &'static str,
    values: Vec<f64>,
) -> GenColumn {
    GenColumn {
        dataset,
        column,
        note,
        data: ColumnData::Double(values),
    }
}

/// Telco/CHARGD_SMS_P3 — mostly zeros plus few small charges (Table 4:
/// Dictionary 11.5×).
pub fn telco_chargd_sms_p3(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 40);
    let values = (0..rows)
        .map(|_| {
            if rng.gen_bool(0.85) {
                0.0
            } else {
                f64::from(rng.gen_range(1..200)) * 0.05
            }
        })
        .collect();
    dbl_col("Telco", "CHARGD_SMS_P3", "mostly-zero charges; Dict ~11x", values)
}

/// Telco/TOTA_OUTGOING_REV_P3 — like CHARGD_SMS_P3 (Table 4: Dict 10.5×).
pub fn telco_outgoing_rev_p3(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 41);
    let values = (0..rows)
        .map(|_| {
            if rng.gen_bool(0.8) {
                0.0
            } else {
                f64::from(rng.gen_range(1..500)) * 0.01
            }
        })
        .collect();
    dbl_col("Telco", "TOTA_OUTGOING_REV_P3", "mostly-zero revenue; Dict ~10x", values)
}

/// Telco/RECHRG_USED_P1 — one dominant value, exponentially rarer others
/// (Table 4: Frequency 4.4×).
pub fn telco_rechrg_used_p1(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 42);
    let values = (0..rows)
        .map(|_| {
            if rng.gen_bool(0.7) {
                83.2833
            } else {
                // High-precision tail values that resist other schemes.
                rng.gen_range(0.0f64..100.0) + rng.gen_range(0.0f64..1e-4)
            }
        })
        .collect();
    dbl_col("Telco", "RECHRG_USED_P1", "one dominant value + precise tail; Frequency ~4.4x", values)
}

/// Motos/InversionQ — mostly zeros, some amounts (Table 4: Dict 4.6×).
pub fn motos_inversionq(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 43);
    let values = (0..rows)
        .map(|_| {
            if rng.gen_bool(0.6) {
                0.0
            } else {
                f64::from(rng.gen_range(100..200_000))
            }
        })
        .collect();
    dbl_col("Motos", "InversionQ", "zeros + integer-valued amounts; Dict ~4.6x", values)
}

/// Telco/TOTAL_MINS_P1 — minutes with 1–2 decimals, high cardinality
/// (Table 4: Pseudodecimal 2.7×).
pub fn telco_total_mins_p1(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 44);
    let values = (0..rows)
        .map(|_| f64::from(rng.gen_range(0..600_000)) * 0.01)
        .collect();
    dbl_col("Telco", "TOTAL_MINS_P1", "2-decimal durations, high cardinality; PDE ~2.7x", values)
}

/// Redfin4/median_sale_price_mom — month-over-month ratios incl. many
/// string-NULL-turned-0 entries (Table 4: Dict 1.3×, hard to compress).
pub fn redfin4_median_sale_price_mom(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 45);
    let values = (0..rows)
        .map(|_| {
            if rng.gen_bool(0.3) {
                0.0
            } else {
                // Full-precision ratios: hostile to PDE, mildly dict-able.
                rng.gen_range(-0.5f64..0.5)
            }
        })
        .collect();
    dbl_col("Redfin4", "median_sale_price_mom", "precise ratios + nulls; barely compressible", values)
}

// -- Table 3 double columns (PDE vs FPC/Gorilla/Chimp comparisons) --

/// CommonGovernment/10 — wide-range prices with cents; PDE ≈ 1.8×, BP ≈ 1.
pub fn common_government_10(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 50);
    let values = (0..rows)
        .map(|_| f64::from(rng.gen_range(-2_000_000..8_000_000)) * 0.01)
        .collect();
    dbl_col("CommonGovernment", "10", "wide 2-decimal prices; PDE ~1.8x", values)
}

/// CommonGovernment/26 — dominated by zeros with occasional short runs of
/// amounts. The paper's numbers (plain bit-packing already reaches 60.9×)
/// imply a mostly-zero column: zero blocks pack to ~0 bits, Gorilla sees
/// XOR-0 runs, and PDE's digit/exponent columns collapse almost entirely
/// (PDE best at 75×).
pub fn common_government_26(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 51);
    // Thousands of distinct amounts: dictionaries pay real pool costs
    // (paper: Dict only 4.4x on this column).
    let amounts: Vec<f64> =
        (0..3_000).map(|_| f64::from(rng.gen_range(10..500_000)) * 0.25).collect();
    let mut values = Vec::with_capacity(rows);
    // Long zero runs (so ~90% of 128-value bit-packing blocks are all-zero:
    // the paper's BP reaches 60.9x) interleaved with bursts of amounts whose
    // runs are tiny (so RLE pays one raw double per run: paper RLE 18.7x,
    // below PDE's 75x whose digit column stays integer-packable).
    while values.len() < rows {
        if rng.gen_bool(0.82) {
            let run = rng.gen_range(1_000usize..3_000).min(rows - values.len());
            values.extend(std::iter::repeat_n(0.0, run));
        } else {
            let burst = rng.gen_range(30..80);
            for _ in 0..burst {
                if values.len() >= rows {
                    break;
                }
                let run = rng.gen_range(2usize..4).min(rows - values.len());
                let v = amounts[zipf(&mut rng, amounts.len())];
                values.extend(std::iter::repeat_n(v, run));
            }
        }
    }
    dbl_col("CommonGovernment", "26", "zero runs + amount bursts; PDE ~75x", values)
}

/// CommonGovernment/30 — half zeros, half 1-decimal amounts in short runs;
/// PDE ~7.8×, RLE ~6.9×, BP ~4.7×.
pub fn common_government_30(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 52);
    let mut values = Vec::with_capacity(rows);
    while values.len() < rows {
        let run = rng.gen_range(2usize..12).min(rows - values.len());
        let v = if rng.gen_bool(0.5) {
            0.0
        } else {
            f64::from(rng.gen_range(0..20_000)) * 0.1
        };
        values.extend(std::iter::repeat_n(v, run));
    }
    dbl_col("CommonGovernment", "30", "zeros + 1-decimal amounts, short runs; PDE ~7.8x", values)
}

/// CommonGovernment/31 — whole-dollar amounts, mostly zero; PDE ~23×,
/// BP ~12× (zero blocks pack away), RLE poor (short runs).
pub fn common_government_31(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 53);
    let values = (0..rows)
        .map(|_| {
            if rng.gen_bool(0.7) {
                0.0
            } else {
                f64::from(rng.gen_range(0..4_000))
            }
        })
        .collect();
    dbl_col("CommonGovernment", "31", "mostly-zero whole dollars; PDE ~23x", values)
}

/// CommonGovernment/40 — like /26 with very long runs; PDE ~55×, RLE best
/// in the §6.5 pool table (91.5×).
pub fn common_government_40(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 54);
    let amounts: Vec<f64> = (0..25).map(|_| f64::from(rng.gen_range(100..90_000)) * 0.5).collect();
    let mut values = Vec::with_capacity(rows);
    while values.len() < rows {
        if rng.gen_bool(0.9) {
            let run = rng.gen_range(1_000usize..6_000).min(rows - values.len());
            values.extend(std::iter::repeat_n(0.0, run));
        } else {
            let run = rng.gen_range(50usize..400).min(rows - values.len());
            let v = amounts[rng.gen_range(0..amounts.len())];
            values.extend(std::iter::repeat_n(v, run));
        }
    }
    dbl_col("CommonGovernment", "40", "zero-dominated very long runs; PDE ~55x", values)
}

/// Arade/4 — 4-decimal measurements, mostly unique; PDE ~1.9×, others ~1.
pub fn arade_4(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 55);
    let values = (0..rows)
        .map(|_| f64::from(rng.gen_range(0..100_000_000)) * 0.0001)
        .collect();
    dbl_col("Arade", "4", "4-decimal measurements, high cardinality; PDE ~1.9x", values)
}

/// NYC/29 — longitudes at full double precision: nothing helps (PDE 1.0,
/// Chimp ~2.5 from shared exponents).
pub fn nyc_29(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 56);
    let values = (0..rows).map(|_| -74.3 + rng.gen_range(0.0f64..0.6)).collect();
    dbl_col("NYC", "29", "full-precision longitudes; incompressible for PDE", values)
}

/// CMSProvider/1 — charges with cents, wide range; everything ~1.5×.
pub fn cms_provider_1(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 57);
    let values = (0..rows)
        .map(|_| f64::from(rng.gen_range(1_000..100_000_000)) * 0.01)
        .collect();
    dbl_col("CMSProvider", "1", "wide charges with cents; ~1.5x everywhere", values)
}

/// CMSProvider/9 — small counts stored as doubles, skewed; PDE ~6.6×.
pub fn cms_provider_9(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 58);
    let values = (0..rows).map(|_| f64::from(zipf(&mut rng, 2_000) as i32 + 11)).collect();
    dbl_col("CMSProvider", "9", "small skewed counts as doubles; PDE ~6.6x", values)
}

/// CMSProvider/25 — near-random payment averages; ~1.0 everywhere.
pub fn cms_provider_25(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 59);
    let values = (0..rows).map(|_| rng.gen_range(10.0f64..500.0)).collect();
    dbl_col("CMSProvider", "25", "full-precision averages; ~1.0 everywhere", values)
}

/// Medicare/1 — like CMSProvider/1.
pub fn medicare_1(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 60);
    let values = (0..rows)
        .map(|_| f64::from(rng.gen_range(500..50_000_000)) * 0.01)
        .collect();
    dbl_col("Medicare", "1", "wide charges with cents; ~1.5x everywhere", values)
}

/// Medicare/9 — like CMSProvider/9 (PDE ~6.3×).
pub fn medicare_9(rows: usize, seed: u64) -> GenColumn {
    let mut rng = rng_for(seed, 61);
    let values = (0..rows).map(|_| f64::from(zipf(&mut rng, 1_500) as i32 + 11)).collect();
    dbl_col("Medicare", "9", "small skewed counts as doubles; PDE ~6.3x", values)
}

/// The full Public-BI-like registry (used by Table 2, Figures 4–8).
pub fn registry(rows: usize, seed: u64) -> Vec<GenColumn> {
    vec![
        // strings (the PBI volume majority, per Table 2)
        salaries_france_libdom1(rows, seed),
        mulheres_mil_ped(rows, seed),
        redfin2_property_type(rows, seed),
        motos_medio(rows, seed),
        nyc_community_board(rows, seed),
        pancreactomy1_street1(rows, seed),
        provider_city(rows, seed),
        pancreactomy1_city(rows, seed),
        uberlandia_municipio(rows, seed),
        generico_url(rows, seed),
        trains_uk_station(rows, seed),
        arade_descriptor(rows, seed),
        // integers
        realestate1_new_build(rows, seed),
        medicare1_total_day_supply(rows, seed),
        uberlandia_cod_ibge(rows, seed),
        eixo_cod_ibge(rows, seed),
        common_government_agency_key(rows, seed),
        hatred_flag(rows, seed),
        medicare2_row_id(rows, seed),
        telco_cell_id(rows, seed),
        food_year(rows, seed),
        // doubles
        telco_chargd_sms_p3(rows, seed),
        telco_outgoing_rev_p3(rows, seed),
        telco_rechrg_used_p1(rows, seed),
        motos_inversionq(rows, seed),
        telco_total_mins_p1(rows, seed),
        redfin4_median_sale_price_mom(rows, seed),
        common_government_10(rows, seed),
        common_government_26(rows, seed),
        common_government_30(rows, seed),
        common_government_31(rows, seed),
        common_government_40(rows, seed),
        arade_4(rows, seed),
        nyc_29(rows, seed),
        cms_provider_1(rows, seed),
        cms_provider_9(rows, seed),
        cms_provider_25(rows, seed),
        medicare_1(rows, seed),
        medicare_9(rows, seed),
    ]
}

/// The twelve "largest non-trivial double columns" of Table 3, in the
/// paper's row order.
pub fn table3_columns(rows: usize, seed: u64) -> Vec<GenColumn> {
    vec![
        common_government_10(rows, seed),
        common_government_26(rows, seed),
        common_government_30(rows, seed),
        common_government_31(rows, seed),
        common_government_40(rows, seed),
        arade_4(rows, seed),
        nyc_29(rows, seed),
        cms_provider_1(rows, seed),
        cms_provider_9(rows, seed),
        cms_provider_25(rows, seed),
        medicare_1(rows, seed),
        medicare_9(rows, seed),
    ]
}

/// The Table 4 random column sample, in the paper's row order.
pub fn table4_columns(rows: usize, seed: u64) -> Vec<GenColumn> {
    vec![
        salaries_france_libdom1(rows, seed),
        mulheres_mil_ped(rows, seed),
        redfin2_property_type(rows, seed),
        motos_medio(rows, seed),
        nyc_community_board(rows, seed),
        pancreactomy1_street1(rows, seed),
        provider_city(rows, seed),
        pancreactomy1_city(rows, seed),
        uberlandia_municipio(rows, seed),
        realestate1_new_build(rows, seed),
        medicare1_total_day_supply(rows, seed),
        uberlandia_cod_ibge(rows, seed),
        eixo_cod_ibge(rows, seed),
        telco_chargd_sms_p3(rows, seed),
        telco_outgoing_rev_p3(rows, seed),
        telco_rechrg_used_p1(rows, seed),
        motos_inversionq(rows, seed),
        telco_total_mins_p1(rows, seed),
        redfin4_median_sale_price_mom(rows, seed),
    ]
}

/// Pseudo-"five largest workbooks" mix for the S3 scan experiments
/// (Figure 1 / Table 5): one relation per workbook with its columns.
pub fn five_largest(rows: usize, seed: u64) -> Vec<(&'static str, Vec<GenColumn>)> {
    vec![
        (
            "CommonGovernment",
            vec![
                common_government_10(rows, seed),
                common_government_26(rows, seed),
                common_government_31(rows, seed),
                common_government_40(rows, seed),
                common_government_agency_key(rows, seed),
                // The real workbook is dominated by denormalized string
                // columns with enormous dictionary ratios.
                salaries_france_libdom1(rows, seed),
                redfin2_property_type(rows, seed),
            ],
        ),
        (
            "Generico",
            vec![
                generico_url(rows, seed),
                arade_descriptor(rows, seed),
                food_year(rows, seed),
                motos_medio(rows, seed),
                mulheres_mil_ped(rows, seed),
            ],
        ),
        (
            "Medicare",
            vec![
                medicare_1(rows, seed),
                medicare_9(rows, seed),
                medicare1_total_day_supply(rows, seed),
                medicare2_row_id(rows, seed),
                realestate1_new_build(rows, seed),
                uberlandia_municipio(rows, seed),
            ],
        ),
        (
            "Telco",
            vec![
                telco_chargd_sms_p3(rows, seed),
                telco_outgoing_rev_p3(rows, seed),
                telco_rechrg_used_p1(rows, seed),
                telco_total_mins_p1(rows, seed),
                telco_cell_id(rows, seed),
                nyc_community_board(rows, seed),
            ],
        ),
        (
            "CMSProvider",
            vec![
                cms_provider_1(rows, seed),
                cms_provider_9(rows, seed),
                cms_provider_25(rows, seed),
                provider_city(rows, seed),
                pancreactomy1_city(rows, seed),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed() {
        let mut rng = rng_for(1, 99);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf(&mut rng, 10)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
    }

    #[test]
    fn table3_columns_are_doubles() {
        for col in table3_columns(500, 1) {
            assert!(matches!(col.data, ColumnData::Double(_)), "{}", col.full_name());
        }
    }

    #[test]
    fn five_largest_has_five() {
        let sets = five_largest(200, 1);
        assert_eq!(sets.len(), 5);
        for (_, cols) in sets {
            assert!(!cols.is_empty());
        }
    }

    #[test]
    fn constant_columns_are_constant() {
        match motos_medio(100, 0).data {
            ColumnData::Str(a) => assert!((0..a.len()).all(|i| a.get(i) == b"CABLE")),
            _ => panic!(),
        }
        match realestate1_new_build(100, 0).data {
            ColumnData::Int(v) => assert!(v.iter().all(|&x| x == 0)),
            _ => panic!(),
        }
    }
}
