//! Seeded synthetic dataset generators for the BtrBlocks reproduction.
//!
//! The paper evaluates on the Public BI Benchmark — 119.5 GB of real Tableau
//! workbooks — and on TPC-H. Neither is available offline, so this crate
//! synthesizes columns that mimic the *compression-relevant* properties the
//! paper describes per dataset: data skew, denormalization runs, misused
//! types (prices as doubles), non-uniform NULL representations, structured
//! strings with shared substrings, and the occasional all-constant column.
//! Each generator documents which paper column it imitates and why the
//! substitution preserves behaviour (see `DESIGN.md` §2).
//!
//! Everything is deterministic given `(rows, seed)`.

pub mod pbi;
pub mod tpch;
pub mod words;

use btrblocks::{Column, ColumnData, Relation};

/// A generated column with provenance metadata.
#[derive(Debug, Clone)]
pub struct GenColumn {
    /// Pseudo-dataset name (mirrors a Public BI workbook or TPC-H table).
    pub dataset: &'static str,
    /// Column name (mirrors the paper's tables where applicable).
    pub column: &'static str,
    /// The values.
    pub data: ColumnData,
    /// What paper behaviour this column reproduces.
    pub note: &'static str,
}

impl GenColumn {
    /// Qualified `dataset/column` name.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.dataset, self.column)
    }

    /// Converts into a [`Column`] for compression.
    pub fn into_column(self) -> Column {
        Column::new(self.full_name(), self.data)
    }
}

/// Groups generated columns into single-column relations (most experiments
/// operate per column, like the paper's per-column tables).
pub fn to_relations(cols: Vec<GenColumn>) -> Vec<(String, Relation)> {
    cols.into_iter()
        .map(|c| {
            let name = c.full_name();
            (name, Relation::new(vec![c.into_column()]))
        })
        .collect()
}

/// Builds one relation holding all columns of one pseudo-dataset, padding is
/// not needed because every generator emits exactly `rows` values.
pub fn dataset_relation(cols: Vec<GenColumn>) -> Relation {
    Relation::new(cols.into_iter().map(GenColumn::into_column).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbi_registry_is_deterministic_and_sized() {
        let a = pbi::registry(2_000, 42);
        let b = pbi::registry(2_000, 42);
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 30, "expect a broad registry, got {}", a.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.full_name(), y.full_name());
            assert_eq!(x.data.len(), 2_000, "{}", x.full_name());
            assert_eq!(x.data, y.data, "{}", x.full_name());
        }
        let c = pbi::registry(2_000, 43);
        assert!(a.iter().zip(&c).any(|(x, y)| x.data != y.data), "seed must matter");
    }

    #[test]
    fn tpch_registry_is_deterministic_and_sized() {
        let a = tpch::registry(2_000, 7);
        let b = tpch::registry(2_000, 7);
        assert!(a.len() >= 15);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data, y.data, "{}", x.full_name());
            assert_eq!(x.data.len(), 2_000);
        }
    }

    #[test]
    fn type_mix_roughly_matches_table2() {
        // Table 2: PBI is string-heavy (71.5 % of volume); TPC-H balances
        // differently. Verify strings dominate the PBI registry by volume.
        let cols = pbi::registry(4_000, 1);
        let mut by_type = [0usize; 3];
        for c in &cols {
            let idx = match c.data {
                ColumnData::Str(_) => 0,
                ColumnData::Double(_) => 1,
                ColumnData::Int(_) => 2,
            };
            by_type[idx] += c.data.heap_size();
        }
        let total: usize = by_type.iter().sum();
        assert!(
            by_type[0] * 2 > total,
            "strings should be >50% of PBI volume, got {:?}",
            by_type
        );
    }

    #[test]
    fn relations_build() {
        let rels = to_relations(pbi::registry(500, 3));
        assert!(!rels.is_empty());
        for (_, r) in &rels {
            assert_eq!(r.rows(), 500);
        }
        let all = dataset_relation(tpch::registry(500, 3));
        assert_eq!(all.rows(), 500);
    }
}
