//! Word pools used by the string generators.

/// NYC-style borough/community-board names (NYC/Community Board in Table 4).
pub const BOROUGHS: [&str; 6] = ["BRONX", "QUEENS", "BROOKLYN", "MANHATTAN", "STATEN ISLAND", "CITYWIDE"];

/// US city names in caps (Provider/nppes_provider_city, PanCreactomy1/CITY).
pub const CITIES_US: [&str; 40] = [
    "BETHESDA", "ATHENS", "PHOENIX", "RALEIGH", "SPRINGFIELD", "PORTLAND", "COLUMBUS",
    "AUSTIN", "MADISON", "SALEM", "GEORGETOWN", "ARLINGTON", "FRANKLIN", "CLINTON",
    "FAIRVIEW", "GREENVILLE", "BRISTOL", "DOVER", "MANCHESTER", "NEWPORT", "ASHLAND",
    "BURLINGTON", "CLAYTON", "DAYTON", "EUGENE", "FARGO", "GRETNA", "HOUSTON",
    "IRVING", "JACKSON", "KINGSTON", "LAREDO", "MEMPHIS", "NORFOLK", "ODESSA",
    "PEORIA", "QUINCY", "ROSWELL", "SEATTLE", "TOLEDO",
];

/// Brazilian municipality names (Uberlandia/municipio_da_ue).
pub const CITIES_BR: [&str; 25] = [
    "Maceió", "Curitiba", "Uberlândia", "São Paulo", "Fortaleza", "Salvador", "Recife",
    "Manaus", "Belém", "Goiânia", "Campinas", "Natal", "Teresina", "João Pessoa",
    "Aracaju", "Cuiabá", "Londrina", "Joinville", "Niterói", "Santos", "Sorocaba",
    "Pelotas", "Anápolis", "Itabuna", "Blumenau",
];

/// Street-name parts (PanCreactomy1/STREET1-style addresses).
pub const STREET_NAMES: [&str; 20] = [
    "MAYO", "MAIN", "OAK", "PINE", "MAPLE", "CEDAR", "ELM", "WASHINGTON", "LAKE",
    "HILL", "PARK", "RIVER", "CHURCH", "SPRING", "RIDGE", "SUNSET", "HIGHLAND",
    "MEADOW", "FOREST", "VALLEY",
];

/// Street suffixes.
pub const STREET_SUFFIX: [&str; 8] = ["BLVD", "ST", "AVE", "RD", "DR", "LN", "CT", "WAY"];

/// Residential property types (Redfin2/property_type).
pub const PROPERTY_TYPES: [&str; 6] = [
    "All Residential", "Single Family Residential", "Condo/Co-op", "Townhouse",
    "Multi-Family (2-4 Unit)", "Vacant Land",
];

/// French administrative domain labels (SalariesFrance/LIBDOM1).
pub const FR_DOMAINS: [&str; 8] = [
    "ADMINISTRATION GENERALE", "ENSEIGNEMENT", "CULTURE", "SPORT ET JEUNESSE",
    "SANTE ET ACTION SOCIALE", "AMENAGEMENT URBAIN", "ENVIRONNEMENT", "TRANSPORTS",
];

/// TPC-H ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// TPC-H ship instructions.
pub const SHIP_INSTRUCT: [&str; 4] =
    ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];

/// TPC-H comment vocabulary (random text, the paper's "random samples from a
/// pool of test data" that compress poorly).
pub const TPCH_WORDS: [&str; 48] = [
    "furiously", "quickly", "slyly", "carefully", "blithely", "ironic", "final",
    "special", "pending", "regular", "express", "bold", "even", "silent", "unusual",
    "daring", "idle", "busy", "deposits", "requests", "accounts", "packages",
    "theodolites", "instructions", "foxes", "pinto", "beans", "dependencies",
    "platelets", "asymptotes", "somas", "dugouts", "waters", "sauternes", "warhorses",
    "sheaves", "realms", "courts", "excuses", "ideas", "dolphins", "multipliers",
    "sentiments", "grouches", "epitaphs", "attainments", "escapades", "braids",
];

/// Motorbike transmission types, dominated by one value (Motos/Medio).
pub const MOTO_MEDIO: [&str; 4] = ["CABLE", "HIDRAULICO", "MIXTO", "ELECTRONICO"];
