#!/usr/bin/env bash
# Repo-wide check: build, tests, and the decode-path panic gate.
#
# The panic gate runs clippy with `unwrap_used` and `panic` promoted to
# errors on every crate that sits on the decode path (the corruption
# hardening contract: corrupt bytes must surface as typed errors, never as
# panics). It lints library targets only — test code and the writers are
# free to unwrap, and `#[allow(clippy::unwrap_used, clippy::panic)]` on an
# encode-side item is the documented escape hatch if one ever needs it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --quiet

echo "== tier-1 tests"
cargo test --quiet

echo "== workspace tests (fault-injection campaigns included)"
cargo test --workspace --quiet

echo "== scan-engine suite (incl. object-store e2e)"
cargo test -p btr-scan --quiet

echo "== decode-path panic gate"
DECODE_CRATES=(
  btrblocks
  btr-bitpacking
  btr-expr
  btr-fsst
  btr-roaring
  btr-float
  btr-lz
  btr-scan
  btr-server
  parquet-lite
  orc-lite
)
for crate in "${DECODE_CRATES[@]}"; do
  echo "   clippy -p ${crate}"
  cargo clippy -p "${crate}" --lib --quiet -- \
    -D clippy::unwrap_used \
    -D clippy::panic
done

echo "== static analysis (btr-lint --check against lint-ratchet.toml)"
cargo run --release --quiet -p btr-lint -- --check

echo "== clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== scan-engine smoke benchmark (BENCH_scan.json)"
BENCH_ROWS="${BENCH_ROWS:-64000}" BENCH_SCAN_JSON="BENCH_scan.json" \
  cargo run --release --quiet -p btr-bench --bin scan_pipeline > /dev/null
grep -q '"cache_hit_rate"' BENCH_scan.json

echo "== query-engine smoke benchmark (BENCH_query.json)"
BENCH_ROWS="${BENCH_ROWS:-64000}" BENCH_QUERY_JSON="BENCH_query.json" \
  cargo run --release --quiet -p btr-bench --bin query_engine > /dev/null
# The expression-engine contract: at 1% selectivity, pushdown (zone pruning +
# compressed-domain leaves + late materialization) must not lose to
# decode-everything-then-filter, and unfiltered COUNT/MIN/MAX must answer
# from zone maps without decoding a single block.
grep -q '"selectivity": 0.01, .*"pushdown_ok": true' BENCH_query.json
grep -q '"aggregate": {.*"blocks_decoded": 0}' BENCH_query.json

echo "== decode-scratch smoke benchmark (BENCH_decode.json)"
BENCH_ROWS="${BENCH_ROWS:-64000}" BENCH_DECODE_JSON="BENCH_decode.json" \
  cargo run --release --quiet -p btr-bench --bin decode_scratch > /dev/null
grep -q '"warm-scratch"' BENCH_decode.json
# The warm pass must stay allocation-free (tracked by the bench binary's
# global allocator): its heap_growth_bytes field is the last run's.
grep -q '"name": "warm-scratch", "seconds": [0-9.]*, "rows_per_s": [0-9]*, "heap_growth_bytes": 0,' BENCH_decode.json
# Morsel-parallel decode must reproduce the serial relation exactly, and the
# dispenser's claim path must cost < 5% over a dispenser-free serial loop.
grep -q '"decode_matches_serial": true' BENCH_decode.json
grep -q '"dispenser_overhead_ok": true' BENCH_decode.json

echo "== encode-path smoke benchmark (BENCH_compress.json)"
BENCH_ROWS="${BENCH_ROWS:-64000}" BENCH_COMPRESS_JSON="BENCH_compress.json" \
  cargo run --release --quiet -p btr-bench --bin compression_speed > /dev/null
# The warm encode pass must stay allocation-free (tracked by the bench
# binary's global allocator), morsel-parallel compression must be
# byte-identical to serial, and the dispenser's claim path must cost < 5%
# over a dispenser-free serial loop (that gate holds on any machine,
# including single-core CI hosts).
grep -q '"name": "warm-scratch", "seconds": [0-9.]*, "mb_per_s": [0-9.]*, "heap_growth_bytes": 0,' BENCH_compress.json
grep -q '"parallel_matches_serial": true' BENCH_compress.json
grep -q '"dispenser_overhead_ok": true' BENCH_compress.json
# The 4-thread speedup gate (>= 1.5x) only means something with >= 4 cores;
# the bench records applicability so small hosts skip it with a log line
# instead of a vacuous pass being mistaken for a measurement.
if grep -q '"speedup4_applicable": true' BENCH_compress.json; then
  grep -q '"speedup4_ok": true' BENCH_compress.json
else
  echo "   (speedup4 gate skipped: fewer than 4 cores available)"
fi

echo "== chaos campaign smoke (BENCH_chaos.json)"
BENCH_CHAOS_SCHEDULES="${BENCH_CHAOS_SCHEDULES:-100}" BENCH_CHAOS_JSON="BENCH_chaos.json" \
  cargo run --release --quiet -p btr-bench --bin chaos_campaign > /dev/null
# The fault-model contract: randomized fault schedules over concurrent
# scans may fail scans, but only with typed, attributed errors — never a
# panic, never silently wrong bytes.
grep -q '"panics": 0' BENCH_chaos.json
grep -q '"divergent": 0' BENCH_chaos.json
grep -q '"unattributed": 0' BENCH_chaos.json
grep -q '"clean": true' BENCH_chaos.json

echo "== scan service smoke benchmark (BENCH_server.json)"
BENCH_ROWS="${BENCH_ROWS:-64000}" BENCH_SERVER_JSON="BENCH_server.json" \
  cargo run --release --quiet -p btr-bench --bin scan_service > /dev/null
# The sharing contract: under a convergent fault plan every concurrent scan
# must succeed, and the economics the service exists for — cross-scan decode
# dedup — must actually fire at least once.
grep -q '"dedup_positive": true' BENCH_server.json
grep -q '"unattributed": 0' BENCH_server.json
grep -q '"clean": true' BENCH_server.json

echo "== lock-order runtime checker (chaos smokes with --features lock-order)"
# The concurrency contract (DESIGN.md §15): every lock acquisition is
# checked against the declared hierarchy at runtime when the btr-sync
# `lock-order` feature is on. Re-running the chaos smokes under the checker
# proves the real interleavings — not just the lint's static view — respect
# the ranking. Gated so environments without the feature plumbing skip
# gracefully rather than fail.
if cargo build --release --quiet -p btr-bench --features lock-order 2>/dev/null; then
  cargo test --release --quiet -p btr-sync --features lock-order > /dev/null
  BENCH_CHAOS_SCHEDULES="${BENCH_CHAOS_SCHEDULES:-100}" BENCH_CHAOS_JSON="BENCH_chaos_lockorder.json" \
    cargo run --release --quiet -p btr-bench --features lock-order --bin chaos_campaign > /dev/null
  grep -q '"panics": 0' BENCH_chaos_lockorder.json
  grep -q '"clean": true' BENCH_chaos_lockorder.json
  BENCH_ROWS="${BENCH_ROWS:-64000}" BENCH_SERVER_JSON="BENCH_server_lockorder.json" \
    cargo run --release --quiet -p btr-bench --features lock-order --bin scan_service > /dev/null
  grep -q '"unattributed": 0' BENCH_server_lockorder.json
  grep -q '"clean": true' BENCH_server_lockorder.json
else
  echo "   (skipped: lock-order feature unavailable in this build)"
fi

echo "ok"
