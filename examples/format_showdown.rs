//! Format showdown: the same relation through BtrBlocks, parquet-lite (plain
//! / snappy-like / zstd-like) and orc-lite, comparing size and decode time —
//! a miniature of the paper's Figure 8.
//!
//! Run with: `cargo run --release --example format_showdown`

use btrblocks_repro::btrblocks::{self, Config};
use btrblocks_repro::datagen::{dataset_relation, pbi, tpch};
use btrblocks_repro::lz::Codec;
use btrblocks_repro::{orc_lite, parquet_lite};
use std::time::Instant;

fn main() {
    let rows = 64_000;
    for (label, relation) in [
        ("Public-BI-like", dataset_relation(pbi::registry(rows, 11))),
        ("TPC-H-like", dataset_relation(tpch::registry(rows, 11))),
    ] {
        let unc = relation.heap_size();
        println!("== {label}: {:.1} MB uncompressed ==", unc as f64 / 1e6);
        println!("{:<16} {:>9} {:>8} {:>12}", "format", "size MB", "ratio", "decode GB/s");

        let report = |name: &str, bytes: &[u8], decode: &dyn Fn(&[u8])| {
            let start = Instant::now();
            for _ in 0..3 {
                decode(bytes);
            }
            let secs = start.elapsed().as_secs_f64() / 3.0;
            println!(
                "{:<16} {:>9.2} {:>8.2} {:>12.2}",
                name,
                bytes.len() as f64 / 1e6,
                unc as f64 / bytes.len() as f64,
                unc as f64 / 1e9 / secs
            );
        };

        let cfg = Config::default();
        let btr = btrblocks::compress(&relation, &cfg).expect("compress").to_bytes();
        report("btrblocks", &btr, &|b| {
            btrblocks::decompress(b, &cfg).expect("decompress");
        });

        for codec in [Codec::None, Codec::SnappyLike, Codec::Heavy] {
            let bytes = parquet_lite::write(
                &relation,
                &parquet_lite::WriteOptions { codec, ..Default::default() },
            );
            let name = match codec {
                Codec::None => "parquet",
                Codec::SnappyLike => "parquet+snappy",
                Codec::Heavy => "parquet+zstd",
            };
            report(name, &bytes, &|b| {
                parquet_lite::read(b).expect("read");
            });
        }

        let orc = orc_lite::write(&relation, &orc_lite::WriteOptions::default());
        report("orc", &orc, &|b| {
            orc_lite::read(b).expect("read");
        });
        println!();
    }
}
