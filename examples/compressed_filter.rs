//! Predicate pushdown on compressed data: evaluate filters directly on
//! compressed blocks (per-run / per-distinct-value instead of per-row) and
//! prune whole blocks with the zone-map sidecar — the "processing compressed
//! data" extension the paper's §7 sketches plus the §2.1 position that
//! statistics live outside the data file.
//!
//! Run with: `cargo run --release --example compressed_filter`

use btrblocks_repro::btrblocks::metadata::{pruned_filter, Sidecar};
use btrblocks_repro::btrblocks::query::{filter_block, CmpOp, Literal};
use btrblocks_repro::btrblocks::{self, Column, ColumnData, Config, Relation};
use std::time::Instant;

fn main() {
    let rows = 1_000_000usize;
    let cfg = Config::default();

    // An "events" table: sorted timestamps (block-prunable), a skewed status
    // code (RLE/dict-compressed), and an amount column.
    let rel = Relation::new(vec![
        Column::new("ts", ColumnData::Int((0..rows as i32).collect())),
        Column::new(
            "status",
            ColumnData::Int((0..rows).map(|i| [200, 200, 200, 404, 500][(i / 1000) % 5]).collect()),
        ),
        Column::new(
            "amount",
            ColumnData::Double((0..rows).map(|i| ((i * 7) % 10_000) as f64 * 0.01).collect()),
        ),
    ]);
    let compressed = btrblocks::compress(&rel, &cfg).expect("compress");
    let sidecar = Sidecar::build(&rel, cfg.block_size);
    println!(
        "compressed {} rows into {} blocks/column (sidecar: {} bytes)\n",
        rows,
        compressed.columns[0].blocks.len(),
        sidecar.to_bytes().len()
    );

    // 1. Zone-map pruning on the sorted column: ts == 654_321 touches 1 block.
    let started = Instant::now();
    let (matches, decoded) = pruned_filter(
        &compressed,
        &sidecar,
        "ts",
        CmpOp::Eq,
        &Literal::Int(654_321),
        &cfg,
    )
    .expect("pruned filter");
    println!(
        "ts == 654321   -> {} match, decoded {}/{} blocks ({:.2} ms)",
        matches.cardinality(),
        decoded,
        compressed.columns[0].blocks.len(),
        started.elapsed().as_secs_f64() * 1e3
    );

    // 2. Filter on compressed blocks vs decompress-then-filter.
    let status_col = &compressed.columns[1];
    let started = Instant::now();
    let mut hits = 0u64;
    for block in &status_col.blocks {
        hits += filter_block(block, status_col.column_type, CmpOp::Eq, &Literal::Int(404), &cfg)
            .expect("filter")
            .cardinality();
    }
    let pushed = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let mut hits_ref = 0usize;
    for block in &status_col.blocks {
        match btrblocks::block::decompress_block(block, status_col.column_type, &cfg).unwrap() {
            btrblocks::DecodedColumn::Int(v) => hits_ref += v.iter().filter(|&&x| x == 404).count(),
            _ => unreachable!(),
        }
    }
    let materialized = started.elapsed().as_secs_f64();
    assert_eq!(hits as usize, hits_ref);
    println!(
        "status == 404  -> {} matches; pushdown {:.2} ms vs decompress+filter {:.2} ms ({:.1}x)",
        hits,
        pushed * 1e3,
        materialized * 1e3,
        materialized / pushed
    );

    // 3. Range predicate on doubles.
    let amount_col = &compressed.columns[2];
    let mut over = 0u64;
    for block in &amount_col.blocks {
        over += filter_block(block, amount_col.column_type, CmpOp::Gt, &Literal::Double(99.0), &cfg)
            .expect("filter")
            .cardinality();
    }
    println!("amount > 99.0  -> {over} matches (evaluated on compressed blocks)");
}
