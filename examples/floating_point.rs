//! Pseudodecimal Encoding in action: decompose doubles into (digits,
//! exponent) pairs and compare against the published float codecs (FPC,
//! Gorilla, Chimp, Chimp128) on price-like and sensor-like data.
//!
//! Run with: `cargo run --release --example floating_point`

use btrblocks_repro::btrblocks::scheme::double::decimal;
use btrblocks_repro::btrblocks::scheme::{compress_double_with, decompress_double};
use btrblocks_repro::btrblocks::writer::Reader;
use btrblocks_repro::btrblocks::{Config, SchemeCode};
use btrblocks_repro::float::FloatCodec;

fn main() {
    // --- Part 1: the decomposition itself -------------------------------
    println!("Pseudodecimal decomposition (value -> digits x 10^-exp):");
    for v in [3.25, 0.99, -6.425, 1234.0, 0.000_5, -0.0, 5.5e-42, f64::NAN] {
        match decimal::encode_single(v) {
            Some((digits, exp)) => {
                let back = decimal::decode_single(digits, exp);
                assert_eq!(back.to_bits(), v.to_bits(), "bitwise identity");
                println!("  {v:>12} -> ({digits}, {exp})");
            }
            None => println!("  {v:>12} -> patch (stored as raw bits)"),
        }
    }

    // --- Part 2: whole-column comparison --------------------------------
    let prices: Vec<f64> = (0..100_000).map(|i| ((i * 7919) % 100_000) as f64 * 0.01).collect();
    let sensors: Vec<f64> = (0..100_000)
        .map(|i| (i as f64 * 0.001).sin() * 123.456789)
        .collect();

    for (name, values) in [("prices (2 decimals)", &prices), ("sensor readings (full precision)", &sensors)] {
        println!("\n{name}: {} doubles, {} KB raw", values.len(), values.len() * 8 / 1024);
        let raw = values.len() * 8;
        for codec in FloatCodec::ALL {
            let size = codec.compress(values).len();
            println!("  {:<10} {:>6.2}x", codec.name(), raw as f64 / size as f64);
        }
        // PDE in its fixed two-level cascade (always FastBP128 on outputs).
        let cfg = Config::default().with_pool(&[SchemeCode::Pseudodecimal, SchemeCode::FastBp128]);
        let mut buf = Vec::new();
        compress_double_with(SchemeCode::Pseudodecimal, values, 2, &cfg, &mut buf);
        println!("  {:<10} {:>6.2}x", "PDE", raw as f64 / buf.len() as f64);
        // And verify bitwise losslessness.
        let mut r = Reader::new(&buf);
        let out = decompress_double(&mut r, &cfg).expect("decompress");
        assert!(values.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
    println!("\nall round-trips bitwise verified");
}
