//! Quickstart: compress a small relation with BtrBlocks, inspect the chosen
//! schemes, and decompress it back losslessly.
//!
//! Run with: `cargo run --release --example quickstart`

use btrblocks_repro::btrblocks::{self, Column, ColumnData, Config, Relation, StringArena};

fn main() {
    // A toy "orders" relation: note the price column stores decimals as
    // doubles — exactly the pattern Pseudodecimal Encoding targets.
    let rows = 200_000usize;
    let ids: Vec<i32> = (0..rows as i32).collect();
    let prices: Vec<f64> = (0..rows).map(|i| ((i * 37) % 10_000) as f64 * 0.01).collect();
    let statuses: Vec<&str> = (0..rows)
        .map(|i| ["OPEN", "SHIPPED", "DELIVERED", "RETURNED"][(i / 1000) % 4])
        .collect();

    let relation = Relation::new(vec![
        Column::new("order_id", ColumnData::Int(ids)),
        Column::new("price", ColumnData::Double(prices)),
        Column::new("status", ColumnData::Str(StringArena::from_strs(&statuses))),
    ]);

    let config = Config::default();
    let compressed = btrblocks::compress(&relation, &config).expect("compression failed");
    let bytes = compressed.to_bytes();

    println!("uncompressed: {:>10} bytes", relation.heap_size());
    println!("compressed:   {:>10} bytes", bytes.len());
    println!(
        "ratio:        {:>10.2}x\n",
        relation.heap_size() as f64 / bytes.len() as f64
    );

    println!("scheme chosen per column (first block):");
    for col in &compressed.columns {
        println!(
            "  {:<10} -> {}",
            col.name,
            col.schemes.first().map(|s| s.name()).unwrap_or("-")
        );
    }

    // Decompression is bitwise lossless.
    let restored = btrblocks::decompress(&bytes, &config).expect("decompression failed");
    assert_eq!(relation, restored);
    println!("\nround-trip verified: decompressed data is identical");
}
