//! Data-lake scan: write a dataset to the simulated object store in three
//! formats, scan it back, and compare simulated cloud cost — the paper's
//! headline experiment (Figure 1) as a runnable example.
//!
//! Run with: `cargo run --release --example data_lake_scan`

use btrblocks_repro::btrblocks::{self, Config};
use btrblocks_repro::datagen::{dataset_relation, pbi};
use btrblocks_repro::parquet_lite;
use btrblocks_repro::s3sim::{CostModel, ScanStats, Simulator, DEFAULT_CHUNK};
use std::time::Instant;

fn main() {
    let rows = 64_000;
    let seed = 7;
    let relation = dataset_relation(pbi::registry(rows, seed));
    println!(
        "dataset: {} columns x {} rows = {:.1} MB uncompressed\n",
        relation.columns.len(),
        rows,
        relation.heap_size() as f64 / 1e6
    );

    let sim = Simulator::new();
    let cfg = Config::default();

    // Encode in each format and upload as 16 MB chunks.
    let encodings: Vec<(&str, Vec<u8>)> = vec![
        (
            "btrblocks",
            btrblocks::compress(&relation, &cfg).expect("compress").to_bytes(),
        ),
        (
            "parquet",
            parquet_lite::write(&relation, &parquet_lite::WriteOptions::default()),
        ),
        (
            "parquet+snappy",
            parquet_lite::write(
                &relation,
                &parquet_lite::WriteOptions {
                    codec: btrblocks_repro::lz::Codec::SnappyLike,
                    ..parquet_lite::WriteOptions::default()
                },
            ),
        ),
    ];

    println!(
        "{:<16} {:>10} {:>8} {:>12} {:>14} {:>12}",
        "format", "size MB", "ratio", "T_c Gbit/s", "duration ms", "cost $/scan"
    );
    let model = CostModel::default();
    for (name, bytes) in &encodings {
        let keys = sim.store.put_chunked(name, bytes, DEFAULT_CHUNK);

        // Measure real decompression CPU for the reassembled object.
        let assembled: Vec<u8> = keys
            .iter()
            .flat_map(|k| sim.store.get(k).expect("uploaded").as_ref().clone())
            .collect();
        let started = Instant::now();
        let restored = match *name {
            "btrblocks" => btrblocks::decompress(&assembled, &cfg).expect("decompress"),
            _ => parquet_lite::read(&assembled).expect("read"),
        };
        let cpu = started.elapsed().as_secs_f64();
        assert_eq!(&restored, &relation, "{name}: scan must reproduce the data");

        let mut stats = ScanStats {
            requests: keys.len() as u64,
            compressed_bytes: bytes.len() as u64,
            uncompressed_bytes: relation.heap_size() as u64,
            cpu_seconds: cpu / model.cores as f64,
            ..ScanStats::default()
        };
        stats.network_seconds = model.network_seconds(stats.compressed_bytes, stats.requests);
        stats.duration_seconds = stats.network_seconds.max(stats.cpu_seconds);

        println!(
            "{:<16} {:>10.2} {:>8.2} {:>12.1} {:>14.3} {:>12.8}",
            name,
            bytes.len() as f64 / 1e6,
            relation.heap_size() as f64 / bytes.len() as f64,
            stats.t_c_gbit_per_s(),
            stats.duration_seconds * 1e3,
            model.scan_cost_usd(&stats),
        );
    }
    println!("\n(scan cost = instance time at $3.89/h + $0.0004 per 1000 GETs)");
}
