//! `btr` — a small CLI for the BtrBlocks reproduction.
//!
//! ```text
//! btr compress   <in.csv> <out.btr>   compress a CSV file (types inferred)
//! btr decompress <in.btr> <out.csv>   restore the CSV
//! btr inspect    <in.btr>             per-column schemes, blocks, sizes
//! btr filter     <in.btr> <column> <op> <literal>   count matching rows
//!                                      (predicate runs on compressed blocks)
//! ```
//!
//! CSV handling is deliberately simple (no quoting/escapes): the tool exists
//! to exercise the library end-to-end from a shell, not to be a CSV parser.
//! Doubles are printed in Rust's canonical shortest form on decompression
//! (`12.50` comes back as `12.5`) — values round-trip bitwise, text may not.

use btrblocks_repro::btrblocks::query::{CmpOp, Literal};
use btrblocks_repro::btrblocks::{
    self, Column, ColumnData, ColumnType, Config, Relation, StringArena,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(|s| s.as_str()) {
        Some("compress") if args.len() == 3 => compress(&args[1], &args[2]),
        Some("decompress") if args.len() == 3 => decompress(&args[1], &args[2]),
        Some("inspect") if args.len() == 2 => inspect(&args[1]),
        Some("filter") if args.len() == 5 => filter(&args[1], &args[2], &args[3], &args[4]),
        _ => {
            eprintln!(
                "usage:\n  btr compress   <in.csv> <out.btr>\n  btr decompress <in.btr> <out.csv>\n  btr inspect    <in.btr>\n  btr filter     <in.btr> <column> <eq|lt|le|gt|ge> <literal>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

/// Infers each column's type from its values: Integer ⊂ Double ⊂ String.
fn infer_relation(csv: &str) -> Result<Relation, AnyError> {
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().ok_or("empty csv")?.split(',').collect();
    let rows: Vec<Vec<&str>> = lines
        .map(|l| l.split(',').collect::<Vec<_>>())
        .collect();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != header.len() {
            return Err(format!("row {} has {} fields, expected {}", i + 2, r.len(), header.len()).into());
        }
    }
    let columns = header
        .iter()
        .enumerate()
        .map(|(ci, name)| {
            let all_int = rows.iter().all(|r| r[ci].parse::<i32>().is_ok());
            let data = if all_int && !rows.is_empty() {
                ColumnData::Int(rows.iter().map(|r| r[ci].parse().expect("checked")).collect())
            } else if !rows.is_empty() && rows.iter().all(|r| r[ci].parse::<f64>().is_ok()) {
                ColumnData::Double(rows.iter().map(|r| r[ci].parse().expect("checked")).collect())
            } else {
                let mut arena = StringArena::new();
                for r in &rows {
                    arena.push(r[ci].as_bytes());
                }
                ColumnData::Str(arena)
            };
            Column::new(name.trim().to_string(), data)
        })
        .collect();
    Ok(Relation::new(columns))
}

fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    out.push_str(
        &rel.columns.iter().map(|c| c.name.as_str()).collect::<Vec<_>>().join(","),
    );
    out.push('\n');
    for row in 0..rel.rows() {
        for (i, col) in rel.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &col.data {
                ColumnData::Int(v) => out.push_str(&v[row].to_string()),
                ColumnData::Double(v) => out.push_str(&format!("{}", v[row])),
                ColumnData::Str(a) => {
                    out.push_str(&String::from_utf8_lossy(a.get(row)));
                }
            }
        }
        out.push('\n');
    }
    out
}

fn compress(input: &str, output: &str) -> Result<(), AnyError> {
    let csv = std::fs::read_to_string(input)?;
    let rel = infer_relation(&csv)?;
    let cfg = Config::default();
    let compressed = btrblocks::compress(&rel, &cfg)?;
    let bytes = compressed.to_bytes();
    std::fs::write(output, &bytes)?;
    println!(
        "{} rows x {} columns: {} -> {} bytes ({:.2}x)",
        rel.rows(),
        rel.columns.len(),
        rel.heap_size(),
        bytes.len(),
        rel.heap_size() as f64 / bytes.len().max(1) as f64
    );
    for col in &compressed.columns {
        println!(
            "  {:<24} {:>8}  {}",
            col.name,
            match col.column_type {
                ColumnType::Integer => "integer",
                ColumnType::Double => "double",
                ColumnType::String => "string",
            },
            col.schemes.first().map(|s| s.name()).unwrap_or("-"),
        );
    }
    Ok(())
}

fn decompress(input: &str, output: &str) -> Result<(), AnyError> {
    let bytes = std::fs::read(input)?;
    let rel = btrblocks::decompress(&bytes, &Config::default())?;
    std::fs::write(output, to_csv(&rel))?;
    println!("restored {} rows x {} columns", rel.rows(), rel.columns.len());
    Ok(())
}

fn inspect(input: &str) -> Result<(), AnyError> {
    let bytes = std::fs::read(input)?;
    let compressed = btrblocks::CompressedRelation::from_bytes(&bytes)?;
    println!("rows: {}, columns: {}, file: {} bytes", compressed.rows, compressed.columns.len(), bytes.len());
    for col in &compressed.columns {
        let size: usize = col.blocks.iter().map(|b| b.len()).sum();
        let schemes: Vec<&str> = col.schemes.iter().map(|s| s.name()).collect();
        println!(
            "  {:<24} {:>7} blocks {:>10} bytes  nulls:{:>2}  schemes: {}",
            col.name,
            col.blocks.len(),
            size,
            if col.nulls.is_empty() { "no" } else { "yes" },
            schemes.join(", "),
        );
    }
    Ok(())
}

fn filter(input: &str, column: &str, op: &str, literal: &str) -> Result<(), AnyError> {
    let bytes = std::fs::read(input)?;
    let compressed = btrblocks::CompressedRelation::from_bytes(&bytes)?;
    let cfg = Config::default();
    let col = compressed
        .columns
        .iter()
        .find(|c| c.name == column)
        .ok_or_else(|| format!("no column named {column:?}"))?;
    let op = match op {
        "eq" => CmpOp::Eq,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => return Err(format!("unknown op {other:?} (use eq|lt|le|gt|ge)").into()),
    };
    let lit = match col.column_type {
        ColumnType::Integer => Literal::Int(literal.parse()?),
        ColumnType::Double => Literal::Double(literal.parse()?),
        ColumnType::String => Literal::Str(literal.as_bytes().to_vec()),
    };
    let mut matches = 0u64;
    for block in &col.blocks {
        matches +=
            btrblocks_repro::btrblocks::query::filter_block(block, col.column_type, op, &lit, &cfg)?
                .cardinality();
    }
    println!("{matches} rows match (evaluated on compressed blocks)");
    Ok(())
}
