//! Umbrella crate for the BtrBlocks reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See `README.md` for an overview and `DESIGN.md` for the
//! system inventory and experiment index.

pub use btr_bitpacking as bitpacking;
pub use btr_datagen as datagen;
pub use btr_float as float;
pub use btr_fsst as fsst;
pub use btr_lz as lz;
pub use btr_roaring as roaring;
pub use btr_s3sim as s3sim;
pub use btrblocks;
pub use orc_lite;
pub use parquet_lite;
